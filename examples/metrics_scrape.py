"""Scraping a lineage server's /metrics: the observability smoke test.

Starts a sharded catalog with some lineage, serves it, drives a little
traffic (queries, a cache hit, a graph call, one deliberate 404), then

* fetches ``GET /metrics`` and validates that the payload parses as
  Prometheus text exposition format 0.0.4,
* asserts the metric names every dashboard would alert on are present
  (storage, ingest, serving, cache, breaker, fault families),
* fetches ``GET /debug/traces`` and shows the span tree of the slowest
  request,
* points ``python -m repro.tools.stats`` at the same server.

The exit status is the contract: 0 only if every check passed — CI runs
this file as the observability smoke step, so it doubles as the copy-
paste example for wiring a real Prometheus scrape::

    scrape_configs:
      - job_name: dslog
        static_configs:
          - targets: ["127.0.0.1:8791"]   # LineageServer(port=8791)

Run with:  python examples/metrics_scrape.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DSLog
from repro.core.relation import LineageRelation
from repro.obs.metrics import parse_prometheus_text, sample_value
from repro.service.server import LineageClient, LineageServer, LineageServerError
from repro.tools import stats as stats_cli

SHAPE = (12, 12)
CHAIN = ["raw", "cleaned", "features"]

# one required family per instrumented subsystem; a missing name means a
# subsystem lost its instrumentation
REQUIRED = (
    "dslog_segment_flushes_total",    # storage: segment writer
    "dslog_segment_fsyncs_total",     # storage: durability barriers
    "dslog_table_cache_hits_total",   # storage: table LRU
    "dslog_table_cache_bytes",        # storage: cache footprint gauge
    "dslog_manifest_publishes_total", # storage: atomic manifest swaps
    "dslog_queries_total",            # serving: executor queries
    "dslog_result_cache_misses_total",# serving: result cache
    "dslog_prefetch_seconds",         # serving: per-shard hydration
    "dslog_http_requests_total",      # serving: HTTP tier
    "dslog_http_request_seconds",     # serving: request latency histogram
    "dslog_breaker_transitions_total",# resilience: circuit breakers
    "dslog_faults_injected_total",    # resilience: fault accounting
)


def identity(in_name, out_name):
    pairs = [((i, j), (i, j)) for i in range(SHAPE[0]) for j in range(SHAPE[1])]
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


def drive_traffic(client):
    client.prov_query(CHAIN, slices=[(0, 4), (0, 4)])
    client.prov_query(CHAIN, slices=[(0, 4), (0, 4)])  # cache hit
    client.prov_query(list(reversed(CHAIN)), cells=[(3, 3)])
    client.impact("raw")
    try:
        client.impact("no-such-array")  # a deliberate 404 for the status axis
    except LineageServerError:
        pass


def check_metrics(client):
    text = client.metrics_text()
    families = parse_prometheus_text(text)  # raises ValueError on bad format
    print(f"/metrics: {len(text)} bytes, {len(families)} families, format OK")

    missing = [name for name in REQUIRED if name not in families]
    if missing:
        print(f"FAIL: required metrics missing: {missing}")
        return False

    served = sample_value(
        families, "dslog_http_requests_total", {"endpoint": "/query", "status": "200"}
    )
    not_found = sample_value(
        families, "dslog_http_requests_total", {"endpoint": "/graph/impact", "status": "404"}
    )
    queries = sample_value(families, "dslog_queries_total")
    hits = sample_value(families, "dslog_result_cache_hits_total")
    print(f"  /query 200s: {served:.0f}   impact 404s: {not_found:.0f}")
    print(f"  executor queries: {queries:.0f}   result-cache hits: {hits:.0f}")
    if not (served >= 3 and not_found >= 1 and queries >= 2 and hits >= 1):
        print("FAIL: counters do not reflect the traffic just driven")
        return False
    return True


def show_slowest_trace(client):
    traces = client.traces()
    if not traces:
        print("FAIL: no traces in the ring after traced requests")
        return False
    slowest = max(traces, key=lambda t: t["duration_s"] or 0)
    print(
        f"slowest trace: {slowest['name']} {slowest['tags']} "
        f"{(slowest['duration_s'] or 0) * 1000:.2f} ms"
    )
    for span in slowest["spans"]:
        indent = "    " if span["parent_id"] else "  "
        ms = (span["duration_s"] or 0) * 1000
        print(f"{indent}{span['name']:<15} {ms:7.3f} ms  {span['tags']}")
    return True


def main():
    with tempfile.TemporaryDirectory() as tmp:
        log = DSLog(Path(tmp) / "db", backend="sharded", num_shards=2)
        for name in CHAIN:
            log.define_array(name, SHAPE)
        for a, b in zip(CHAIN, CHAIN[1:]):
            log.add_lineage(a, b, relation=identity(a, b))

        server = LineageServer(log)
        server.start()
        try:
            client = LineageClient.connect(server.url)
            drive_traffic(client)

            ok = check_metrics(client)
            ok = show_slowest_trace(client) and ok

            print("\n--- python -m repro.tools.stats", server.url, "--grep http ---")
            ok = stats_cli.main([server.url, "--grep", "dslog_http"]) == 0 and ok
        finally:
            server.close()
            log.close()

    print("\nOK" if ok else "\nFAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
