"""Batched lineage queries: one θ-join pass for many queries.

The per-request serving path answers one query at a time — fine when the
result cache absorbs the traffic, but an uncached audit sweep (say, "trace
every flagged output cell back to its raw inputs") pays planning, snapshot
pinning and numpy dispatch once *per query*.  ``POST /query_batch`` runs
the whole sweep as one blocked kernel pass per hop: the server groups the
batch by resolved path, stacks all query boxes, and segments the results
back out per query — bit-identical to asking one at a time.

The example:

1. builds a 4-hop sharded catalog,
2. sweeps 64 cells via ``LineageClient.prov_query_batch`` vs 64 individual
   ``/query`` round trips, printing both wall times,
3. shows per-item error containment (a bad query rides along harmlessly),
4. restarts the server with request coalescing (``coalesce_ms``) and shows
   concurrent single ``/query`` requests being grouped server-side — watch
   ``dslog_coalesced_batch_size`` in ``/healthz``.

Run with:  python examples/batch_queries.py
"""

import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DSLog
from repro.core.relation import LineageRelation
from repro.service.server import LineageClient

SHAPE = (16, 16)
CHAIN = ["raw", "cleaned", "normalized", "features", "scores"]
BATCH = 64


def scatter(in_name, out_name):
    """Each output cell reads itself plus two wrap-around neighbors."""
    rows, cols = SHAPE
    pairs = []
    for i in range(rows):
        for j in range(cols):
            pairs.append(((i, j), (i, j)))
            pairs.append(((i, j), ((i + 1) % rows, j)))
            pairs.append(((i, j), (i, (j + 1) % cols)))
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


def build_catalog(root):
    log = DSLog(root, backend="sharded", num_shards=4, autosync=False)
    for name in CHAIN:
        log.define_array(name, SHAPE)
    for a, b in zip(CHAIN, CHAIN[1:]):
        log.add_lineage(a, b, relation=scatter(a, b))
    log.sync()
    return log


def flagged_cells():
    """The audit sweep: 64 scattered output cells to trace back to raw."""
    rows, cols = SHAPE
    return [((k * 7) % rows, (k * 13) % cols) for k in range(BATCH)]


def main():
    with tempfile.TemporaryDirectory() as root:
        log = build_catalog(root)
        path = list(reversed(CHAIN))  # scores -> ... -> raw (backward sweep)

        # -- 1. batched vs sequential sweep (cache off: every query cold) --
        server = log.serve(port=0, cache_entries=0)
        client = LineageClient.connect(server.url)
        queries = [(path, [cell]) for cell in flagged_cells()]
        client.prov_query_batch(queries, include_boxes=False)  # warm tables

        start = time.monotonic()
        singles = [
            client.prov_query(p, cells=c, include_boxes=False) for p, c in queries
        ]
        single_wall = time.monotonic() - start

        start = time.monotonic()
        batched = client.prov_query_batch(queries, include_boxes=False)
        batch_wall = time.monotonic() - start

        assert [b["count"] for b in batched] == [s["count"] for s in singles]
        print(f"audit sweep, {BATCH} uncached queries down {len(CHAIN) - 1} hops:")
        print(f"  one at a time : {single_wall * 1000:7.1f} ms")
        print(
            f"  one batch     : {batch_wall * 1000:7.1f} ms "
            f"({single_wall / batch_wall:.1f}x)"
        )

        # -- 2. per-item error containment --
        mixed = client.prov_query_batch(
            [
                (path, [flagged_cells()[0]]),
                (["scores", "no-such-array"], [(0, 0)]),
            ]
        )
        print("\nper-item containment:")
        print(f"  good query -> count={mixed[0]['count']}")
        print(f"  bad query  -> {mixed[1]['error']['type']}: ", end="")
        print(mixed[1]["error"]["message"])
        server.close()

        # -- 3. request coalescing: single /query calls, batched serving --
        server = log.serve(port=0, cache_entries=0, coalesce_ms=25)
        url = server.url
        LineageClient.connect(url)

        def worker(cell):
            LineageClient(url, timeout=30).prov_query(
                path, cells=[list(cell)], include_boxes=False
            )

        threads = [threading.Thread(target=worker, args=(c,)) for c in flagged_cells()]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = LineageClient(url).healthz()["coalescer"]
        print(f"\ncoalescing (window {stats['window_ms']:.0f} ms), "
              f"{BATCH} concurrent /query requests:")
        print(f"  flushes        : {stats['flushes']}")
        print(f"  largest batch  : {stats['largest_batch']}")
        server.close()
        log.close()


if __name__ == "__main__":
    main()
