"""Persistent catalogs: the segment-backed store and the lineage graph.

A DSLog catalog opened with ``backend="segment"`` is a long-lived, on-disk
artifact: ProvRC tables are appended to segment files, all metadata (op
names, operation records, reuse-predictor state) rides in one atomic JSON
manifest, and reopening the directory costs O(manifest) — tables are only
read back, through an LRU cache, when a query touches them.

The example builds a branching workflow (a diamond plus a tail), closes the
catalog, reopens it cold, and then lets the lineage *graph* do the work:
two-array ``prov_query`` calls without a hop list, impact/dependency
closures, and a whole-catalog summary.

Run with:  python examples/persistent_catalog.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import DSLog
from repro.core.relation import LineageRelation


def elementwise(shape, in_name, out_name):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def row_sum(rows, cols, in_name, out_name):
    pairs = [((r,), (r, c)) for r in range(rows) for c in range(cols)]
    return LineageRelation.from_pairs(pairs, (rows,), (rows, cols), in_name=in_name, out_name=out_name)


def main() -> None:
    root = Path(tempfile.mkdtemp()) / "catalog"
    shape = (64, 8)

    # 1. ingest a diamond-shaped workflow into a durable catalog
    #        raw -> cleaned -> features -+
    #        raw -> normalized ----------+-> merged -> scores
    with DSLog(root=root, backend="segment") as log:
        for name in ("raw", "cleaned", "features", "normalized", "merged"):
            log.define_array(name, shape)
        log.define_array("scores", (shape[0],))
        log.add_lineage("raw", "cleaned", relation=elementwise(shape, "raw", "cleaned"),
                        op_name="fillna")
        log.add_lineage("cleaned", "features", relation=elementwise(shape, "cleaned", "features"),
                        op_name="log1p")
        log.add_lineage("raw", "normalized", relation=elementwise(shape, "raw", "normalized"),
                        op_name="zscore")
        log.add_lineage("features", "merged", relation=elementwise(shape, "features", "merged"),
                        op_name="blend")
        log.add_lineage("normalized", "merged", relation=elementwise(shape, "normalized", "merged"),
                        op_name="blend")
        log.add_lineage("merged", "scores", relation=row_sum(*shape, "merged", "scores"),
                        op_name="row_score")
        print(f"ingested {len(log.catalog)} entries, "
              f"{log.storage_bytes() / 1e3:.1f} KB long-term storage")

    # 2. cold reopen: O(manifest) — no table bytes are touched yet
    log = DSLog.load(root)
    print(f"reopened: {len(log.catalog)} entries, "
          f"{log.store.tables_deserialized} tables deserialized, "
          f"op name preserved: {log.catalog.entry('raw', 'cleaned').op_name!r}")

    # 2b. zero-copy hydration: tables come back as read-only narrow views
    # into the segment mmap, and the cache charges that narrow footprint
    # (an int8 table would cost 8x more after an astype(int64) upcast)
    print(f"cache before hydration: {log.store.cache.stats()['bytes']} bytes")
    hydrated = log.catalog.entry("raw", "cleaned").backward
    print(f"cache after one table:  {log.store.cache.stats()['bytes']} bytes "
          f"(key_lo dtype {hydrated.key_lo.dtype}, "
          f"writeable={hydrated.key_lo.flags.writeable})")
    log.catalog.materialize_all()
    print(f"cache fully hydrated:   {log.store.cache.stats()['bytes']} bytes, "
          f"mmap readers: {log.store.reader_stats()}")

    # 3. graph-planned queries: no hop list, diamonds are unioned
    backward = log.prov_query(["scores", "raw"], [(3,)])
    print(f"scores[3] depends on {backward.count_cells()} raw cells "
          f"(via {log.store.tables_deserialized} lazily loaded tables)")
    forward = log.prov_query(["raw", "scores"], [(3, j) for j in range(shape[1])])
    print(f"raw[3, :] influences scores cells: {sorted(forward.to_cells())}")

    # 4. graph analytics over the whole catalog
    print(f"impact of 'raw': {log.impact('raw')}")
    print(f"dependencies of 'scores': {log.dependencies('scores')}")
    summary = log.lineage_summary()
    print(f"summary: roots={summary['roots']} leaves={summary['leaves']} "
          f"max_depth={summary['max_depth']} entries={summary['entries']}")
    print(f"table cache: {log.store.cache.stats()}")

    # 5. churn an entry, then compact the dead bytes away
    log.add_lineage("raw", "cleaned", relation=elementwise(shape, "raw", "cleaned"),
                    op_name="fillna_v2", replace=True)
    stats = log.compact()
    print(f"compacted: reclaimed {stats['reclaimed_bytes']} bytes "
          f"({stats['records_copied']} live records kept)")
    log.close()


if __name__ == "__main__":
    main()
