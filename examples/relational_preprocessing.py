"""Relational pre-processing lineage (Figure 8 B scenario).

The IMDB-like tables are joined, filtered, extended with derived columns,
one-hot encoded and shifted — the relational workflow of Table VIII — with
cell-level lineage captured by the custom relational operators.  DSLog then
answers impact-analysis queries: which final feature cells depend on a given
source row, and which source cells produced a given feature.

Run with:  python examples/relational_preprocessing.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.workloads.pipelines import relational_pipeline


def main() -> None:
    pipeline = relational_pipeline(n_basics=2000, n_episodes=1500)
    log = pipeline.load_into_dslog()

    print(f"workflow: {' -> '.join(pipeline.path)}")
    print(f"lineage stored by DSLog: {log.storage_bytes() / 1e3:.1f} KB")
    for step in pipeline.steps:
        print(f"  {step.in_name:>9} -> {step.out_name:<9} {len(step):>9} raw edges")

    # Forward impact analysis: which final features depend on source row 42?
    source_row = [(42, col) for col in range(pipeline.arrays[0][1][1])]
    forward = log.prov_query(pipeline.path, source_row)
    print(f"source row 42 reaches {forward.count_cells()} cells of the final feature matrix")

    # Backward provenance: where did the first one-hot feature row come from?
    backward = log.prov_query(list(reversed(pipeline.path)), [(0, c) for c in range(8)])
    rows = sorted({r for r, _ in backward.to_cells()})
    print(f"final row 0 traces back to source rows {rows}")


if __name__ == "__main__":
    main()
