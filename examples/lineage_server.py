"""Serving lineage over HTTP: one writer process, two client readers.

Until now every query ran inside the process that owned the catalog; the
serving tier makes the lineage reachable from anywhere:

    writer (this process)                    readers (child processes)
    DSLog -> dslog.serve(port)  <-- HTTP --  LineageClient.connect(url)

The server is a stdlib ``ThreadingHTTPServer`` fronting a
``QueryExecutor``: queries fan out per shard on a thread pool, and hot
results are served from a generation-keyed LRU — the ``cached`` flag in
each response shows it working.  When the writer ingests a new entry, only
the touched shards' versions bump, so cached results over *other* shards
stay valid while anything the write could affect is recomputed.

The example starts a server, forks two reader processes that issue path
queries and graph analytics over HTTP, then ingests a new entry mid-flight
and shows the cache invalidating exactly where it must.

Run with:  python examples/lineage_server.py
"""

import multiprocessing
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DSLog
from repro.core.relation import LineageRelation
from repro.service.server import LineageClient

SHAPE = (16, 16)
CHAIN = ["raw", "cleaned", "normalized", "features"]


def blur3(in_name, out_name):
    rows, cols = SHAPE
    pairs = []
    for r in range(rows):
        for c in range(cols):
            for dc in (-1, 0, 1):
                if 0 <= c + dc < cols:
                    pairs.append(((r, c), (r, c + dc)))
    return LineageRelation.from_pairs(pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name)


def reader(reader_id: int, url: str) -> None:
    """A client process: no repro imports beyond the client, no shared
    memory with the writer — everything crosses the HTTP boundary."""
    client = LineageClient.connect(url, timeout=10.0)
    health = client.healthz()
    print(f"[reader {reader_id}] connected: {health['entries']} entries, "
          f"backend={health['backend']}, generations={health['generations']}")

    forward = client.prov_query(CHAIN, cells=[[4, 4], [8, 8]])
    print(f"[reader {reader_id}] {CHAIN[0]} -> {CHAIN[-1]}: "
          f"{forward['count']} cells in {len(forward['hops'])} hops "
          f"(cached={forward['cached']})")

    again = client.prov_query(CHAIN, cells=[[4, 4], [8, 8]])
    print(f"[reader {reader_id}] same query again: cached={again['cached']} "
          f"in {again['elapsed_ms']:.2f} ms")

    impact = client.impact("raw")
    print(f"[reader {reader_id}] impact of 'raw': {impact}")


def main() -> None:
    root = Path(tempfile.mkdtemp()) / "catalog"

    # --- the writer process owns the catalog and serves it ----------------
    log = DSLog(root, backend="sharded", num_shards=4)
    for name in CHAIN:
        log.define_array(name, SHAPE)
    for a, b in zip(CHAIN, CHAIN[1:]):
        log.add_lineage(a, b, relation=blur3(a, b), op_name=f"{a}->{b}")

    server = log.serve(port=0)
    print(f"serving {len(log.catalog)} entries at {server.url}\n")

    # --- two reader processes query over HTTP -----------------------------
    ctx = multiprocessing.get_context("spawn")  # no inherited state: HTTP only
    readers = [ctx.Process(target=reader, args=(i, server.url)) for i in (1, 2)]
    for proc in readers:
        proc.start()
    for proc in readers:
        proc.join()
        assert proc.exitcode == 0

    # --- a write invalidates exactly the shards it touches ----------------
    local = LineageClient.connect(server.url)
    warm = local.prov_query(CHAIN, cells=[[4, 4], [8, 8]])
    print(f"\n[writer] before ingest: cached={warm['cached']}")

    log.define_array("report", SHAPE)
    log.add_lineage("features", "report", relation=blur3("features", "report"))

    after = local.prov_query(CHAIN, cells=[[4, 4], [8, 8]])
    print(f"[writer] after ingesting features->report: cached={after['cached']} "
          "(direct-path results depend only on their own hop shards)")
    print(f"[writer] impact of 'raw' now reaches: {local.impact('raw')}")
    print(f"[writer] executor stats: {local.healthz()['executor']['cache']}")

    server.close()
    log.close()


if __name__ == "__main__":
    main()
