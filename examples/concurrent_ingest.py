"""Concurrent ingest: the lineage service, sharding, and snapshot readers.

The single-threaded ``DSLog.register_operation`` runs ProvRC compression
and (with autosync) a full manifest publish on the caller's thread — fine
for a notebook, a stall for a host pipeline under load.  The
``LineageService`` decouples the two:

    submit() -> bounded queue -> worker pool -> 4 shards -> group commit

``submit`` returns a ticket in ~50 microseconds; worker threads compress
and append off the caller's path; the committer publishes manifests in
batches, so concurrent writers share each fsync instead of paying one
apiece.  ``ticket.result()`` resolves once the op is *durable*.  Readers
meanwhile take ``snapshot()`` views — consistent cuts pinned against both
later ingest and compaction.

The example drives four writer threads over one shared catalog, queries a
snapshot while ingest is still running, compacts one shard mid-flight,
then reopens the directory cold and checks nothing was lost.

Run with:  python examples/concurrent_ingest.py
"""

import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import DSLog, LineageService
from repro.core.relation import LineageRelation

SHAPE = (8, 8)
WRITERS = 4
STEPS = 6  # pipeline stages per writer


def blur3(shape, in_name, out_name):
    """Each output cell depends on its row neighborhood (a 1-D blur)."""
    rows, cols = shape
    pairs = []
    for r in range(rows):
        for c in range(cols):
            for dc in (-1, 0, 1):
                if 0 <= c + dc < cols:
                    pairs.append(((r, c), (r, c + dc)))
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def main() -> None:
    root = Path(tempfile.mkdtemp()) / "catalog"
    print(f"catalog root: {root}\n")

    with LineageService(root, workers=2, num_shards=4, commit_interval=0.005) as service:
        # --- declare every pipeline's arrays up front (cheap metadata) ---
        for w in range(WRITERS):
            for step in range(STEPS + 1):
                service.define_array(f"p{w}_s{step}", SHAPE)

        # --- four host pipelines ingest concurrently ---------------------
        def pipeline(w: int) -> None:
            for step in range(STEPS):
                a, b = f"p{w}_s{step}", f"p{w}_s{step + 1}"
                ticket = service.submit(
                    f"blur_w{w}_{step}",
                    [a],
                    [b],
                    relations={(a, b): blur3(SHAPE, a, b)},
                    input_data={a: np.full(SHAPE, w, dtype=np.int64)},
                    op_args={"kernel": 3},
                )
                ticket.result(timeout=30)  # durable before the next stage

        threads = [threading.Thread(target=pipeline, args=(w,)) for w in range(WRITERS)]
        for t in threads:
            t.start()

        # --- a reader works from a consistent snapshot mid-ingest --------
        snapshot = service.snapshot()
        print(f"snapshot: {len(snapshot.catalog)} entries at generations "
              f"{snapshot.generation_vector} (ingest still running)")
        snapshot.close()

        for t in threads:
            t.join()
        service.flush()

        stats = service.stats()
        print(f"ingested {stats['committed_ops']} ops in {stats['commits']} group "
              f"commits (avg batch {stats['avg_commit_batch']:.1f})\n")

        # --- queries over the shared catalog ------------------------------
        final = service.snapshot()
        source = final.prov_query([f"p0_s{STEPS}", "p0_s0"], [(4, 4)])
        print(f"p0 backward query: cell (4,4) of stage {STEPS} derives from "
              f"{len(source.to_cells())} source cells")
        print(f"impact of p1_s0: {len(final.impact('p1_s0'))} downstream arrays")
        final.close()

        # --- per-shard compaction while the service is live ---------------
        compaction = service.compact(shard=1)
        print(f"compacted shard 1: {compaction[1]['records_copied']} live records, "
              f"{compaction[1]['reclaimed_bytes']} bytes reclaimed\n")

    # --- cold reopen: everything survived ---------------------------------
    log = DSLog.load(root)
    print(f"reopened: {len(log.catalog)} entries, "
          f"{len(log.catalog.operations)} operation records, "
          f"{log.reuse.stats()['base_entries']} reuse signatures, "
          f"backend={log.backend}")
    assert len(log.catalog) == WRITERS * STEPS
    result = log.prov_query(["p2_s0", f"p2_s{STEPS}"], [(3, 3)])
    print(f"forward query across p2's whole pipeline: {len(result.to_cells())} cells")
    log.close()


if __name__ == "__main__":
    main()
