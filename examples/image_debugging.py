"""Computer-vision model debugging with fine-grained lineage (Figure 8 A scenario).

A synthetic surveillance frame is pushed through the image workflow of the
paper (resize, luminosity, rotation, flip) and a detector is explained with
LIME-style capture.  DSLog then answers the debugging question the paper
motivates: *which original pixels influenced the detection?* — a backward
query across five operations — and the reverse forward query for a patch of
the input frame.

Run with:  python examples/image_debugging.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


from repro.workloads.pipelines import image_pipeline


def main() -> None:
    pipeline = image_pipeline(height=64, width=64, lime_samples=80)
    log = pipeline.load_into_dslog()

    stored_kb = log.storage_bytes() / 1e3
    raw_mb = sum(step.nbytes_raw() for step in pipeline.steps) / 1e6
    print(f"workflow: {' -> '.join(pipeline.path)}")
    print(f"lineage stored by DSLog: {stored_kb:.1f} KB (raw edges: {raw_mb:.2f} MB)")

    # Backward: which pixels of the original frame fed the detection score?
    backward = log.prov_query(list(reversed(pipeline.path)), [(0,)])
    cells = backward.to_cells()
    ys = [y for y, _ in cells]
    xs = [x for _, x in cells]
    print(f"detection score traces back to {len(cells)} original pixels "
          f"(rows {min(ys)}..{max(ys)}, cols {min(xs)}..{max(xs)})")

    # Forward: does a corner patch of the frame influence the detection at all?
    patch = [(y, x) for y in range(8) for x in range(8)]
    forward = log.prov_query(pipeline.path, patch)
    print(f"top-left 8x8 patch influences {forward.count_cells()} detection cells")

    # Forward from the centre of the frame (where the object sits)
    centre = [(y, x) for y in range(28, 36) for x in range(28, 36)]
    forward_centre = log.prov_query(pipeline.path, centre)
    print(f"central 8x8 patch influences {forward_centre.count_cells()} detection cells")


if __name__ == "__main__":
    main()
