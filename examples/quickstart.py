"""Quickstart: track, compress and query fine-grained lineage with DSLog.

This example follows the paper's running example: an array workflow in which
``B = -A`` (element-wise) and ``C = B.sum(axis=1)``.  The lineage of each
step is captured with the cell-level ``tracked_cell`` analogue, ingested
into DSLog (where ProvRC compresses it), and then queried forward and
backward across the whole chain without ever decompressing the tables.

Run with:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import DSLog
from repro.capture.tracked import track_operation


def main() -> None:
    rows, cols = 1000, 8
    a = np.random.default_rng(0).normal(size=(rows, cols))

    # 1. run the workflow under cell-level lineage capture
    b, lineage_ab = track_operation(np.negative, inputs={"A": a}, out_name="B")
    c, lineage_bc = track_operation(lambda x: np.sum(x, axis=1), inputs={"B": b}, out_name="C")

    # 2. ingest into DSLog: lineage is compressed with ProvRC on the way in
    log = DSLog()
    log.define_array("A", a.shape)
    log.define_array("B", b.shape)
    log.define_array("C", c.shape)
    log.add_lineage("A", "B", relation=lineage_ab["A"], op_name="negative")
    log.add_lineage("B", "C", relation=lineage_bc["B"], op_name="sum_axis1")

    raw_bytes = lineage_ab["A"].nbytes_raw() + lineage_bc["B"].nbytes_raw()
    print(f"raw lineage:        {raw_bytes / 1e6:.2f} MB "
          f"({len(lineage_ab['A']) + len(lineage_bc['B'])} contribution edges)")
    print(f"ProvRC-GZip stored: {log.storage_bytes() / 1e3:.2f} KB "
          f"({log.storage_bytes() / raw_bytes * 100:.4f}% of raw)")

    # 3. forward query: which cells of C did A[5, :] influence?
    forward = log.prov_query(["A", "B", "C"], [(5, j) for j in range(cols)])
    print(f"A[5, :] influences C cells: {sorted(forward.to_cells())}")

    # 4. backward query: which cells of A contributed to C[5]?
    backward = log.prov_query(["C", "B", "A"], [(5,)])
    print(f"C[5] depends on {backward.count_cells()} cells of A "
          f"(expected {cols}): {sorted(backward.to_cells())[:4]} ...")


if __name__ == "__main__":
    main()
