"""Lineage reuse across repeated operation calls (Section VI scenario).

The same featurization function is applied first to a training array and
then to differently shaped validation and test arrays.  After the automatic
reuse predictor confirms the operation's lineage pattern, DSLog populates
the later calls' lineage from the stored generalized mapping (index
reshaping) without invoking the capture method again.

Run with:  python examples/lineage_reuse.py
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import DSLog
from repro.capture.analytic import axis_reduction_lineage


def featurize_lineage(shape):
    """Lineage of a per-row featurization: each output row reads its input row."""
    return axis_reduction_lineage(shape, axis=1)


def main() -> None:
    log = DSLog()
    datasets = {
        "train": (4000, 16),
        "validation": (1000, 16),
        "test": (2500, 16),
    }

    for index, (split, shape) in enumerate(datasets.items()):
        in_name, out_name = f"{split}_X", f"{split}_features"
        log.define_array(in_name, shape)
        log.define_array(out_name, (shape[0],))
        data = np.random.default_rng(index).normal(size=shape)

        start = time.perf_counter()
        record = log.register_operation(
            "featurize",
            in_arrs=[in_name],
            out_arrs=[out_name],
            relations={(in_name, out_name): featurize_lineage(shape)},
            input_data={in_name: data},
            reuse=True,
        )
        elapsed = (time.perf_counter() - start) * 1000
        source = record.reuse_level or "fresh capture"
        print(f"{split:>10}: lineage from {source:<14} ({elapsed:6.1f} ms)")

    # Reused lineage answers queries exactly like freshly captured lineage.
    result = log.prov_query(["test_features", "test_X"], [(7,)])
    print(f"test_features[7] depends on {result.count_cells()} cells of test_X (expected 16)")
    print(f"reuse statistics: {log.reuse.stats()}")


if __name__ == "__main__":
    main()
