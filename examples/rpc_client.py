"""Binary RPC transport: one catalog served over HTTP and frames at once.

``log.serve(transport="both")`` runs the JSON HTTP API and the framed
binary RPC protocol side by side over one shared ``ServiceCore`` — same
executor, same result cache, same handlers, so the two transports can
never disagree about an answer.  What differs is the envelope: HTTP pays
header parsing and numpy → list → JSON double-encoding per round trip,
while RPC ships length-prefixed frames over persistent pooled sockets
and hydrates result boxes with ``np.frombuffer`` (zero copies).

The example:

1. builds a 3-hop sharded catalog and serves it over both transports,
2. proves HTTP and RPC return byte-identical payloads for the same query,
3. races the two transports over an uncached query mix, sequential and
   request-id pipelined (`prov_query_pipelined`: N frames in flight on
   one socket, responses matched by id),
4. scrapes the per-opcode RPC counters from the *HTTP* ``/metrics``
   endpoint — observability stays on the debuggable port.

Run with:  python examples/rpc_client.py
"""

import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DSLog
from repro.core.relation import LineageRelation
from repro.service.rpc import RPCClient
from repro.service.server import LineageClient

SHAPE = (24, 24)
CHAIN = ["raw", "cleaned", "scores"]
ROUNDS = 20


def scatter(in_name, out_name):
    """Each output cell reads itself plus two wrap-around neighbors."""
    rows, cols = SHAPE
    pairs = []
    for i in range(rows):
        for j in range(cols):
            pairs.append(((i, j), (i, j)))
            pairs.append(((i, j), ((i + 1) % rows, j)))
            pairs.append(((i, j), (i, (j + 1) % cols)))
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


def build_catalog(root):
    log = DSLog(root, backend="sharded", num_shards=4, autosync=False)
    for name in CHAIN:
        log.define_array(name, SHAPE)
    for a, b in zip(CHAIN, CHAIN[1:]):
        log.add_lineage(a, b, relation=scatter(a, b))
    log.sync()
    return log


def query_mix():
    rows, cols = SHAPE
    one_hop = CHAIN[:2]
    return [
        {"path": one_hop, "slices": [[0, rows], [0, cols]], "merge": False},
        {"path": one_hop, "slices": [[0, rows], [0, cols]], "include_cells": True},
        {"path": CHAIN, "slices": [[0, rows // 2], [0, cols // 2]]},
        {"path": one_hop, "cells": [[1, 1], [5, 9], [12, 3]]},
    ]


def stable(payload):
    """Strip the per-run timing fields so payloads compare equal."""
    payload = dict(payload)
    payload.pop("elapsed_ms", None)
    payload.pop("cached", None)
    payload["hops"] = [
        {k: v for k, v in hop.items() if k != "seconds"} for hop in payload["hops"]
    ]
    return json.dumps(payload, sort_keys=True)


def run_mix(prov_query, mix, rounds):
    start = time.monotonic()
    for _ in range(rounds):
        for request in mix:
            request = dict(request)
            prov_query(request.pop("path"), **request)
    return time.monotonic() - start


def main():
    with tempfile.TemporaryDirectory() as root:
        log = build_catalog(root)
        # cache off so every round trip re-runs the θ-join chain — the
        # difference between the transports is pure envelope cost
        server = log.serve(transport="both", cache_entries=0)
        http = LineageClient.connect(server.url)
        rpc = RPCClient.connect(server.rpc_address)
        print(f"HTTP at {server.url}, RPC at {server.rpc_address}\n")

        # -- 1. the transports agree, byte for byte ---------------------
        mix = query_mix()
        for request in mix:
            request = dict(request)
            path = request.pop("path")
            assert stable(http.prov_query(path, **request)) == stable(
                rpc.prov_query(path, **request)
            )
        print(f"byte-identical answers across transports: {len(mix)} query shapes")

        # -- 2. uncached round-trip race -------------------------------
        run_mix(http.prov_query, mix, 1)  # warm tables + connections
        run_mix(rpc.prov_query, mix, 1)
        http_wall = run_mix(http.prov_query, mix, ROUNDS)
        rpc_wall = run_mix(rpc.prov_query, mix, ROUNDS)
        start = time.monotonic()
        for _ in range(ROUNDS):
            rpc.prov_query_pipelined(mix, window=len(mix))
        pipelined_wall = time.monotonic() - start
        queries = ROUNDS * len(mix)
        print(f"\n{queries} uncached queries per transport:")
        print(f"  HTTP keep-alive : {http_wall * 1000:7.1f} ms")
        print(
            f"  RPC sequential  : {rpc_wall * 1000:7.1f} ms "
            f"({http_wall / rpc_wall:.1f}x)"
        )
        print(
            f"  RPC pipelined   : {pipelined_wall * 1000:7.1f} ms "
            f"({http_wall / pipelined_wall:.1f}x)"
        )

        # -- 3. per-opcode RPC metrics, scraped over HTTP ---------------
        families = http.metrics_text()
        print("\nper-opcode RPC counters (from HTTP /metrics):")
        for line in families.splitlines():
            if line.startswith("dslog_rpc_requests_total"):
                print(f"  {line}")

        http.close()
        rpc.close()
        server.close()
        log.close()


if __name__ == "__main__":
    main()
