"""Pytest bootstrap: make the in-tree package importable without installation.

The environment used for the reproduction has no network access and no
``wheel`` package, so ``pip install -e .`` cannot build an editable wheel.
Adding ``src`` to ``sys.path`` here keeps ``pytest`` working either way.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
