"""The sharded multi-writer store: routing, durability, per-shard maintenance."""

import json

import numpy as np
import pytest

from repro import DSLog
from repro.core.relation import LineageRelation
from repro.service.shards import (
    DEFAULT_NUM_SHARDS,
    SHARDS_NAME,
    ShardedLineageStore,
    load_shards_file,
    shard_index,
)
from repro.storage.catalog import LineageConflictError

SHAPE = (4,)


def elementwise(in_name, out_name, shape=SHAPE):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(
        pairs, shape, shape, in_name=in_name, out_name=out_name
    )


def build_chain(log, n, prefix="A"):
    names = [f"{prefix}{i:03d}" for i in range(n + 1)]
    for name in names:
        log.define_array(name, SHAPE)
    for a, b in zip(names, names[1:]):
        log.add_lineage(a, b, relation=elementwise(a, b), op_name=f"op_{a}")
    return names


class TestShardRouting:
    def test_shard_index_is_stable_and_in_range(self):
        for n in (1, 2, 4, 7):
            idx = shard_index("input", "output", n)
            assert 0 <= idx < n
            assert idx == shard_index("input", "output", n)

    def test_different_pairs_spread_over_shards(self):
        hits = {shard_index(f"a{i}", f"b{i}", 4) for i in range(64)}
        assert hits == {0, 1, 2, 3}

    def test_entries_land_in_their_hash_shard(self, tmp_path):
        log = DSLog(tmp_path / "db", backend="sharded", num_shards=4, autosync=False)
        names = build_chain(log, 12)
        log.close()
        for a, b in zip(names, names[1:]):
            home = shard_index(a, b, 4)
            manifest = json.loads(
                (tmp_path / "db" / f"shard-{home:02d}" / "MANIFEST.json").read_text()
            )
            assert [a, b] in [[row["in"], row["out"]] for row in manifest["entries"]]


class TestShardsFile:
    def test_shards_file_written_once(self, tmp_path):
        store = ShardedLineageStore(tmp_path / "db", num_shards=3, gzip=False)
        data = load_shards_file(tmp_path / "db")
        assert data["num_shards"] == 3 and data["gzip"] is False
        store.close()
        # reopening with different parameters: the on-disk layout wins
        reopened = ShardedLineageStore(tmp_path / "db", num_shards=8, gzip=True)
        assert reopened.num_shards == 3 and reopened.gzip is False
        reopened.close()

    def test_load_rejects_foreign_format(self, tmp_path):
        (tmp_path / SHARDS_NAME).write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a"):
            load_shards_file(tmp_path)

    def test_default_shard_count(self, tmp_path):
        log = DSLog(tmp_path / "db", backend="sharded")
        assert log.store.num_shards == DEFAULT_NUM_SHARDS
        log.close()


class TestDurability:
    def test_reopen_reproduces_catalog(self, tmp_path):
        log = DSLog(tmp_path / "db", backend="sharded", num_shards=4, autosync=False)
        names = build_chain(log, 10)
        log.define_array("OUT", SHAPE)
        log.register_operation(
            "double",
            [names[-1]],
            ["OUT"],
            captures={(names[-1], "OUT"): lambda cell: [cell]},
            input_data={names[-1]: np.arange(4)},
        )
        log.close()

        reopened = DSLog.load(tmp_path / "db")
        assert reopened.backend == "sharded"
        assert len(reopened.catalog) == 11
        assert {e.op_name for e in reopened.catalog.entries()} >= {"op_A000"}
        assert len(reopened.catalog.operations) == 1
        assert reopened.catalog.operations[0].op_name == "double"
        # zero tables deserialized by the cold open (the reuse predictor
        # hydrates lazily, so it must be touched only after this check)
        assert reopened.store.tables_deserialized == 0
        assert reopened.reuse.stats()["base_entries"] == 1
        result = reopened.prov_query([names[0], names[3]], [(2,)])
        assert result.to_cells() == {(2,)}
        reopened.close()

    def test_generation_vector_moves_per_shard(self, tmp_path):
        log = DSLog(tmp_path / "db", backend="sharded", num_shards=4, autosync=False)
        log.define_array("x", SHAPE)
        log.define_array("y", SHAPE)
        log.add_lineage("x", "y", relation=elementwise("x", "y"))
        log.sync()
        vector = log.store.generation_vector()
        home = shard_index("x", "y", 4)
        assert vector[home] >= 1
        untouched = [g for i, g in enumerate(vector) if i not in (home, 0)]
        assert all(g == 0 for g in untouched)
        log.close()

    def test_replace_versions_and_updates_row_in_place(self, tmp_path):
        log = DSLog(tmp_path / "db", backend="sharded", num_shards=2, autosync=False)
        log.define_array("x", SHAPE)
        log.define_array("y", SHAPE)
        log.add_lineage("x", "y", relation=elementwise("x", "y"), op_name="first")
        with pytest.raises(LineageConflictError):
            log.add_lineage("x", "y", relation=elementwise("x", "y"), op_name="again")
        log.add_lineage(
            "x", "y", relation=elementwise("x", "y"), op_name="second", replace=True
        )
        entry = log.catalog.entry("x", "y")
        assert entry.version == 2 and entry.op_name == "second"
        log.close()
        reopened = DSLog.load(tmp_path / "db")
        assert len(reopened.catalog) == 1
        entry = reopened.catalog.entry("x", "y")
        assert entry.version == 2 and entry.op_name == "second"
        home = shard_index("x", "y", reopened.store.num_shards)
        rows = reopened.store.shard(home).manifest.entries
        assert len(rows) == 1  # replaced in place, not appended
        reopened.close()

    def test_sharded_matches_segment_backend_answers(self, tmp_path):
        sharded = DSLog(tmp_path / "sharded", backend="sharded", num_shards=4, autosync=False)
        segment = DSLog(tmp_path / "segment", backend="segment", autosync=False)
        for log in (sharded, segment):
            build_chain(log, 8)
            log.close()
        sharded = DSLog.load(tmp_path / "sharded")
        segment = DSLog.load(tmp_path / "segment")
        for path in (["A000", "A001"], ["A002", "A005"], ["A007", "A003"]):
            cells = [(1,), (3,)]
            assert (
                sharded.prov_query(path, cells).to_cells()
                == segment.prov_query(path, cells).to_cells()
            )
        assert sharded.lineage_summary()["entries"] == segment.lineage_summary()["entries"]
        sharded.close()
        segment.close()


class TestPerShardMaintenance:
    def test_compact_single_shard_leaves_others_alone(self, tmp_path):
        log = DSLog(tmp_path / "db", backend="sharded", num_shards=3, autosync=False)
        build_chain(log, 12)
        log.sync()
        # replace a few entries to create dead bytes in their home shards
        log.add_lineage("A001", "A002", relation=elementwise("A001", "A002"), replace=True)
        home = shard_index("A001", "A002", 3)
        other = next(i for i in range(3) if i != home)
        before_other = log.store.shard(other).segment_bytes()
        stats = log.compact(shard=home)
        assert set(stats) == {home}
        assert stats[home]["reclaimed_bytes"] > 0
        assert log.store.shard(other).segment_bytes() == before_other
        # catalog still answers after the compaction remap
        assert log.prov_query(["A001", "A002"], [(0,)]).to_cells() == {(0,)}
        log.close()

    def test_compact_all_shards(self, tmp_path):
        log = DSLog(tmp_path / "db", backend="sharded", num_shards=2, autosync=False)
        build_chain(log, 6)
        log.sync()
        stats = log.compact()
        assert set(stats) == {0, 1}
        reopened = DSLog.load(tmp_path / "db")
        assert len(reopened.catalog) == 6
        assert reopened.prov_query(["A000", "A001"], [(2,)]).to_cells() == {(2,)}
        reopened.close()
        log.close()

    def test_per_shard_cache_budget(self, tmp_path):
        store = ShardedLineageStore(tmp_path / "db", num_shards=4, cache_bytes=4000)
        assert all(shard.cache.budget_bytes == 1000 for shard in store.shards)
        store.close()

    def test_storage_accounting_sums_shards(self, tmp_path):
        log = DSLog(tmp_path / "db", backend="sharded", num_shards=4, autosync=False)
        build_chain(log, 8)
        log.sync()
        assert log.store.segment_bytes() == sum(
            s.segment_bytes() for s in log.store.shards
        )
        assert log.store.live_bytes() > 0
        assert log.storage_bytes() > 0
        log.close()
