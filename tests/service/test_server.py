"""The HTTP serving tier: endpoint behavior, structured error payloads for
every failure mode (malformed JSON, unknown arrays, bad parameters), query
correctness under concurrent compaction, and client retry semantics."""

import http.client
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import DSLog, LineageClient
from repro.core.relation import LineageRelation
from repro.service.server import (
    LineageConnectionError,
    LineageServer,
    LineageServerError,
)

SHAPE = (6, 6)


def identity(in_name, out_name):
    pairs = [((i, j), (i, j)) for i in range(SHAPE[0]) for j in range(SHAPE[1])]
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


@pytest.fixture
def log(tmp_path):
    log = DSLog(tmp_path / "db", backend="sharded", num_shards=4)
    for name in ("a", "b", "c"):
        log.define_array(name, SHAPE)
    log.add_lineage("a", "b", relation=identity("a", "b"))
    log.add_lineage("b", "c", relation=identity("b", "c"))
    yield log
    log.close()


@pytest.fixture
def server(log):
    server = log.serve(port=0)
    yield server
    server.close()


@pytest.fixture
def client(server):
    return LineageClient.connect(server.url, timeout=5.0)


def _raw_post(url, route, data: bytes):
    """POST raw bytes, returning (status, parsed JSON payload)."""
    request = urllib.request.Request(
        url + route,
        data=data,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


# ----------------------------------------------------------------------
# happy paths
# ----------------------------------------------------------------------
def test_healthz(client, log):
    payload = client.healthz()
    assert payload["status"] == "ok"
    assert payload["backend"] == "sharded"
    assert payload["entries"] == 2
    assert len(payload["generations"]) == 4
    assert payload["executor"]["cache"]["max_entries"] > 0


def test_query_with_cells_and_cache_flag(client, log):
    payload = client.prov_query(["a", "b", "c"], cells=[[1, 1], [2, 3]])
    assert payload["array"] == "c"
    assert payload["count"] == 2
    assert len(payload["hops"]) == 2
    assert payload["cached"] is False
    assert client.prov_query(["a", "b", "c"], cells=[[1, 1], [2, 3]])["cached"] is True


def test_query_with_slices_and_cells_payload(client, log):
    payload = client.prov_query(["a", "b"], slices=[[0, 2], [0, 2]], include_cells=True)
    assert payload["count"] == 4
    assert payload["cells"] == [[0, 0], [0, 1], [1, 0], [1, 1]]
    expected = log.prov_query(["a", "b"], [(i, j) for i in range(2) for j in range(2)])
    assert payload["count"] == expected.count_cells()


def test_graph_endpoints(client, log):
    assert client.impact("a") == {"b": 1, "c": 2}
    assert client.dependencies("c") == {"b": 1, "a": 2}
    summary = client.lineage_summary()
    assert summary["entries"] == 2 and summary["roots"] == ["a"]
    assert summary["edges"] == [["a", "b"], ["b", "c"]]


# ----------------------------------------------------------------------
# error paths: always a structured payload, never a hung socket
# ----------------------------------------------------------------------
def test_malformed_json_body(server):
    status, payload = _raw_post(server.url, "/query", b"{this is not json")
    assert status == 400
    assert payload["error"]["type"] == "bad-json"
    assert "malformed JSON" in payload["error"]["message"]


def test_non_object_json_body(server):
    status, payload = _raw_post(server.url, "/query", b'["just", "a", "list"]')
    assert status == 400
    assert payload["error"]["type"] == "bad-json"


def test_unknown_array_name(client):
    with pytest.raises(LineageServerError) as excinfo:
        client.prov_query(["nope", "b"], cells=[[1, 1]])
    assert excinfo.value.status == 404
    assert excinfo.value.kind == "not-found"
    assert "nope" in excinfo.value.message


def test_unknown_graph_array(client):
    with pytest.raises(LineageServerError) as excinfo:
        client.impact("missing")
    assert excinfo.value.status == 404


def test_disconnected_arrays_are_not_found(client, log):
    log.define_array("island", SHAPE)
    with pytest.raises(LineageServerError) as excinfo:
        client.prov_query(["a", "island"], cells=[[1, 1]])
    assert excinfo.value.status == 404


@pytest.mark.parametrize(
    "body",
    [
        {},  # no path
        {"path": ["a"]},  # too short
        {"path": ["a", "b"]},  # neither cells nor slices
        {"path": ["a", "b"], "cells": [[1, 1]], "slices": [[0, 1]]},  # both
        {"path": "a,b", "cells": [[1, 1]]},  # path not a list
        {"path": ["a", 7], "cells": [[1, 1]]},  # non-string array name
        {"path": ["a", "b"], "slices": [5]},  # slice entry not a pair
        {"path": ["a", "b"], "slices": [[0, 1, 2]]},  # pair of wrong length
        {"path": ["a", "b"], "slices": [["x", 1]]},  # non-integer bound
        {"path": ["a", "b"], "cells": [{"x": 1}]},  # cell not a coordinate
        {"path": ["a", "b"], "cells": [["x", "y"]]},  # non-integer coordinates
    ],
)
def test_bad_request_parameters(server, body):
    status, payload = _raw_post(server.url, "/query", json.dumps(body).encode())
    assert status == 400
    assert payload["error"]["type"] == "bad-request"


def test_missing_array_param(server):
    status = urllib.request.urlopen(server.url + "/graph/impact?array=a", timeout=10).status
    assert status == 200
    try:
        urllib.request.urlopen(server.url + "/graph/impact", timeout=10)
    except urllib.error.HTTPError as error:
        assert error.code == 400
        assert json.loads(error.read())["error"]["type"] == "bad-request"
    else:
        raise AssertionError("expected a 400")


def test_unknown_endpoint_and_wrong_method(server, client):
    with pytest.raises(LineageServerError) as excinfo:
        client._request("GET", "/nope")
    assert excinfo.value.status == 404
    with pytest.raises(LineageServerError) as excinfo:
        client._request("GET", "/query")  # POST-only endpoint
    assert excinfo.value.status == 405
    assert excinfo.value.kind == "method-not-allowed"


# ----------------------------------------------------------------------
# queries racing compaction
# ----------------------------------------------------------------------
def test_queries_during_compaction(log, server):
    """Queries issued while the store is repeatedly compacted (and mutated,
    so compaction has dead bytes to reclaim) must stay correct — snapshot
    pins retire rather than delete segment files mid-read."""
    client = LineageClient.connect(server.url, timeout=5.0)
    expected = log.prov_query(["a", "b", "c"], [(1, 1), (2, 3)]).count_cells()
    stop = threading.Event()
    errors = []

    def churn():
        while not stop.is_set():
            try:
                log.add_lineage("a", "b", relation=identity("a", "b"), replace=True)
                log.compact()
            except Exception as error:  # pragma: no cover - fail the test below
                errors.append(error)
                return

    thread = threading.Thread(target=churn)
    thread.start()
    try:
        for _ in range(25):
            payload = client.prov_query(["a", "b", "c"], cells=[[1, 1], [2, 3]])
            assert payload["count"] == expected
    finally:
        stop.set()
        thread.join()
    assert not errors


# ----------------------------------------------------------------------
# client retry
# ----------------------------------------------------------------------
def test_client_retries_on_connection_reset(client, monkeypatch):
    real_request = http.client.HTTPConnection.request
    failures = {"left": 2}

    def flaky(self, *args, **kwargs):
        if failures["left"] > 0:
            failures["left"] -= 1
            raise ConnectionResetError("peer reset")
        return real_request(self, *args, **kwargs)

    monkeypatch.setattr(http.client.HTTPConnection, "request", flaky)
    assert client.healthz()["status"] == "ok"
    assert failures["left"] == 0
    assert client.retries_used == 2


def test_client_retries_exhausted(client, monkeypatch):
    def always_reset(self, *args, **kwargs):
        raise ConnectionResetError("peer reset")

    monkeypatch.setattr(http.client.HTTPConnection, "request", always_reset)
    client.retries = 2
    client.backoff = 0.001
    with pytest.raises(LineageConnectionError) as excinfo:
        client.healthz()
    assert "3 attempts" in str(excinfo.value)


def test_client_does_not_retry_http_errors(client, monkeypatch):
    """A structured server error must surface immediately, not be retried."""
    calls = {"count": 0}
    real_request = http.client.HTTPConnection.request

    def counting(self, *args, **kwargs):
        calls["count"] += 1
        return real_request(self, *args, **kwargs)

    monkeypatch.setattr(http.client.HTTPConnection, "request", counting)
    with pytest.raises(LineageServerError):
        client.impact("missing")
    assert calls["count"] == 1


def test_client_reuses_keepalive_connection(server, monkeypatch):
    """The steady state is one persistent connection per thread — repeated
    requests must not dial a new socket each time."""
    dials = {"count": 0}
    real_connect = http.client.HTTPConnection.connect

    def counting_connect(self):
        dials["count"] += 1
        return real_connect(self)

    monkeypatch.setattr(http.client.HTTPConnection, "connect", counting_connect)
    fresh = LineageClient(server.url)
    try:
        for _ in range(5):
            assert fresh.healthz()["status"] == "ok"
    finally:
        fresh.close()
    assert dials["count"] == 1


def test_client_redials_after_server_side_close(server, client):
    """A half-closed keep-alive socket (server restarted / idle reset) must
    be re-dialed transparently instead of failing the request."""
    assert client.healthz()["status"] == "ok"
    # break the persistent connection under the client the way a remote
    # close does: the next send sees a dead peer, not a clean socket
    client._local.conn.sock.shutdown(socket.SHUT_RDWR)
    assert client.healthz()["status"] == "ok"
    assert client.retries_used >= 1


def test_connect_waits_for_late_server(log):
    server = LineageServer(log, port=0)
    url = server.url

    def start_later():
        time.sleep(0.2)
        server.start()

    thread = threading.Thread(target=start_later)
    thread.start()
    try:
        client = LineageClient.connect(url, timeout=10.0, retries=0)
        assert client.healthz()["status"] == "ok"
    finally:
        thread.join()
        server.close()


def test_connect_times_out_when_no_server():
    with pytest.raises(LineageConnectionError):
        LineageClient.connect("http://127.0.0.1:9", timeout=0.3, retries=0)


def test_service_serve_reads_applied_state(tmp_path):
    from repro import LineageService

    with LineageService(tmp_path / "db", workers=2, num_shards=4) as service:
        service.define_array("a", SHAPE)
        service.define_array("b", SHAPE)
        service.submit("op", ["a"], ["b"], relations={("a", "b"): identity("a", "b")}).result(
            timeout=30
        )
        with service.serve(port=0) as server:
            client = LineageClient.connect(server.url, timeout=5.0)
            assert client.prov_query(["a", "b"], cells=[[2, 2]])["count"] == 1


# ----------------------------------------------------------------------
# batched queries: /query_batch and the request coalescer
# ----------------------------------------------------------------------
from repro.service.query import QueryOutcome  # noqa: E402
from repro.service.server import QueryCoalescer  # noqa: E402


def test_query_batch_matches_single(client):
    queries = [(["c", "b", "a"], [[i, i]]) for i in range(4)]
    batch = client.prov_query_batch(queries)
    assert len(batch) == 4
    for (path, cells), entry in zip(queries, batch):
        single = client.prov_query(path, cells=cells)
        assert entry["boxes"] == single["boxes"]
        assert entry["count"] == single["count"]
        assert entry["hops"] == single["hops"] or len(entry["hops"]) == len(single["hops"])


def test_query_batch_empty_is_400(client, server):
    for body in ({"queries": []}, {"queries": "nope"}, {}):
        status, payload = _raw_post(
            server.url, "/query_batch", json.dumps(body).encode()
        )
        assert status == 400
        assert payload["error"]["type"] == "bad-request"


def test_query_batch_per_item_errors(client):
    """One malformed entry and one unknown array must come back as per-item
    structured errors while their batch-mates succeed."""
    results = client.prov_query_batch(
        [
            (["a", "b"], [[1, 1]]),
            {"path": ["a"]},  # too short: parse error
            (["ghost", "b"], [[0, 0]]),  # unknown array
            (["b", "c"], [[2, 2]]),
        ]
    )
    assert results[0]["count"] == 1 and results[3]["count"] == 1
    assert results[1]["error"]["type"] == "bad-request"
    assert results[1]["error"]["status"] == 400
    assert results[2]["error"]["type"] == "not-found"
    assert results[2]["error"]["status"] == 404


def test_query_batch_mixed_cached_uncached(client):
    client.prov_query(["a", "b"], cells=[[1, 1]])  # prime the cache
    results = client.prov_query_batch(
        [(["a", "b"], [[1, 1]]), (["a", "b"], [[2, 2]])]
    )
    assert results[0]["cached"] is True
    assert results[1]["cached"] is False


def test_query_batch_mixed_merge_flags(client):
    results = client.prov_query_batch(
        [
            {"path": ["c", "a"], "slices": [[0, 3], [0, 3]], "merge": True},
            {"path": ["c", "a"], "slices": [[0, 3], [0, 3]], "merge": False},
        ]
    )
    assert results[0]["count"] == results[1]["count"] == 9
    assert results[0]["boxes_merged"] <= results[1]["boxes_merged"]


# -- coalescer unit tests (fake executor: deterministic, no HTTP timing) --
class _FakeExecutor:
    def __init__(self):
        self.calls = []
        self.entered = threading.Event()  # set when a flush reaches us
        self.release = threading.Event()
        self.release.set()
        self.error = None

    def query_batch(self, requests, merge=True, deadline=None):
        self.entered.set()
        self.release.wait(timeout=5)
        self.calls.append([path for path, _ in requests])
        if self.error is not None:
            raise self.error
        return [QueryOutcome(("result", tuple(p)), False, False) for p, _ in requests]


def test_coalescer_lone_request_flushes_immediately():
    """The no-deadlock rule: one waiter on an otherwise idle queue must not
    wait out the window (here an absurd 10s — an immediate flush is the
    only way this test finishes)."""
    ex = _FakeExecutor()
    coalescer = QueryCoalescer(ex, window_ms=10_000)
    try:
        start = time.monotonic()
        outcome = coalescer.submit(["a", "b"], [(0, 0)])
        elapsed = time.monotonic() - start
        assert outcome.result == ("result", ("a", "b"))
        assert elapsed < 2.0
        assert coalescer.stats()["flushes"] == {"idle": 1, "window": 0}
    finally:
        coalescer.close()


def test_coalescer_window_groups_concurrent_requests():
    """Requests piling up while a batch executes are flushed together once
    the tick expires; requests after that flush start a new batch."""
    ex = _FakeExecutor()
    ex.release.clear()  # park the flusher inside the first batch
    coalescer = QueryCoalescer(ex, window_ms=20)
    try:
        threads = [
            threading.Thread(target=coalescer.submit, args=([name, "x"], [(0, 0)]))
            for name in ("first", "second", "third")
        ]
        threads[0].start()
        # wait until the flusher is *inside* the executor with the first
        # request — only then is it guaranteed to be a batch of one
        assert ex.entered.wait(timeout=5)
        threads[1].start()
        threads[2].start()
        while coalescer.stats()["pending"] < 2:
            time.sleep(0.001)  # 2 and 3 pile up behind the parked flush
        ex.release.set()  # unblock: first flush finishes, tick groups 2 and 3
        for thread in threads:
            thread.join(timeout=5)
        assert [len(call) for call in ex.calls] == [1, 2]
        stats = coalescer.stats()
        assert stats["flushes"] == {"idle": 1, "window": 1}
        assert stats["largest_batch"] == 2
        # tick boundary: a request arriving after the flush is its own batch
        coalescer.submit(["late", "x"], [(0, 0)])
        assert [len(call) for call in ex.calls] == [1, 2, 1]
    finally:
        coalescer.close()


def test_coalescer_propagates_batch_errors():
    ex = _FakeExecutor()
    ex.error = RuntimeError("boom")
    coalescer = QueryCoalescer(ex, window_ms=5)
    try:
        with pytest.raises(RuntimeError, match="boom"):
            coalescer.submit(["a", "b"], [(0, 0)])
    finally:
        coalescer.close()


def test_coalescer_rejects_after_close():
    ex = _FakeExecutor()
    coalescer = QueryCoalescer(ex, window_ms=5)
    coalescer.close()
    with pytest.raises(RuntimeError):
        coalescer.submit(["a", "b"], [(0, 0)])


# -- coalescer over HTTP --
def test_coalesced_server_single_thread_client(log):
    """Regression for the single-request deadlock: a 1-thread client against
    a coalescing server must get every answer promptly, and the answers must
    match the non-coalesced path bit for bit."""
    server = log.serve(port=0, coalesce_ms=100)
    try:
        client = LineageClient.connect(server.url, timeout=5.0, retries=0)
        plain = log.prov_query(["a", "b", "c"], [(1, 1), (2, 3)])
        start = time.monotonic()
        for _ in range(3):
            payload = client.prov_query(["a", "b", "c"], cells=[[1, 1], [2, 3]])
            assert payload["count"] == plain.count_cells()
        elapsed = time.monotonic() - start
        assert elapsed < 3 * 0.1 + 2.0  # nowhere near 3 full windows + slack
        health = client.healthz()
        assert health["coalescer"]["queries"] == 3
        assert health["coalescer"]["flushes"]["idle"] >= 1
    finally:
        server.close()


def test_coalescing_disabled_by_default(server, client):
    assert server.coalescer is None
    assert client.healthz()["coalescer"] is None


def test_coalesce_env_knob(log, monkeypatch):
    monkeypatch.setenv("DSLOG_COALESCE_MS", "25")
    server = log.serve(port=0)
    try:
        assert server.coalescer is not None
        assert server.coalescer.window == pytest.approx(0.025)
    finally:
        server.close()
    monkeypatch.setenv("DSLOG_COALESCE_MS", "not-a-number")
    with pytest.raises(ValueError):
        log.serve(port=0)
