"""RPC transport under injected faults: stalls, connection kills and torn
(short-write) response frames at the ``rpc.send`` site must degrade to
reconnect-and-retry on the client — bounded by the retry budget, never a
hang, and never a corrupt result.

Marked ``faults`` so tier-1 stays fast; CI's fault-soak job re-runs these
under the widened ``DSLOG_SOAK_SEEDS`` matrix alongside the storage and
service soaks."""

import os

import numpy as np
import pytest

from repro import DSLog, FaultPlan
from repro.core.relation import LineageRelation
from repro.faults import FaultRule
from repro.service.rpc import RPCClient, RPCServer
from repro.service.server import LineageConnectionError

pytestmark = pytest.mark.faults

SHAPE = (4, 4)
SEEDS = [int(s) for s in os.environ.get("DSLOG_SOAK_SEEDS", "101,202,303").split(",")]


def identity(in_name, out_name):
    pairs = [(cell, cell) for cell in np.ndindex(*SHAPE)]
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


@pytest.fixture
def log():
    log = DSLog()
    for name in ("a", "b", "c"):
        log.define_array(name, SHAPE)
    log.add_lineage("a", "b", relation=identity("a", "b"))
    log.add_lineage("b", "c", relation=identity("b", "c"))
    return log


def serve_with_plan(log, plan):
    return RPCServer(log, fault_plan=plan).start()


def test_short_write_mid_frame_degrades_to_retry(log):
    """A response frame torn partway through transmission must surface to
    the client as a short read, and the retried request must succeed."""
    plan = FaultPlan().on("rpc.send", kind="short_write", at=2, fraction=0.3)
    server = serve_with_plan(log, plan)
    try:
        client = RPCClient.connect(server.address)  # consumes send #1
        plan.arm()
        result = client.prov_query(["a", "b", "c"], cells=[[1, 1]])  # send #2 torn
        assert result["count"] == 1
        assert result["boxes"] == [[[1, 1], [1, 1]]]
        assert client.retries_used >= 1
        assert plan.fired("rpc.send") == 1
        client.close()
    finally:
        server.close()


def test_connection_kill_before_response_degrades_to_retry(log):
    plan = FaultPlan().on("rpc.send", kind="error", at=2)
    server = serve_with_plan(log, plan)
    try:
        client = RPCClient.connect(server.address)
        plan.arm()
        result = client.prov_query(["a", "b"], cells=[[2, 3]])
        assert result["count"] == 1
        assert client.retries_used >= 1
        client.close()
    finally:
        server.close()


def test_stall_is_waited_out_not_hung(log):
    """A stalled response delays the reply; the client must ride it out
    within its socket timeout rather than erroring or hanging."""
    plan = FaultPlan().on("rpc.send", kind="stall", at=2, seconds=0.2)
    server = serve_with_plan(log, plan)
    try:
        client = RPCClient.connect(server.address, timeout=5.0)
        plan.arm()
        result = client.prov_query(["a", "b"], cells=[[0, 0]])
        assert result["count"] == 1
        assert client.retries_used == 0  # delayed, not broken
        assert plan.fired("rpc.send") == 1
        client.close()
    finally:
        server.close()


def test_stall_past_socket_timeout_is_retried(log):
    """A stall longer than the client's socket timeout must become a
    timeout → reconnect → retry, never an indefinite wait."""
    plan = FaultPlan().on("rpc.send", kind="stall", at=2, seconds=1.0)
    server = serve_with_plan(log, plan)
    try:
        # construct directly: RPCClient.connect's timeout is the rendezvous
        # deadline, while this test needs a short per-socket timeout
        client = RPCClient(server.address, timeout=0.2, backoff=0.01)
        client.ping()  # send #1, warms the pooled connection
        plan.arm()
        result = client.prov_query(["a", "b"], cells=[[1, 2]])
        assert result["count"] == 1
        assert client.retries_used >= 1
        client.close()
    finally:
        server.close()


def test_persistent_faults_exhaust_budget_with_structured_error(log):
    """When every response dies, the client must give up inside its retry
    budget with a LineageConnectionError — not loop forever."""
    plan = FaultPlan().on("rpc.send", kind="error", every=1)
    server = serve_with_plan(log, plan)
    try:
        plan.arm()
        client = RPCClient(
            server.address, retries=2, backoff=0.01, retry_budget=1.0
        )
        with pytest.raises(LineageConnectionError, match="attempts"):
            client.prov_query(["a", "b"], cells=[[0, 1]])
        assert plan.fired("rpc.send") >= 3  # initial try + 2 retries
        client.close()
    finally:
        server.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_random_send_faults_soak(log, seed):
    """Seeded random mix of kills and torn frames on the response path: a
    generously-budgeted client must land every query with the right answer
    (results are idempotent reads, so retry is always safe)."""
    plan = FaultPlan(
        [
            # independent seeded schedules so kills and tears interleave
            FaultRule("rpc.send", kind="error", rate=0.15, seed=seed),
            FaultRule("rpc.send", kind="short_write", rate=0.15, seed=seed + 1),
        ]
    )
    server = serve_with_plan(log, plan)
    try:
        client = RPCClient.connect(
            server.address, retries=8, backoff=0.005, retry_budget=10.0
        )
        plan.arm()
        expected = [(cell, 1) for cell in ([[0, 0]], [[1, 2]], [[3, 3]])]
        for _ in range(15):
            for cells, count in expected:
                result = client.prov_query(["a", "b", "c"], cells=cells)
                assert result["count"] == count
                assert result["boxes"] == [[cells[0], cells[0]]]
        client.close()
    finally:
        server.close()
