"""Snapshot-isolated readers: consistent cuts, read-only enforcement, and
compaction running under a live snapshot (stale segment files must remain
readable until the reader drops its pin)."""

import numpy as np
import pytest

from repro import DSLog, LineageService
from repro.core.relation import LineageRelation
from repro.service.snapshot import SnapshotDSLog, SnapshotReadOnlyError
from repro.storage.segments import read_record

SHAPE = (4,)


def elementwise(in_name, out_name, shape=SHAPE):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(
        pairs, shape, shape, in_name=in_name, out_name=out_name
    )


def chain(log, n, prefix="A"):
    names = [f"{prefix}{i}" for i in range(n + 1)]
    for name in names:
        log.define_array(name, SHAPE)
    for a, b in zip(names, names[1:]):
        log.add_lineage(a, b, relation=elementwise(a, b), op_name=f"op_{a}")
    return names


class TestIsolation:
    def test_later_ingest_is_invisible(self, tmp_path):
        log = DSLog(tmp_path / "db", backend="sharded", num_shards=2, autosync=False)
        chain(log, 3)
        snap = log.snapshot()
        assert len(snap.catalog) == 3
        log.define_array("late", SHAPE)
        log.add_lineage("A3", "late", relation=elementwise("A3", "late"))
        assert len(log.catalog) == 4
        assert len(snap.catalog) == 3  # the cut does not move
        with pytest.raises(KeyError):
            snap.catalog.array("late")
        # the snapshot's graph is its own frozen instance
        assert "late" in log.impact("A0")
        assert "late" not in snap.impact("A0")
        snap.close()
        log.close()

    def test_snapshot_of_memory_backend(self):
        log = DSLog()
        chain(log, 2)
        snap = log.snapshot()
        log.define_array("x", SHAPE)
        log.add_lineage("A2", "x", relation=elementwise("A2", "x"))
        assert len(snap.catalog) == 2
        assert snap.prov_query(["A0", "A1"], [(1,)]).to_cells() == {(1,)}
        snap.close()

    def test_read_api_works_and_write_api_raises(self, tmp_path):
        log = DSLog(tmp_path / "db", backend="sharded", autosync=False)
        names = chain(log, 4)
        snap = log.snapshot()
        assert snap.prov_query([names[0], names[2]], [(2,)]).to_cells() == {(2,)}
        assert snap.dependencies(names[3]) == {names[0]: 3, names[1]: 2, names[2]: 1}
        assert snap.lineage_summary()["entries"] == 4
        assert snap.storage_bytes() > 0
        for call in (
            lambda: snap.define_array("nope", SHAPE),
            lambda: snap.add_lineage("A0", "A1", relation=elementwise("A0", "A1")),
            lambda: snap.register_operation("op", ["A0"], ["A1"]),
            lambda: snap.sync(),
            lambda: snap.compact(),
        ):
            with pytest.raises(SnapshotReadOnlyError):
                call()
        # snapshotting a snapshot is the same frozen view
        assert snap.snapshot() is snap
        snap.close()
        snap.close()  # idempotent
        log.close()

    def test_generation_vector_recorded(self, tmp_path):
        log = DSLog(tmp_path / "db", backend="sharded", num_shards=3, autosync=False)
        chain(log, 3)
        log.sync()
        snap = log.snapshot()
        assert isinstance(snap, SnapshotDSLog)
        assert snap.generation_vector == log.store.generation_vector()
        assert len(snap.generation_vector) == 3
        snap.close()
        log.close()


class TestCompactionUnderSnapshot:
    def test_stale_segments_survive_until_release(self, tmp_path):
        """The satellite case: ``compact()`` while a reader holds hydrated
        tables.  The pre-compaction segment files must stay on disk and
        readable until the snapshot drops its pin — then be deleted."""
        log = DSLog(tmp_path / "db", backend="sharded", num_shards=2, autosync=False)
        names = chain(log, 6)
        log.sync()

        snap = log.snapshot()
        # hydrate a table and remember its pre-compaction address
        entry = snap.catalog.entry(names[0], names[1])
        table = entry.backward  # hydrated: the reader holds it now
        old_ref = entry.backward_ref
        home = log.store.shard_for(names[0], names[1])
        shard = log.store.shard(home)
        old_segment = shard._segment_path(old_ref.segment)
        assert old_segment.exists()

        # churn + compact while the snapshot is open
        log.add_lineage(
            names[0], names[1], relation=elementwise(names[0], names[1]), replace=True
        )
        stats = log.compact()
        assert stats[home]["segments_retired"] >= 1
        # stale file still present and the old ref still readable from it
        assert old_segment.exists()
        payload = read_record(old_segment, old_ref.offset, old_ref.length)
        assert len(payload) == old_ref.length
        # the snapshot still answers from its pinned state; a re-read of the
        # entry (through the compaction remap) yields the same table
        assert snap.prov_query([names[1], names[0]], [(2,)]).to_cells() == {(2,)}
        from repro.reuse.signatures import tables_equal

        assert tables_equal(snap.catalog.entry(names[0], names[1]).backward, table)

        snap.close()  # last pin dropped: retired files deleted
        assert not old_segment.exists()
        # the live log is unaffected
        assert log.prov_query([names[0], names[2]], [(1,)]).to_cells() == {(1,)}
        log.close()

    def test_compact_without_pins_deletes_immediately(self, tmp_path):
        log = DSLog(tmp_path / "db", backend="sharded", num_shards=2, autosync=False)
        names = chain(log, 4)
        log.sync()
        old_segments = [
            shard._segment_path(name)
            for shard in log.store.shards
            for name in shard.manifest.segments
        ]
        log.add_lineage(
            names[0], names[1], relation=elementwise(names[0], names[1]), replace=True
        )
        stats = log.compact()
        assert all(s["segments_retired"] == 0 for s in stats.values())
        assert not any(path.exists() for path in old_segments)
        log.close()

    def test_service_snapshot_under_concurrent_compaction(self, tmp_path):
        with LineageService(tmp_path / "db", workers=2, num_shards=2) as svc:
            for i in range(8):
                svc.define_array(f"a{i}", SHAPE)
            for i in range(7):
                svc.submit(
                    f"op{i}",
                    [f"a{i}"],
                    [f"a{i+1}"],
                    relations={(f"a{i}", f"a{i+1}"): elementwise(f"a{i}", f"a{i+1}")},
                ).result(timeout=10)
            snap = svc.snapshot()
            baseline = len(snap.catalog)
            svc.compact()
            svc.submit(
                "late", ["a0"], ["a2"], relations={("a0", "a2"): elementwise("a0", "a2")}
            ).result(timeout=10)
            assert len(snap.catalog) == baseline
            assert snap.prov_query(["a0", "a3"], [(1,)]).to_cells() == {(1,)}
            snap.close()
