"""The failure envelope of the service tier: injected worker/commit faults
fail tickets structurally, slow shards turn into deadline errors instead of
hangs, a faulting shard trips its circuit breaker and the executor keeps
answering from the stale cache flagged degraded, the breaker's half-open
probe heals the shard with a reopen-and-scrub, and the HTTP surface maps
all of it to structured status codes (504 deadline, 503 unavailable /
overloaded) plus the ``degraded`` response flag and ``/healthz`` breaker
states."""

import time

import numpy as np
import pytest

from repro import (
    DeadlineExceeded,
    DSLog,
    FaultPlan,
    InjectedFault,
    LineageService,
    QueryExecutor,
    ShardUnavailable,
)
from repro.core.relation import LineageRelation
from repro.service.server import (
    LineageClient,
    LineageConnectionError,
    LineageServer,
    LineageServerError,
)
from repro.service.shards import shard_index

SHAPE = (4,)
QUERY = [(1,)]
NUM_SHARDS = 2


def elementwise(in_name, out_name, shape=SHAPE):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(
        pairs, shape, shape, in_name=in_name, out_name=out_name
    )


def pair_for_shard(target, prefix="p"):
    """A (in, out) name pair whose home shard is *target*."""
    for i in range(10_000):
        a, b = f"{prefix}{i}_in", f"{prefix}{i}_out"
        if shard_index(a, b, NUM_SHARDS) == target:
            return a, b
    raise AssertionError("no pair found")


def add_pair(log, a, b):
    log.define_array(a, SHAPE)
    log.define_array(b, SHAPE)
    log.add_lineage(a, b, relation=elementwise(a, b))


def build_sharded(root, plan):
    """A sharded catalog with one entry homed on every shard."""
    log = DSLog(
        root, backend="sharded", num_shards=NUM_SHARDS, autosync=False, faults=plan
    )
    pairs = {}
    for shard in range(NUM_SHARDS):
        a, b = pair_for_shard(shard, prefix=f"s{shard}x")
        add_pair(log, a, b)
        pairs[shard] = (a, b)
    log.sync()
    return log, pairs


def kill_shard_reads(log, plan, shard):
    """Arm the plan so every disk read of *shard* fails, and drop the
    shard's table cache so queries must actually hit the disk."""
    plan.on("segment.read", scope=f"shard-{shard:02d}", kind="error", every=1)
    plan.on("segment.mmap", scope=f"shard-{shard:02d}", kind="error", every=1)
    log.store.shards[shard].cache.clear()
    plan.arm()


class TestPipelineFaults:
    def test_worker_fault_fails_ticket_structurally(self, tmp_path):
        plan = FaultPlan().on("service.worker", at=1)
        log = DSLog(
            tmp_path / "db", backend="sharded", num_shards=2, autosync=False, faults=plan
        )
        with LineageService(log=log, workers=1) as svc:
            svc.define_array("x", SHAPE)
            svc.define_array("y", SHAPE)
            plan.arm()
            ticket = svc.submit_lineage("x", "y", relation=elementwise("x", "y"))
            with pytest.raises(InjectedFault):
                ticket.result(timeout=10)
            assert ticket.failed
            plan.disarm()
            # the service keeps ingesting after the fault
            svc.define_array("z", SHAPE)
            entry = svc.submit_lineage("y", "z", relation=elementwise("y", "z")).result(
                timeout=10
            )
            assert entry is not None
        assert plan.fired("service.worker") == 1

    def test_ticket_result_deadline_is_structured(self, tmp_path):
        # a long commit window: the op applies but durability lags, so a
        # short result() wait must raise DeadlineExceeded (a TimeoutError)
        with LineageService(tmp_path / "db", workers=1, commit_interval=30.0) as svc:
            svc.define_array("x", SHAPE)
            svc.define_array("y", SHAPE)
            svc.define_array("w", SHAPE)
            # the first commit window is immediately due; burn it so the
            # ticket under test really waits out the 30s window
            svc.submit_lineage("w", "x", relation=elementwise("w", "x")).result(timeout=10)
            ticket = svc.submit_lineage("x", "y", relation=elementwise("x", "y"))
            with pytest.raises(DeadlineExceeded):
                ticket.result(timeout=0.05)
            assert isinstance(DeadlineExceeded("x"), TimeoutError)  # contract
            svc.flush(timeout=30)
            assert ticket.result(timeout=10) is not None

    def test_commit_fault_fails_the_whole_batch(self, tmp_path):
        plan = FaultPlan().on("service.commit", at=1)
        log = DSLog(
            tmp_path / "db", backend="sharded", num_shards=2, autosync=False, faults=plan
        )
        with LineageService(log=log, workers=2, commit_interval=30.0) as svc:
            svc.define_array("x", SHAPE)
            svc.define_array("y", SHAPE)
            plan.arm()
            ticket = svc.submit_lineage("x", "y", relation=elementwise("x", "y"))
            svc.flush(timeout=30)
            plan.disarm()
            assert ticket.failed
            with pytest.raises(InjectedFault):
                ticket.result(timeout=1)


class TestExecutorDeadlines:
    def test_slow_shard_prefetch_is_a_deadline_not_a_hang(self, tmp_path):
        plan = FaultPlan()
        log, pairs = build_sharded(tmp_path / "db", plan)
        a, b = pairs[1]
        plan.on(
            "segment.read", scope="shard-01", kind="stall", every=1, seconds=0.5
        )
        log.store.shards[1].cache.clear()
        plan.arm()
        with QueryExecutor(log, max_workers=2) as ex:
            start = time.monotonic()
            with pytest.raises(DeadlineExceeded) as excinfo:
                ex.query([a, b], QUERY, deadline=0.05)
            assert time.monotonic() - start < 0.5  # did not ride out the stall
            assert excinfo.value.shard == 1
            assert ex.stats()["deadline_misses"] == 1
        plan.disarm()
        log.close()


class TestBreakerDegradedServing:
    def test_trip_degrade_and_heal(self, tmp_path):
        plan = FaultPlan()
        log, pairs = build_sharded(tmp_path / "db", plan)
        home = 1
        a, b = pairs[home]
        other_a, other_b = pairs[0]
        ex = QueryExecutor(
            log, max_workers=2, breaker_failures=1, breaker_reset_after=0.2
        )
        try:
            fresh = ex.query([a, b], QUERY)
            assert not fresh.degraded
            expected = fresh.result.to_cells()

            # invalidate the cached result (a write on the home shard),
            # then make that shard's disk unreadable
            c, d = pair_for_shard(home, prefix="inval")
            add_pair(log, c, d)
            log.sync()
            kill_shard_reads(log, plan, home)

            # first faulting query: breaker records the failure (threshold
            # 1 -> trips) and the stale cached answer is served degraded
            degraded = ex.query([a, b], QUERY)
            assert degraded.degraded and degraded.cached
            assert degraded.result.to_cells() == expected
            assert ex.breaker_stats()[home]["state"] == "open"

            # breaker open: the dead disk is not touched again, the stale
            # answer keeps flowing
            again = ex.query([a, b], QUERY)
            assert again.degraded
            assert ex.stats()["degraded_serves"] == 2

            # the healthy shard is unaffected
            ok = ex.query([other_a, other_b], QUERY)
            assert not ok.degraded

            # a query with no cached fallback refuses structurally
            e, f = pair_for_shard(home, prefix="fresh")
            add_pair(log, e, f)
            with pytest.raises(ShardUnavailable) as excinfo:
                ex.query([e, f], QUERY)
            assert excinfo.value.shard == home

            # heal the disk; after reset_after the half-open probe runs
            # reopen-with-scrub, closes the breaker and serves fresh again
            plan.disarm()
            time.sleep(0.25)
            healed = ex.query([a, b], QUERY)
            assert not healed.degraded
            assert healed.result.to_cells() == expected
            assert ex.breaker_stats()[home]["state"] == "closed"
            assert ex.stats()["shard_reopens"] == 1
        finally:
            ex.close()
            log.close()


class TestServerFaultSurface:
    def test_degraded_flag_healthz_and_admin_scrub(self, tmp_path):
        plan = FaultPlan()
        log, pairs = build_sharded(tmp_path / "db", plan)
        home = 1
        a, b = pairs[home]
        ex = QueryExecutor(
            log, max_workers=2, breaker_failures=1, breaker_reset_after=60.0
        )
        with LineageServer(log, executor=ex) as server:
            client = LineageClient(server.url, retries=0)
            first = client.prov_query([a, b], cells=QUERY)
            assert first["degraded"] is False

            c, d = pair_for_shard(home, prefix="inval")
            add_pair(log, c, d)
            log.sync()
            kill_shard_reads(log, plan, home)

            served = client.prov_query([a, b], cells=QUERY)
            assert served["degraded"] is True and served["cached"] is True
            assert served["count"] == first["count"]

            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["breakers"][f"{home}"]["state"] == "open"

            # a never-cached query on the dead shard: structured 503
            e, f = pair_for_shard(home, prefix="fresh")
            add_pair(log, e, f)
            with pytest.raises(LineageServerError) as excinfo:
                client.prov_query([e, f], cells=QUERY)
            assert excinfo.value.status == 503
            assert excinfo.value.kind == "shard-unavailable"

            # the admin scrub endpoint answers once the fault is lifted
            plan.disarm()
            report = client.scrub(repair=False)
            assert set(report["shards"]) == {"0", "1"}
        ex.close()
        log.close()

    def test_slow_shard_maps_to_504(self, tmp_path):
        plan = FaultPlan()
        log, pairs = build_sharded(tmp_path / "db", plan)
        a, b = pairs[0]
        plan.on("segment.read", scope="shard-00", kind="stall", every=1, seconds=0.5)
        log.store.shards[0].cache.clear()
        plan.arm()
        with LineageServer(log) as server:
            client = LineageClient(server.url, retries=0)
            with pytest.raises(LineageServerError) as excinfo:
                client.prov_query([a, b], cells=QUERY, deadline=0.05)
            assert excinfo.value.status == 504
            assert excinfo.value.kind == "deadline-exceeded"
        plan.disarm()
        log.close()

    def test_client_retry_budget_bounds_total_wait(self, tmp_path):
        # nothing listens on this port: every attempt fails fast, so the
        # retry budget (not the huge backoff) must bound the total wait
        client = LineageClient(
            "http://127.0.0.1:9", retries=8, backoff=30.0, retry_budget=0.1
        )
        start = time.monotonic()
        with pytest.raises(LineageConnectionError) as excinfo:
            client.healthz()
        assert time.monotonic() - start < 5.0
        assert "retry budget" in str(excinfo.value)
        assert client.retries_used >= 1
