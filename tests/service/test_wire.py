"""The binary wire format in isolation: frame round trips, header
validation (truncation, bad magic, wrong version, hostile lengths),
zero-copy result payloads across every integer width, empty results,
>64 KiB frames, and the batch manifest."""

import json
import socket
import struct
import threading

import numpy as np
import pytest

from repro.core.query import QueryResult
from repro.service import wire
from repro.service.wire import (
    FRAME_HEADER_SIZE,
    OP_PING,
    OP_QUERY,
    RPCResult,
    ShortRead,
    decode_batch,
    decode_json,
    decode_result,
    encode_batch,
    encode_frame,
    encode_json,
    encode_result,
    parse_frame_header,
    read_frame,
    recv_exact,
)


def make_result(boxes, shape=(1 << 40, 1 << 40), array_name="arr"):
    """A QueryResult over the given [(lo_cell, hi_cell), ...] boxes; the
    huge default shape keeps count_cells on the box-arithmetic fast path
    and lets coordinates exercise any integer width."""
    from repro.core.query import CellBoxSet

    if boxes:
        lo = np.asarray([b[0] for b in boxes], dtype=np.int64).reshape(len(boxes), -1)
        hi = np.asarray([b[1] for b in boxes], dtype=np.int64).reshape(len(boxes), -1)
    else:
        lo = np.empty((0, len(shape)), dtype=np.int64)
        hi = np.empty((0, len(shape)), dtype=np.int64)
    cells = CellBoxSet(array_name, shape, lo, hi)
    return QueryResult(cells=cells, hops=[])


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def test_frame_round_trip():
    frame = encode_frame(OP_QUERY, 7, b"hello")
    opcode, request_id, length = parse_frame_header(frame[:FRAME_HEADER_SIZE])
    assert (opcode, request_id, length) == (OP_QUERY, 7, 5)
    assert frame[FRAME_HEADER_SIZE:] == b"hello"


def test_frame_empty_payload():
    frame = encode_frame(OP_PING, 0)
    assert len(frame) == FRAME_HEADER_SIZE
    assert parse_frame_header(frame) == (OP_PING, 0, 0)


def test_frame_bad_magic():
    frame = b"XXXX" + encode_frame(OP_PING, 0)[4:]
    with pytest.raises(ValueError, match="bad magic"):
        parse_frame_header(frame)


def test_frame_truncated_header():
    frame = encode_frame(OP_PING, 0)
    with pytest.raises(ValueError, match="truncated"):
        parse_frame_header(frame[: FRAME_HEADER_SIZE - 3])


def test_frame_wrong_version():
    bad = bytearray(encode_frame(OP_PING, 0))
    struct.pack_into("<H", bad, 4, 99)
    with pytest.raises(ValueError, match="version 99"):
        parse_frame_header(bytes(bad))


def test_frame_hostile_length_rejected():
    """A corrupt or hostile length field must be refused before any
    allocation happens."""
    bad = bytearray(encode_frame(OP_PING, 0))
    struct.pack_into("<I", bad, 6, wire.MAX_FRAME_BYTES + 1)
    with pytest.raises(ValueError, match="limit"):
        parse_frame_header(bytes(bad))


def test_request_id_round_trips_at_u32_edge():
    frame = encode_frame(OP_PING, 0xFFFFFFFF, b"")
    assert parse_frame_header(frame)[1] == 0xFFFFFFFF


def socket_pair():
    server, client = socket.socketpair()
    server.settimeout(5)
    client.settimeout(5)
    return server, client


def test_read_frame_over_socket():
    a, b = socket_pair()
    try:
        payload = b"x" * (200 * 1024)  # well past one TCP segment / 64 KiB
        a.sendall(encode_frame(OP_QUERY, 3, payload))
        opcode, request_id, received = read_frame(b)
        assert (opcode, request_id) == (OP_QUERY, 3)
        assert received == payload
    finally:
        a.close()
        b.close()


def test_recv_exact_short_read():
    a, b = socket_pair()
    try:
        a.sendall(b"abc")
        a.close()
        with pytest.raises(ShortRead, match="wanted 10 bytes, got 3"):
            recv_exact(b, 10)
    finally:
        b.close()


def test_read_frame_eof_mid_payload():
    a, b = socket_pair()
    try:
        frame = encode_frame(OP_QUERY, 1, b"y" * 100)
        a.sendall(frame[: FRAME_HEADER_SIZE + 40])
        a.close()
        with pytest.raises(ShortRead):
            read_frame(b)
    finally:
        b.close()


def test_json_payload_round_trip():
    body = {"path": ["a", "b"], "cells": [[1, 2]], "merge": True}
    assert decode_json(encode_json(body)) == body


def test_json_payload_corrupt():
    with pytest.raises(ValueError, match="corrupt JSON"):
        decode_json(b"\xff\xfe not json")


# ----------------------------------------------------------------------
# binary result payloads
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "coord, expected_dtype",
    [
        (100, np.int8),
        (1_000, np.int16),
        (1_000_000, np.int32),
        (1 << 40, np.int64),
    ],
)
def test_result_payload_uses_narrowest_dtype(coord, expected_dtype):
    result = make_result([((0, 0), (coord, coord))])
    decoded = decode_result(encode_result(result))
    # lo and hi narrow independently; the all-zero lows stay int8
    assert decoded.boxes_lo.dtype == np.dtype(np.int8)
    assert decoded.boxes_hi.dtype == np.dtype(expected_dtype)
    assert decoded.boxes_hi[0].tolist() == [coord, coord]
    assert decoded["boxes"] == [[[0, 0], [coord, coord]]]


def test_result_payload_round_trip_fields():
    result = make_result([((1, 2), (3, 4)), ((10, 10), (12, 12))])
    payload = encode_result(
        result, cached=True, degraded=True, elapsed_ms=1.5, include_cells=True
    )
    decoded = decode_result(payload)
    assert decoded.array == "arr"
    assert decoded.count == result.count_cells()
    assert decoded.boxes_merged == 2
    assert decoded.cached is True
    assert decoded.degraded is True
    assert decoded.elapsed_ms == 1.5
    assert decoded.cells_array.shape[1] == 2
    assert decoded["cells"] == sorted(list(c) for c in result.to_cells())


def test_result_payload_empty_result():
    result = make_result([], shape=(8, 8))
    decoded = decode_result(encode_result(result, include_cells=True))
    assert decoded.count == 0
    assert decoded.boxes_lo.shape == (0, 2)
    assert decoded["boxes"] == []
    assert decoded["cells"] == []


def test_result_payload_without_boxes():
    result = make_result([((0, 0), (1, 1))])
    decoded = decode_result(encode_result(result, include_boxes=False))
    assert decoded.boxes_lo is None
    with pytest.raises(KeyError):
        decoded["boxes"]
    assert decoded.get("boxes") is None
    assert "boxes" not in decoded
    assert decoded["count"] == result.count_cells()


def test_result_payload_zero_copy_views():
    """The decoded arrays must be views over the frame bytes, not copies."""
    result = make_result([((5, 6), (7, 8))])
    payload = encode_result(result)
    decoded = decode_result(payload)
    assert decoded.boxes_lo.base is not None  # frombuffer view, no copy
    with pytest.raises(ValueError):
        decoded.boxes_lo[0, 0] = 1  # read-only: backed by the bytes object


def test_result_payload_truncated_buffer():
    result = make_result([((0, 0), (100, 100))])
    payload = encode_result(result)
    with pytest.raises(ValueError, match="truncated result payload"):
        decode_result(payload[:-3])


def test_result_payload_mapping_compatibility():
    """RPCResult must answer exactly like the HTTP result dict."""
    from repro.service.api import result_payload

    result = make_result([((1, 1), (2, 3)), ((9, 0), (9, 9))])
    http_shape = result_payload(result, include_boxes=True, include_cells=True)
    decoded = decode_result(encode_result(result, include_cells=True))
    for key, value in http_shape.items():
        assert decoded[key] == value
    http_shape.update(cached=False, degraded=False, elapsed_ms=0.0)
    assert json.dumps(decoded.to_payload(), sort_keys=True) == json.dumps(
        http_shape, sort_keys=True
    )
    assert set(decoded.keys()) == set(http_shape.keys())


def test_result_payload_large_frame():
    """Many boxes → a payload well past 64 KiB, hydrated intact."""
    n = 20_000
    # disjoint 1-D intervals: int32 coordinates, nothing merges away
    boxes = [((3 * i,), (3 * i + 1,)) for i in range(n)]
    result = make_result(boxes, shape=(1 << 40,))
    payload = encode_result(result)
    assert len(payload) > 64 * 1024
    decoded = decode_result(payload)
    assert decoded.boxes_lo.shape == (n, 1)
    assert decoded.count == 2 * n
    assert decoded.boxes_lo[-1].tolist() == [3 * (n - 1)]
    assert decoded.boxes_hi[-1].tolist() == [3 * (n - 1) + 1]


# ----------------------------------------------------------------------
# batch payloads
# ----------------------------------------------------------------------
def test_batch_round_trip_mixed_entries():
    ok = encode_result(make_result([((0, 0), (4, 4))]))
    error = {"error": {"type": "not-found", "message": "nope", "status": 404}}
    payload = encode_batch([ok, error, ok], elapsed_ms=2.5)
    results, meta = decode_batch(payload)
    assert meta == {"batch_size": 3, "elapsed_ms": 2.5}
    assert isinstance(results[0], RPCResult)
    assert results[1] == error
    assert results[2]["boxes"] == [[[0, 0], [4, 4]]]


def test_batch_empty_is_rejected_upstream_but_encodable():
    results, meta = decode_batch(encode_batch([]))
    assert results == [] and meta["batch_size"] == 0
