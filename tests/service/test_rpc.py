"""The binary RPC transport end to end: every opcode against a live
server, byte-identical results across the HTTP and RPC transports, the
shared result cache, connection pooling and re-dial after a server-side
kill, request-id pipelining, structured errors, and the per-opcode
observability surface."""

import json
import socket
import threading
import time

import pytest

from repro import DSLog
from repro.core.relation import LineageRelation
from repro.obs import REGISTRY
from repro.service.rpc import DualServer, RPCClient, RPCServer
from repro.service.server import (
    LineageClient,
    LineageConnectionError,
    LineageServer,
    LineageServerError,
)
from repro.service.wire import (
    OP_PING,
    OP_QUERY,
    encode_frame,
    encode_json,
    read_frame,
)

SHAPE = (6, 6)


def identity(in_name, out_name):
    pairs = [((i, j), (i, j)) for i in range(SHAPE[0]) for j in range(SHAPE[1])]
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


@pytest.fixture
def log(tmp_path):
    log = DSLog(tmp_path / "db", backend="sharded", num_shards=4)
    for name in ("a", "b", "c"):
        log.define_array(name, SHAPE)
    log.add_lineage("a", "b", relation=identity("a", "b"))
    log.add_lineage("b", "c", relation=identity("b", "c"))
    yield log
    log.close()


@pytest.fixture
def server(log):
    server = RPCServer(log).start()
    yield server
    server.close()


@pytest.fixture
def client(server):
    client = RPCClient.connect(server.address)
    yield client
    client.close()


# ----------------------------------------------------------------------
# the API surface
# ----------------------------------------------------------------------
def test_query_round_trip(client):
    result = client.prov_query(["a", "b", "c"], cells=[[1, 1], [2, 3]])
    assert result["count"] == 2
    assert result["array"] == "c"  # the query lands on the path's final array
    assert sorted(result["boxes"]) == [[[1, 1], [1, 1]], [[2, 3], [2, 3]]]
    assert len(result["hops"]) == 2
    assert result.boxes_lo.shape == (2, 2)


def test_query_slices_and_cells_flag(client):
    result = client.prov_query(
        ["a", "b"], slices=[[1, 3], None], include_cells=True
    )
    assert result["count"] == 2 * SHAPE[1]
    assert [1, 0] in result["cells"]


def test_query_batch_mixed(client):
    results = client.prov_query_batch(
        [
            (["a", "b"], [[2, 2]]),
            {"path": ["missing", "b"], "cells": [[0, 0]]},
            {"path": ["a"], "cells": [[0, 0]]},
        ]
    )
    assert results[0]["count"] == 1
    assert results[1]["error"]["type"] == "not-found"
    assert results[2]["error"]["type"] == "bad-request"


def test_graph_endpoints(client):
    assert client.impact("a") == {"b": 1, "c": 2}
    assert client.dependencies("c") == {"b": 1, "a": 2}
    summary = client.lineage_summary()
    assert summary["arrays"] == 3
    assert ["a", "b"] in summary["edges"]


def test_healthz_scrub_traces_metrics(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["backend"] == "sharded"
    report = client.scrub()
    assert report["clean"] is True
    assert isinstance(client.traces(limit=5), list)
    text = client.metrics_text()
    assert "dslog_rpc_requests_total" in text


def test_structured_errors(client):
    with pytest.raises(LineageServerError) as excinfo:
        client.impact("missing")
    assert excinfo.value.status == 404
    assert excinfo.value.kind == "not-found"
    with pytest.raises(LineageServerError) as excinfo:
        client.prov_query(["a"], cells=[[0, 0]])
    assert excinfo.value.status == 400


def test_unknown_opcode_gets_error_frame(server):
    with socket.create_connection((server.host, server.port), timeout=5) as sock:
        sock.sendall(encode_frame(240, 1, b"{}"))
        opcode, request_id, payload = read_frame(sock)
    from repro.service.wire import OP_ERROR

    assert opcode == OP_ERROR
    assert request_id == 1
    info = json.loads(payload)
    assert info["status"] == 400
    assert "opcode" in info["message"]


def test_corrupt_frame_closes_connection(server):
    with socket.create_connection((server.host, server.port), timeout=5) as sock:
        sock.sendall(b"JUNKJUNKJUNKJUNKJUNK")
        assert sock.recv(1024) == b""  # server hangs up, no reply possible


# ----------------------------------------------------------------------
# transport equivalence
# ----------------------------------------------------------------------
def test_results_identical_across_transports(log):
    """The RPC result, rendered to the HTTP payload shape, must be
    byte-identical to the HTTP response (modulo timing fields)."""
    with DualServer(log) as dual:
        http = LineageClient.connect(dual.url)
        rpc = RPCClient.connect(dual.rpc_address)
        requests = [
            {"cells": [[1, 1], [4, 5]]},
            {"cells": [[0, 0]], "merge": False},
            {"slices": [[0, 2], [3, 5]], "include_cells": True},
            {"cells": [[2, 2]], "include_boxes": False},
        ]
        for req in requests:
            h = http.prov_query(["a", "b", "c"], **req)
            r = rpc.prov_query(["a", "b", "c"], **req)
            strip = lambda p: {
                k: v
                for k, v in p.items()
                if k not in ("elapsed_ms", "cached", "hops")
            }
            assert json.dumps(strip(h), sort_keys=True) == json.dumps(
                strip(r.to_payload()), sort_keys=True
            )
            # hop stats agree on everything but wall time
            for hh, rh in zip(h["hops"], r["hops"]):
                assert {k: v for k, v in hh.items() if k != "seconds"} == {
                    k: v for k, v in rh.items() if k != "seconds"
                }
        http.close()
        rpc.close()


def test_cache_shared_across_transports(log):
    with DualServer(log) as dual:
        http = LineageClient.connect(dual.url)
        rpc = RPCClient.connect(dual.rpc_address)
        first = http.prov_query(["a", "b"], cells=[[3, 3]])
        assert first["cached"] is False
        warm = rpc.prov_query(["a", "b"], cells=[[3, 3]])
        assert warm.cached is True  # HTTP warmed it, RPC hit it
        http.close()
        rpc.close()


def test_dslog_serve_transport_param(log):
    rpc_server = log.serve(transport="rpc")
    try:
        assert isinstance(rpc_server, RPCServer)
        client = RPCClient.connect(rpc_server.address)
        assert client.prov_query(["a", "b"], cells=[[0, 0]])["count"] == 1
        client.close()
    finally:
        rpc_server.close()
    http_server = log.serve()
    try:
        assert isinstance(http_server, LineageServer)
    finally:
        http_server.close()
    with pytest.raises(ValueError, match="unknown transport"):
        log.serve(transport="carrier-pigeon")


# ----------------------------------------------------------------------
# connection lifecycle
# ----------------------------------------------------------------------
def test_connection_reused_across_requests(server):
    client = RPCClient.connect(server.address)
    try:
        for _ in range(10):
            client.ping()
        assert client.dials == 1
        assert client.requests_sent >= 11
    finally:
        client.close()


def test_pool_grows_under_concurrency(server):
    client = RPCClient.connect(server.address, pool_size=4)
    barrier = threading.Barrier(4)
    errors = []

    def hammer():
        try:
            barrier.wait(timeout=5)
            for _ in range(20):
                assert client.prov_query(["a", "b"], cells=[[1, 2]])["count"] == 1
        except Exception as error:  # pragma: no cover - fail below
            errors.append(error)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert 1 <= client.dials <= 4
    client.close()


def test_client_redials_after_server_side_kill(server, client):
    """Mid-frame connection loss must degrade to reconnect-and-retry."""
    assert client.prov_query(["a", "b"], cells=[[1, 1]])["count"] == 1
    # kill the pooled connection under the client, as a restart would
    assert len(client._idle) == 1
    client._idle[0].sock.shutdown(socket.SHUT_RDWR)
    assert client.prov_query(["a", "b"], cells=[[2, 2]])["count"] == 1
    assert client.retries_used >= 1
    assert client.dials == 2


def test_retries_exhausted_raises_connection_error(tmp_path):
    client = RPCClient(("127.0.0.1", 9), retries=2, backoff=0.001)
    with pytest.raises(LineageConnectionError) as excinfo:
        client.ping()
    assert "3 attempts" in str(excinfo.value)


def test_retry_budget_bounds_time(tmp_path):
    client = RPCClient(
        ("127.0.0.1", 9), retries=8, backoff=30.0, retry_budget=0.05
    )
    started = time.monotonic()
    with pytest.raises(LineageConnectionError) as excinfo:
        client.ping()
    assert time.monotonic() - started < 5.0
    assert "retry budget" in str(excinfo.value)


def test_connect_waits_for_late_server(log):
    server = RPCServer(log)
    address = server.address

    def start_later():
        time.sleep(0.2)
        server.start()

    thread = threading.Thread(target=start_later)
    thread.start()
    try:
        client = RPCClient.connect(address, timeout=10.0, retries=0)
        client.ping()
        client.close()
    finally:
        thread.join()
        server.close()


# ----------------------------------------------------------------------
# pipelining
# ----------------------------------------------------------------------
def test_prov_query_pipelined_matches_sequential(client):
    """A pipelined run must return exactly what the same queries return
    one at a time, in order."""
    queries = [
        {"path": ["a", "b", "c"], "cells": [[1, 1], [2, 3]]},
        {"path": ["a", "b"], "slices": [[1, 3], None], "include_cells": True},
        {"path": ["a", "b"], "cells": [[0, 0]], "merge": False},
        {"path": ["c", "b", "a"], "cells": [[5, 5]]},
    ] * 3  # more queries than the window, so the sliding path runs
    pipelined = client.prov_query_pipelined(queries, window=4)

    def stable(payload):
        trimmed = {
            k: v for k, v in payload.items() if k not in ("elapsed_ms", "cached")
        }
        trimmed["hops"] = [
            {k: v for k, v in hop.items() if k != "seconds"}
            for hop in payload["hops"]
        ]
        return json.dumps(trimmed, sort_keys=True)

    for query, result in zip(queries, pipelined):
        q = dict(query)
        solo = client.prov_query(q.pop("path"), **q)
        assert stable(result.to_payload()) == stable(solo.to_payload())


def test_prov_query_pipelined_mixed_errors(client):
    results = client.prov_query_pipelined(
        [
            (["a", "b"], [[2, 2]]),
            {"path": ["missing", "b"], "cells": [[0, 0]]},
            {"path": ["a"], "cells": [[0, 0]]},
            (["b", "c"], [[4, 4]]),
        ]
    )
    assert results[0]["count"] == 1
    assert results[1]["error"]["type"] == "not-found"
    assert results[2]["error"]["type"] == "bad-request"
    assert results[3]["count"] == 1


def test_prov_query_pipelined_single_connection(server):
    client = RPCClient.connect(server.address)
    try:
        queries = [(["a", "b"], [[i % 6, i % 6]]) for i in range(32)]
        results = client.prov_query_pipelined(queries, window=8)
        assert all(r["count"] == 1 for r in results)
        assert client.dials == 1  # one socket carried all 32 in-flight
    finally:
        client.close()


def test_request_id_pipelining_order(server):
    """Many requests written before any response is read: responses come
    back in order, each echoing its request id."""
    body = encode_json({"path": ["a", "b"], "cells": [[1, 1]]})
    with socket.create_connection((server.host, server.port), timeout=10) as sock:
        ids = [17, 3, 99, 41, 7]
        for rid in ids:
            sock.sendall(encode_frame(OP_QUERY, rid, body))
        sock.sendall(encode_frame(OP_PING, 1000, b""))
        seen = []
        for _ in range(len(ids) + 1):
            opcode, rid, payload = read_frame(sock)
            seen.append(rid)
        assert seen == ids + [1000]


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
def test_rpc_metrics_per_opcode(client):
    client.prov_query(["a", "b"], cells=[[0, 1]])
    client.impact("a")
    with pytest.raises(LineageServerError):
        client.impact("missing")
    text = client.metrics_text()
    assert 'dslog_rpc_requests_total{op="query",status="ok"}' in text
    assert 'dslog_rpc_requests_total{op="impact",status="ok"}' in text
    assert 'dslog_rpc_requests_total{op="impact",status="404"}' in text
    assert 'dslog_rpc_request_seconds_count{op="query"}' in text
    assert "dslog_rpc_connections" in text


def test_connection_gauge_tracks_open_sockets(server):
    gauge = REGISTRY.gauge("dslog_rpc_connections")
    base = gauge.value
    client = RPCClient.connect(server.address)
    client.ping()
    assert gauge.value == base + 1
    client.close()
    deadline = time.monotonic() + 5
    while gauge.value > base and time.monotonic() < deadline:
        time.sleep(0.01)  # the handler thread notices the close async
    assert gauge.value == base


def test_rpc_requests_traced(server):
    from repro.obs import tracing

    client = RPCClient.connect(server.address)
    client.prov_query(["a", "b", "c"], cells=[[1, 1]])
    client.close()
    traces = tracing.recent_traces(20)
    rpc_traces = [t for t in traces if t["name"] == "rpc"]
    assert rpc_traces
    assert rpc_traces[0]["tags"]["op"] == "query"
