"""The async ingest pipeline: tickets, group commit, backpressure, and the
multi-writer stress test of the acceptance criteria (≥ 8 concurrent writer
threads + concurrent readers, zero lost or duplicated entries, full
metadata fidelity after reopen)."""

import threading

import numpy as np
import pytest

from repro import DSLog, IngestOverloaded, LineageService
from repro.core.relation import LineageRelation
from repro.service import ServiceClosedError

SHAPE = (4,)


def elementwise(in_name, out_name, shape=SHAPE):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(
        pairs, shape, shape, in_name=in_name, out_name=out_name
    )


class TestTickets:
    def test_ticket_resolves_to_operation_record(self, tmp_path):
        with LineageService(tmp_path / "db", workers=2) as svc:
            svc.define_array("x", SHAPE)
            svc.define_array("y", SHAPE)
            ticket = svc.submit("op", ["x"], ["y"], relations={("x", "y"): elementwise("x", "y")})
            record = ticket.result(timeout=10)
            assert record.op_name == "op"
            assert record.entries == [("x", "y")]
            assert ticket.done and not ticket.failed
            assert ticket.durable_latency is not None

    def test_durable_means_published(self, tmp_path):
        svc = LineageService(tmp_path / "db", workers=1, num_shards=2)
        svc.define_array("x", SHAPE)
        svc.define_array("y", SHAPE)
        svc.submit("op", ["x"], ["y"], relations={("x", "y"): elementwise("x", "y")}).result(timeout=10)
        # the entry must be readable from disk *now*, before close()
        reopened = DSLog.load(tmp_path / "db")
        assert len(reopened.catalog) == 1
        assert reopened.prov_query(["x", "y"], [(1,)]).to_cells() == {(1,)}
        reopened.close()
        svc.close()

    def test_failed_operation_raises_from_result(self, tmp_path):
        with LineageService(tmp_path / "db", workers=1) as svc:
            svc.define_array("x", SHAPE)
            ticket = svc.submit("op", ["x"], ["missing"], relations={})
            with pytest.raises(KeyError, match="missing"):
                ticket.result(timeout=10)
            assert ticket.failed
            # the service keeps serving after a failed op
            svc.define_array("y", SHAPE)
            ok = svc.submit("op", ["x"], ["y"], relations={("x", "y"): elementwise("x", "y")})
            assert ok.result(timeout=10).op_name == "op"

    def test_submit_after_close_raises(self, tmp_path):
        svc = LineageService(tmp_path / "db")
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit("op", ["x"], ["y"])

    def test_group_commit_batches_concurrent_writers(self, tmp_path):
        with LineageService(
            tmp_path / "db", workers=4, commit_interval=0.02, num_shards=2
        ) as svc:
            n = 24
            for i in range(n + 1):
                svc.define_array(f"a{i}", SHAPE)
            tickets = []

            def writer(lo, hi):
                for i in range(lo, hi):
                    tickets.append(
                        svc.submit(
                            f"op{i}",
                            [f"a{i}"],
                            [f"a{i+1}"],
                            relations={(f"a{i}", f"a{i+1}"): elementwise(f"a{i}", f"a{i+1}")},
                        )
                    )

            threads = [
                threading.Thread(target=writer, args=(k * 6, (k + 1) * 6)) for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            svc.flush(timeout=30)
            stats = svc.stats()
            assert stats["committed_ops"] == n
            # group commit must have amortized publishes: far fewer commits
            # than operations
            assert stats["commits"] < n
            assert stats["largest_commit"] >= 2

    def test_backpressure_bounded_queue(self, tmp_path):
        # a queue of 1 with no room must raise the structured overload
        # error on a zero-ish timeout rather than growing without bound
        with LineageService(tmp_path / "db", workers=1, queue_size=1) as svc:
            svc.define_array("x", SHAPE)
            blocked = threading.Event()
            release = threading.Event()

            def slow_capture(cell):
                blocked.set()
                release.wait(10)
                return [cell]

            svc.define_array("slow", SHAPE)
            svc.submit("slow", ["x"], ["slow"], captures={("x", "slow"): slow_capture})
            assert blocked.wait(10)  # worker is busy inside the capture
            svc.define_array("y", SHAPE)
            svc.define_array("z", SHAPE)
            svc.submit("fill", ["x"], ["y"], relations={("x", "y"): elementwise("x", "y")})
            with pytest.raises(IngestOverloaded) as excinfo:
                svc.submit(
                    "wont-fit",
                    ["x"],
                    ["z"],
                    relations={("x", "z"): elementwise("x", "z")},
                    timeout=0.05,
                )
            assert excinfo.value.queue_depth >= 1
            assert svc.stats()["overloaded"] == 1
            release.set()
            svc.flush(timeout=30)

    def test_submit_lineage(self, tmp_path):
        with LineageService(tmp_path / "db") as svc:
            svc.define_array("x", SHAPE)
            svc.define_array("y", SHAPE)
            entry = svc.submit_lineage(
                "x", "y", relation=elementwise("x", "y"), op_name="pairwise"
            ).result(timeout=10)
            assert entry.op_name == "pairwise"


class TestStress:
    """The acceptance stress test: 8 writers, concurrent readers, a
    mid-run compaction — zero lost or duplicated entries, and the reopened
    catalog reproduces every op name, operation record and reuse
    signature."""

    WRITERS = 8
    OPS_PER_WRITER = 12

    def test_concurrent_writers_and_readers(self, tmp_path):
        total = self.WRITERS * self.OPS_PER_WRITER
        svc = LineageService(
            tmp_path / "db",
            workers=4,
            num_shards=4,
            queue_size=64,
            commit_interval=0.005,
        )
        for w in range(self.WRITERS):
            for i in range(self.OPS_PER_WRITER + 1):
                svc.define_array(f"w{w}_a{i}", SHAPE)

        errors = []
        tickets = [[] for _ in range(self.WRITERS)]

        def writer(w):
            try:
                for i in range(self.OPS_PER_WRITER):
                    a, b = f"w{w}_a{i}", f"w{w}_a{i+1}"
                    data = np.arange(4) + w  # distinct content per writer
                    tickets[w].append(
                        svc.submit(
                            f"op_w{w}_{i}",
                            [a],
                            [b],
                            relations={(a, b): elementwise(a, b)},
                            input_data={a: data},
                            op_args={"writer": w, "step": i},
                        )
                    )
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        stop_readers = threading.Event()

        def reader():
            try:
                while not stop_readers.is_set():
                    snap = svc.snapshot()
                    try:
                        n = len(snap.catalog)
                        summary = snap.lineage_summary()
                        assert summary["entries"] == n  # consistent cut
                        if n:
                            entry = snap.catalog.entries()[0]
                            result = snap.prov_query(
                                [entry.out_name, entry.in_name], [(2,)]
                            )
                            assert result.to_cells() == {(2,)}
                    finally:
                        snap.close()
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        writer_threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(self.WRITERS)
        ]
        reader_threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in reader_threads:
            t.start()
        for t in writer_threads:
            t.start()
        for t in writer_threads:
            t.join()
        # compaction concurrent with the readers' pinned snapshots
        svc.compact(shard=1)
        svc.flush(timeout=60)
        stop_readers.set()
        for t in reader_threads:
            t.join()

        assert errors == []
        for per_writer in tickets:
            for ticket in per_writer:
                assert ticket.result(timeout=10) is not None

        stats = svc.stats()
        assert stats["submitted"] == total
        assert stats["failed"] == 0
        assert stats["committed_ops"] == total
        svc.close()

        # ---- zero lost / duplicated entries, full metadata fidelity ----
        reopened = DSLog.load(tmp_path / "db")
        assert len(reopened.catalog) == total  # no loss, and (pairs being
        # unique) any duplicate would have collapsed this count
        entries = reopened.catalog.entries()
        assert all(entry.version == 1 for entry in entries)  # no double ingest
        expected_ops = {
            f"op_w{w}_{i}"
            for w in range(self.WRITERS)
            for i in range(self.OPS_PER_WRITER)
        }
        assert {entry.op_name for entry in entries} == expected_ops
        records = reopened.catalog.operations
        assert len(records) == total
        assert {record.op_name for record in records} == expected_ops
        by_name = {record.op_name: record for record in records}
        for w in range(self.WRITERS):
            for i in range(self.OPS_PER_WRITER):
                record = by_name[f"op_w{w}_{i}"]
                assert record.entries == [(f"w{w}_a{i}", f"w{w}_a{i+1}")]
                assert record.op_args == {"writer": w, "step": i}
        # every op carried input_data, so every signature was observed
        assert reopened.reuse.stats()["base_entries"] == total
        # spot-check queries across several shards
        for w in (0, 3, 7):
            path = [f"w{w}_a0", f"w{w}_a{self.OPS_PER_WRITER}"]
            assert reopened.prov_query(path, [(1,)]).to_cells() == {(1,)}
        reopened.close()
