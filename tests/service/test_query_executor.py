"""QueryExecutor + ResultCache: correctness, fan-out and the generation-
keyed invalidation contract (writers invalidate exactly the shards they
touched)."""

import pytest

from repro import DSLog
from repro.core.relation import LineageRelation
from repro.service.query import QueryExecutor, ResultCache
from repro.service.shards import shard_index

SHAPE = (6, 6)


def identity(in_name, out_name):
    pairs = [((i, j), (i, j)) for i in range(SHAPE[0]) for j in range(SHAPE[1])]
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


def build_chain(log, names):
    for name in names:
        log.define_array(name, SHAPE)
    for a, b in zip(names, names[1:]):
        log.add_lineage(a, b, relation=identity(a, b))


@pytest.fixture(params=["memory", "sharded"])
def log(request, tmp_path):
    if request.param == "memory":
        log = DSLog()
    else:
        log = DSLog(tmp_path / "db", backend="sharded", num_shards=4)
    build_chain(log, ["a", "b", "c"])
    yield log
    log.close()


QUERY = [(1, 1), (2, 3), (4, 4)]


def test_executor_matches_dslog(log):
    with QueryExecutor(log, max_workers=4) as ex:
        for path in (["a", "b"], ["a", "b", "c"], ["c", "b", "a"]):
            assert ex.prov_query(path, QUERY).to_cells() == log.prov_query(
                path, QUERY
            ).to_cells()


def test_sequential_equals_parallel(log):
    with QueryExecutor(log, max_workers=1, cache_entries=0) as seq, QueryExecutor(
        log, max_workers=4, cache_entries=0
    ) as par:
        assert seq.prov_query(["a", "c"], QUERY).to_cells() == par.prov_query(
            ["a", "c"], QUERY
        ).to_cells()


def test_planned_diamond_union(log):
    # a -> b -> c exists; add a second parallel branch a -> x -> c so the
    # two-array query (a, c) plans both paths and unions them
    log.define_array("x", SHAPE)
    log.add_lineage("a", "x", relation=identity("a", "x"))
    log.add_lineage("x", "c", relation=identity("x", "c"))
    with QueryExecutor(log, max_workers=4) as ex:
        expected = log.prov_query(["a", "c"], QUERY).to_cells()
        assert ex.prov_query(["a", "c"], QUERY).to_cells() == expected
        assert ex.stats()["parallel_paths"] >= 2


def test_cache_hit_and_flag(log):
    with QueryExecutor(log, max_workers=2) as ex:
        result, cached, degraded = ex.query(["a", "b"], QUERY)
        assert not cached and not degraded
        again, cached, degraded = ex.query(["a", "b"], QUERY)
        assert cached and not degraded
        assert again.to_cells() == result.to_cells()
        stats = ex.stats()["cache"]
        assert stats["hits"] == 1 and stats["entries"] >= 1


def test_cache_disabled(log):
    with QueryExecutor(log, max_workers=2, cache_entries=0) as ex:
        assert ex.query(["a", "b"], QUERY)[1] is False
        assert ex.query(["a", "b"], QUERY)[1] is False
        assert ex.stats()["cache"]["entries"] == 0


def test_unknown_array_raises(log):
    with QueryExecutor(log) as ex:
        with pytest.raises(KeyError):
            ex.prov_query(["a", "nope"], QUERY)
        with pytest.raises(ValueError):
            ex.prov_query(["a"], QUERY)


def test_map_queries_matches_individual(log):
    requests = [(["a", "b"], QUERY), (["a", "b", "c"], QUERY), (["b", "a"], QUERY)]
    with QueryExecutor(log, max_workers=4) as ex:
        batch = ex.map_queries(requests)
        for (path, cells), result in zip(requests, batch):
            assert result.to_cells() == log.prov_query(path, cells).to_cells()
        # the batch populated the cache: re-running serves hits
        assert ex.query(["a", "b"], QUERY)[1] is True


def _pairs_in_distinct_shards(num_shards):
    """Two (in, out) name pairs with different crc32 home shards."""
    base = ("a", "b")
    target = shard_index(*base, num_shards)
    for i in range(1000):
        other = (f"u{i}", f"v{i}")
        if shard_index(*other, num_shards) != target:
            return base, other
    raise AssertionError("no distinct-shard pair found")


def test_write_invalidates_only_touched_shards(tmp_path):
    log = DSLog(tmp_path / "db", backend="sharded", num_shards=4)
    (a, b), (u, v) = _pairs_in_distinct_shards(4)
    for name in (a, b, u, v):
        log.define_array(name, SHAPE)
    log.add_lineage(a, b, relation=identity(a, b))
    log.add_lineage(u, v, relation=identity(u, v))

    with QueryExecutor(log, max_workers=2) as ex:
        ex.prov_query([a, b], QUERY)
        assert ex.query([a, b], QUERY)[1] is True

        # a write to the OTHER pair's shard must not invalidate this result
        log.add_lineage(u, v, relation=identity(u, v), replace=True)
        assert ex.query([a, b], QUERY)[1] is True

        # a write to the queried pair's own shard must invalidate it
        log.add_lineage(a, b, relation=identity(a, b), replace=True)
        assert ex.query([a, b], QUERY)[1] is False
        assert ex.stats()["cache"]["invalidations"] == 1
    log.close()


def shift(in_name, out_name):
    """Output (i, j) reads input (i, (j+1) mod cols) — distinguishable from
    :func:`identity` so a replace visibly changes query results."""
    rows, cols = SHAPE
    pairs = [((i, j), (i, (j + 1) % cols)) for i in range(rows) for j in range(cols)]
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


def test_backward_path_invalidated_by_replace(tmp_path):
    """Regression: shard routing hashes the *stored* (in, out) orientation,
    but a backward query names the pair in reverse order — the dependency
    vector must key on the stored orientation's home shard or a replace of
    the entry leaves a stale cached result being served."""
    a = b = None
    for i in range(1000):
        a, b = f"m{i}", f"n{i}"
        if shard_index(a, b, 4) != shard_index(b, a, 4):
            break
    assert shard_index(a, b, 4) != shard_index(b, a, 4)
    log = DSLog(tmp_path / "db", backend="sharded", num_shards=4)
    log.define_array(a, SHAPE)
    log.define_array(b, SHAPE)
    log.add_lineage(a, b, relation=identity(a, b))
    with QueryExecutor(log, max_workers=2) as ex:
        before = ex.prov_query([b, a], QUERY).to_cells()
        assert ex.query([b, a], QUERY)[1] is True

        log.add_lineage(a, b, relation=shift(a, b), replace=True)
        result, cached, _degraded = ex.query([b, a], QUERY)
        assert cached is False
        assert result.to_cells() == log.prov_query([b, a], QUERY).to_cells()
        assert result.to_cells() != before
    log.close()


def test_planned_query_keyed_on_all_shards(tmp_path):
    # a graph-planned (two-array, no direct entry) result depends on the
    # whole edge set: ingest anywhere must invalidate it, because a new
    # entry can create a shorter or additional path
    log = DSLog(tmp_path / "db", backend="sharded", num_shards=4)
    build_chain(log, ["a", "b", "c"])
    with QueryExecutor(log, max_workers=2) as ex:
        before = ex.prov_query(["a", "c"], QUERY).to_cells()
        assert ex.query(["a", "c"], QUERY)[1] is True

        log.define_array("x", SHAPE)
        log.add_lineage("a", "x", relation=identity("a", "x"))
        log.add_lineage("x", "c", relation=identity("x", "c"))
        result, cached, _degraded = ex.query(["a", "c"], QUERY)
        assert cached is False
        assert result.to_cells() == before  # identity chains: same cells, two paths
    log.close()


def test_memory_backend_any_write_invalidates():
    log = DSLog()
    build_chain(log, ["a", "b"])
    with QueryExecutor(log) as ex:
        ex.prov_query(["a", "b"], QUERY)
        assert ex.query(["a", "b"], QUERY)[1] is True
        log.define_array("z", SHAPE)
        log.add_lineage("a", "z", relation=identity("a", "z"))
        # unsharded: the catalog generation counter is the only key
        assert ex.query(["a", "b"], QUERY)[1] is False


def test_graph_queries_cached_and_invalidated(log):
    with QueryExecutor(log) as ex:
        assert ex.impact("a") == log.impact("a")
        hits_before = ex.stats()["cache"]["hits"]
        ex.impact("a")
        assert ex.stats()["cache"]["hits"] == hits_before + 1

        log.define_array("w", SHAPE)
        log.add_lineage("c", "w", relation=identity("c", "w"))
        assert "w" in ex.impact("a")
        assert ex.dependencies("w") == log.dependencies("w")
        assert ex.lineage_summary()["entries"] == len(log.catalog)


def test_result_cache_lru_eviction():
    cache = ResultCache(max_entries=2)
    live = {0: 1}
    for i, key in enumerate((b"k1", b"k2", b"k3")):
        cache.store(key, ((0, 1),), i)
    assert cache.lookup(b"k1", live) == (False, None)  # evicted, oldest
    assert cache.lookup(b"k3", live) == (True, 2)
    assert cache.stats()["evictions"] == 1


def test_result_cache_version_mismatch_keeps_stale_entry():
    cache = ResultCache(max_entries=4)
    cache.store(b"k", ((0, 1), (2, 5)), "value")
    assert cache.lookup(b"k", {0: 1, 2: 5}) == (True, "value")
    assert cache.lookup(b"k", {0: 1, 2: 6}) == (False, None)
    assert cache.stats()["invalidations"] == 1
    # the stale value is retained for degraded serving, not dropped
    assert len(cache) == 1
    assert cache.lookup_stale(b"k") == (True, "value")
    assert cache.stats()["stale_hits"] == 1


def test_shard_version_vector_tracks_home_shards(tmp_path):
    log = DSLog(tmp_path / "db", backend="sharded", num_shards=4)
    (a, b), (u, v) = _pairs_in_distinct_shards(4)
    for name in (a, b, u, v):
        log.define_array(name, SHAPE)
    before = log.catalog.shard_version_vector()
    log.add_lineage(a, b, relation=identity(a, b))
    after = log.catalog.shard_version_vector()
    home = shard_index(a, b, 4)
    changed = [i for i in range(4) if before[i] != after[i]]
    assert home in changed
    assert all(i == home or after[i] >= before[i] for i in range(4))
    log.close()


def test_closed_executor_rejects_queries(log):
    ex = QueryExecutor(log)
    ex.close()
    with pytest.raises(RuntimeError):
        ex.prov_query(["a", "b"], QUERY)
    with pytest.raises(RuntimeError):
        ex.map_queries([(["a", "b"], QUERY), (["b", "c"], QUERY)])
    with pytest.raises(RuntimeError):
        ex.impact("a")


# ----------------------------------------------------------------------
# batched execution
# ----------------------------------------------------------------------
import threading  # noqa: E402

import numpy as np  # noqa: E402

from repro.service.query import QueryOutcome  # noqa: E402


def test_batch_matches_individual(log):
    """prov_query_batch over mixed paths is bit-identical to one query at
    a time — the executor-level face of the kernel equivalence tests."""
    requests = [
        (["a", "b"], QUERY),
        (["a", "b", "c"], QUERY),
        (["c", "b", "a"], [(0, 0)]),
        (["a", "b"], [(5, 5)]),
    ]
    with QueryExecutor(log, max_workers=2, cache_entries=0) as ex:
        batched = ex.prov_query_batch(requests)
        for (path, cells), got in zip(requests, batched):
            want = ex.prov_query(path, cells)
            assert got.cells.array_name == want.cells.array_name
            assert np.array_equal(got.cells.lo, want.cells.lo)
            assert np.array_equal(got.cells.hi, want.cells.hi)


def test_batch_mixed_cached_uncached_unknown(log):
    """One batch mixing a cache hit, a miss and an unknown array: the hit
    peels off before the kernel, the miss executes, and the bad request
    comes back as its own exception — never a whole-batch failure."""
    with QueryExecutor(log, max_workers=2) as ex:
        warm = ex.query(["a", "b"], QUERY)  # prime the cache
        assert not warm.cached
        outcomes = ex.query_batch(
            [
                (["a", "b"], QUERY),
                (["a", "b", "c"], QUERY),
                (["a", "nope"], QUERY),
            ]
        )
        assert isinstance(outcomes[0], QueryOutcome) and outcomes[0].cached
        assert isinstance(outcomes[1], QueryOutcome) and not outcomes[1].cached
        assert isinstance(outcomes[2], KeyError)
        # the miss was installed: a second batch is all cache hits
        again = ex.query_batch([(["a", "b", "c"], QUERY)])
        assert again[0].cached


def test_batch_all_cached_skips_kernel(log):
    with QueryExecutor(log, max_workers=2) as ex:
        ex.query(["a", "c"], QUERY)
        before = ex.stats()["queries"]
        outcomes = ex.query_batch([(["a", "c"], QUERY)] * 3)
        assert all(o.cached for o in outcomes)
        assert ex.stats()["queries"] == before  # no kernel work counted


def test_batch_empty_and_stats(log):
    with QueryExecutor(log) as ex:
        assert ex.query_batch([]) == []
        ex.query_batch([(["a", "b"], QUERY)])
        stats = ex.stats()
        assert stats["batches"] == 1
        assert stats["batched_queries"] == 1


def test_batch_prov_raises_first_failure(log):
    with QueryExecutor(log) as ex:
        with pytest.raises(KeyError):
            ex.prov_query_batch([(["a", "b"], QUERY), (["nope", "b"], QUERY)])


def test_batch_racing_replace_and_compaction(tmp_path):
    """Batches racing replace=True rewrites plus compaction churn must keep
    returning consistent results — the batch pins one snapshot for all of
    its queries, so segment retirement can't yank tables mid-pass."""
    log = DSLog(tmp_path / "db", backend="sharded", num_shards=4)
    build_chain(log, ["a", "b", "c"])
    expected = log.prov_query(["a", "b", "c"], QUERY).count_cells()
    stop = threading.Event()
    errors = []

    def churn():
        while not stop.is_set():
            try:
                log.add_lineage("a", "b", relation=identity("a", "b"), replace=True)
                log.compact()
            except Exception as error:  # pragma: no cover - fail below
                errors.append(error)
                return

    thread = threading.Thread(target=churn)
    thread.start()
    try:
        with QueryExecutor(log, max_workers=2, cache_entries=0) as ex:
            for _ in range(15):
                results = ex.prov_query_batch(
                    [(["a", "b", "c"], QUERY), (["c", "b", "a"], QUERY)]
                )
                assert [r.count_cells() for r in results] == [expected, expected]
    finally:
        stop.set()
        thread.join()
        log.close()
    assert not errors
