"""Tests for the 136-operation numpy catalog."""

import numpy as np
import pytest

from repro.capture.numpy_catalog import build_catalog, complex_ops, element_ops, pipeline_ops
from repro.core.provrc import compress


@pytest.fixture(scope="module")
def catalog():
    return build_catalog()


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(42)


class TestCatalogShape:
    def test_counts_match_paper(self, catalog):
        # Table IX: 136 operations, 75 element-wise and 61 complex.
        assert len(catalog) == 136
        assert len(element_ops()) == 75
        assert len(complex_ops()) == 61

    def test_pipeline_subset(self):
        ops = pipeline_ops()
        assert len(ops) == 76
        assert all(op.pipeline_ok for op in ops)

    def test_unique_names(self, catalog):
        names = [op.name for op in catalog]
        assert len(names) == len(set(names))

    def test_cross_present(self, catalog):
        assert any(op.name == "cross_const" for op in catalog)


def _input_for(op, rng, size=30):
    if op.name == "cross_const":
        return rng.normal(size=(size // 3, 3))
    if op.needs_2d:
        return rng.normal(size=(6, 5))
    return rng.normal(size=size)


class TestEveryOperation:
    def test_apply_returns_float64(self, catalog, rng):
        for op in catalog:
            out = op.run(_input_for(op, rng))
            assert out.dtype == np.float64, op.name
            assert out.ndim >= 1, op.name

    def test_lineage_is_valid(self, catalog, rng):
        for op in catalog:
            data = _input_for(op, rng)
            relation = op.lineage(data)
            relation.validate()
            assert len(relation) > 0, op.name

    def test_lineage_output_shape_consistent(self, catalog, rng):
        for op in catalog:
            data = _input_for(op, rng)
            out = op.run(data)
            relation = op.lineage(data)
            assert int(np.prod(relation.out_shape)) == out.size, op.name

    def test_lineage_compresses_losslessly(self, rng):
        # ProvRC round trip over a sample of catalog operations (small inputs).
        sample = [op for op in build_catalog() if op.name in {
            "negative", "add_scalar", "sum", "cumsum", "sort", "flip", "repeat",
            "convolve_same", "dot_const", "trace", "cross_const", "tile",
        }]
        assert len(sample) == 12
        for op in sample:
            data = _input_for(op, rng, size=18)
            relation = op.lineage(data)
            assert compress(relation).decompress() == relation.deduplicated(), op.name


class TestSpecificLineages:
    def test_elementwise_lineage_identity(self, rng):
        op = next(o for o in build_catalog() if o.name == "negative")
        relation = op.lineage(rng.normal(size=10))
        assert relation.backward([(3,)]) == {(3,)}

    def test_sort_lineage_follows_values(self):
        op = next(o for o in build_catalog() if o.name == "sort")
        data = np.array([5.0, 1.0, 3.0])
        relation = op.lineage(data)
        # smallest value (index 1) lands at output position 0
        assert relation.backward([(0,)]) == {(1,)}

    def test_cross_lineage_changes_with_shape(self):
        op = next(o for o in build_catalog() if o.name == "cross_const")
        rel3 = op.lineage(np.ones((4, 3)))
        rel2 = op.lineage(np.ones((4, 2)))
        assert rel3.out_shape == (4, 3)
        assert rel2.out_shape == (4,)

    def test_cross_rejects_bad_width(self):
        op = next(o for o in build_catalog() if o.name == "cross_const")
        with pytest.raises(ValueError):
            op.lineage(np.ones((4, 5)))

    def test_trace_lineage(self):
        op = next(o for o in build_catalog() if o.name == "trace")
        relation = op.lineage(np.ones((4, 4)))
        assert relation.backward([(0,)]) == {(i, i) for i in range(4)}

    def test_tril_constant_cells_have_no_lineage(self):
        op = next(o for o in build_catalog() if o.name == "tril")
        relation = op.lineage(np.ones((3, 3)))
        assert relation.backward([(0, 2)]) == set()
        assert relation.backward([(2, 0)]) == {(2, 0)}
