"""Tests for explainable-AI capture and the relational capture operators."""

import numpy as np
import pytest

from repro.capture.explain import SyntheticDetector, drise_capture, lime_capture, synthetic_frame
from repro.capture.relational import filter_rows_capture, group_by_capture, inner_join_capture
from repro.core.provrc import compress


class TestSyntheticDetector:
    def test_frame_has_bright_blob(self):
        frame = synthetic_frame(32, 32)
        assert frame.shape == (32, 32)
        assert frame.max() > 0.6

    def test_detector_output_vector(self):
        frame = synthetic_frame(32, 32)
        detector = SyntheticDetector.around_blob(frame)
        out = detector(frame)
        assert out.shape == (5,)
        assert out[0] > 0.4  # score over the bright blob

    def test_detector_score_depends_on_roi_only(self):
        frame = synthetic_frame(32, 32)
        detector = SyntheticDetector.around_blob(frame)
        perturbed = frame.copy()
        perturbed[0, 0] = 0.0  # outside the ROI
        assert detector(frame)[0] == pytest.approx(detector(perturbed)[0])


class TestLimeCapture:
    def test_lineage_points_into_roi(self):
        frame = synthetic_frame(32, 32, seed=1)
        detector = SyntheticDetector.around_blob(frame)
        relation = lime_capture(frame, detector, patch=8, samples=80, seed=3)
        relation.validate()
        assert len(relation) > 0
        top, left, height, width = detector.roi
        cells = relation.backward([(0,)])
        roi_cells = {(y, x) for y in range(top, top + height) for x in range(left, left + width)}
        # the significant superpixels must cover most of the true ROI ...
        assert len(roi_cells & cells) / len(roi_cells) > 0.9
        # ... without flagging the whole frame
        assert len(cells) < frame.size * 0.5

    def test_lineage_compresses(self):
        frame = synthetic_frame(24, 24, seed=2)
        detector = SyntheticDetector.around_blob(frame)
        relation = lime_capture(frame, detector, patch=8, samples=60, seed=4)
        table = compress(relation)
        assert table.decompress() == relation.deduplicated()
        assert len(table) < len(relation)


class TestDriseCapture:
    def test_lineage_produced_and_valid(self):
        frame = synthetic_frame(32, 32, seed=5)
        detector = SyntheticDetector.around_blob(frame)
        relation = drise_capture(frame, detector, samples=60, seed=6)
        relation.validate()
        assert len(relation) > 0

    def test_threshold_controls_size(self):
        frame = synthetic_frame(32, 32, seed=7)
        detector = SyntheticDetector.around_blob(frame)
        loose = drise_capture(frame, detector, samples=40, threshold=0.3, seed=8)
        tight = drise_capture(frame, detector, samples=40, threshold=0.9, seed=8)
        assert len(tight) <= len(loose)


class TestInnerJoin:
    def test_join_rows_and_lineage(self):
        left = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
        right = np.array([[2.0, 200.0], [3.0, 300.0], [4.0, 400.0]])
        out, relations = inner_join_capture(left, right, left_on=0, right_on=0)
        assert out.shape == (2, 3)
        assert set(out[:, 0]) == {2.0, 3.0}
        # first output row derives from left row 1 and right row 0
        assert relations["left"].backward([(0, 0)]) == {(1, 0), (1, 1)}
        assert relations["right"].backward([(0, 2)]) == {(0, 0), (0, 1)}

    def test_join_no_matches(self):
        left = np.array([[1.0, 1.0]])
        right = np.array([[9.0, 9.0]])
        out, relations = inner_join_capture(left, right)
        assert out.shape[0] == 0
        assert len(relations["left"]) == 0

    def test_join_lineage_compresses_losslessly(self):
        rng = np.random.default_rng(0)
        left = np.stack([np.arange(30.0), rng.normal(size=30)], axis=1)
        right = np.stack([np.arange(0.0, 60.0, 2.0), rng.normal(size=30)], axis=1)
        _, relations = inner_join_capture(left, right)
        for relation in relations.values():
            assert compress(relation).decompress() == relation.deduplicated()


class TestGroupBy:
    def test_groupby_sums_and_lineage(self):
        table = np.array([[1.0, 5.0], [2.0, 7.0], [1.0, 3.0]])
        out, relations = group_by_capture(table, key_col=0, value_col=1)
        assert out.shape == (2, 2)
        assert out[0].tolist() == [1.0, 8.0]
        backward = relations["table"].backward([(0, 1)])
        assert (0, 1) in backward and (2, 1) in backward

    def test_groupby_lineage_valid(self):
        rng = np.random.default_rng(1)
        table = np.stack([rng.integers(0, 5, size=40).astype(float), rng.normal(size=40)], axis=1)
        _, relations = group_by_capture(table)
        relations["table"].validate()


class TestFilterRows:
    def test_filter_keeps_lineage_to_source_rows(self):
        table = np.arange(12.0).reshape(4, 3)
        mask = np.array([True, False, True, False])
        out, relations = filter_rows_capture(table, mask)
        assert out.shape == (2, 3)
        assert relations["table"].backward([(1, 0)]) == {(2, c) for c in range(3)}

    def test_filter_all_dropped(self):
        table = np.ones((3, 2))
        out, relations = filter_rows_capture(table, np.zeros(3, dtype=bool))
        assert out.shape[0] == 0
        assert len(relations["table"]) == 0
