"""Tests for cell-level lineage tracking (TrackedArray)."""

import numpy as np
import pytest

from repro.capture.tracked import TrackedArray, track_operation


class TestBasics:
    def test_identity_provenance(self):
        arr = TrackedArray(np.arange(4.0), name="A")
        assert arr.provenance[2] == frozenset({("A", (2,))})
        assert arr.shape == (4,) and arr.ndim == 1 and arr.size == 4
        assert arr.dtype == np.float64
        assert len(arr) == 4

    def test_provenance_shape_mismatch(self):
        with pytest.raises(ValueError):
            TrackedArray(np.zeros(3), provenance=np.empty((4,), dtype=object))

    def test_getitem_preserves_provenance(self):
        arr = TrackedArray(np.arange(6.0).reshape(2, 3), name="A")
        sub = arr[1]
        assert sub.provenance[0] == frozenset({("A", (1, 0))})

    def test_asarray_returns_values(self):
        arr = TrackedArray(np.arange(3.0), name="A")
        assert np.array_equal(np.asarray(arr), np.arange(3.0))


class TestUfuncs:
    def test_unary_elementwise(self):
        arr = TrackedArray(np.arange(4.0), name="A")
        out = np.negative(arr)
        assert np.array_equal(out.data, -np.arange(4.0))
        assert out.provenance[3] == frozenset({("A", (3,))})

    def test_binary_two_tracked(self):
        a = TrackedArray(np.ones(3), name="A")
        b = TrackedArray(np.ones(3), name="B")
        out = a + b
        assert out.provenance[1] == frozenset({("A", (1,)), ("B", (1,))})

    def test_binary_with_scalar(self):
        a = TrackedArray(np.ones(3), name="A")
        out = a * 2.0
        assert out.provenance[0] == frozenset({("A", (0,))})

    def test_broadcasting(self):
        a = TrackedArray(np.ones((2, 3)), name="A")
        b = TrackedArray(np.ones(3), name="B")
        out = a + b
        assert out.provenance[1, 2] == frozenset({("A", (1, 2)), ("B", (2,))})

    def test_operator_sugar(self):
        a = TrackedArray(np.arange(3.0) + 1, name="A")
        for out in (-a, a - 1, 1 - a, a / 2, 2 / a, a ** 2, a * 3, 3 * a, a + 1, 1 + a):
            assert isinstance(out, TrackedArray)
            assert out.provenance[0] == frozenset({("A", (0,))})

    def test_reduce(self):
        a = TrackedArray(np.ones((2, 3)), name="A")
        out = np.add.reduce(a, axis=1)
        assert out.provenance[0] == frozenset({("A", (0, c)) for c in range(3)})

    def test_accumulate(self):
        a = TrackedArray(np.ones(4), name="A")
        out = np.add.accumulate(a)
        assert out.provenance[2] == frozenset({("A", (i,)) for i in range(3)})

    def test_outer(self):
        a = TrackedArray(np.ones(2), name="A")
        b = TrackedArray(np.ones(3), name="B")
        out = np.multiply.outer(a, b)
        assert out.provenance[1, 2] == frozenset({("A", (1,)), ("B", (2,))})


class TestArrayFunctions:
    def test_sum_axis(self):
        a = TrackedArray(np.ones((3, 2)), name="A")
        out = np.sum(a, axis=1)
        assert out.shape == (3,)
        assert out.provenance[1] == frozenset({("A", (1, 0)), ("A", (1, 1))})

    def test_sum_all(self):
        a = TrackedArray(np.ones((2, 2)), name="A")
        out = np.sum(a)
        assert out.shape == (1,)
        assert out.provenance[0] == frozenset({("A", c) for c in np.ndindex(2, 2)})

    def test_mean_and_max(self):
        a = TrackedArray(np.arange(4.0), name="A")
        assert np.mean(a).provenance[0] == frozenset({("A", (i,)) for i in range(4)})
        assert np.max(a).provenance[0] == frozenset({("A", (i,)) for i in range(4)})

    def test_sort_follows_values(self):
        a = TrackedArray(np.array([3.0, 1.0, 2.0]), name="A")
        out = np.sort(a)
        assert np.array_equal(out.data, [1.0, 2.0, 3.0])
        assert out.provenance[0] == frozenset({("A", (1,))})
        assert out.provenance[2] == frozenset({("A", (0,))})

    def test_transpose_and_reshape(self):
        a = TrackedArray(np.arange(6.0).reshape(2, 3), name="A")
        assert np.transpose(a).provenance[2, 1] == frozenset({("A", (1, 2))})
        assert np.reshape(a, (3, 2)).provenance[2, 0] == frozenset({("A", (1, 1))})

    def test_flip_roll(self):
        a = TrackedArray(np.arange(4.0), name="A")
        assert np.flip(a).provenance[0] == frozenset({("A", (3,))})
        assert np.roll(a, 1).provenance[0] == frozenset({("A", (3,))})

    def test_cumsum(self):
        a = TrackedArray(np.ones(4), name="A")
        out = np.cumsum(a)
        assert out.provenance[2] == frozenset({("A", (i,)) for i in range(3)})

    def test_concatenate(self):
        a = TrackedArray(np.ones(2), name="A")
        b = TrackedArray(np.ones(2), name="B")
        out = np.concatenate([a, b])
        assert out.provenance[3] == frozenset({("B", (1,))})

    def test_diff(self):
        a = TrackedArray(np.arange(5.0), name="A")
        out = np.diff(a)
        assert out.provenance[1] == frozenset({("A", (1,)), ("A", (2,))})

    def test_where(self):
        cond = np.array([True, False, True])
        x = TrackedArray(np.ones(3), name="X")
        y = TrackedArray(np.zeros(3), name="Y")
        out = np.where(cond, x, y)
        assert out.provenance[0] == frozenset({("X", (0,))})
        assert out.provenance[1] == frozenset({("Y", (1,))})

    def test_matmul_2d(self):
        a = TrackedArray(np.ones((2, 3)), name="A")
        b = TrackedArray(np.ones((3, 2)), name="B")
        out = a @ b
        expected_a = {("A", (0, k)) for k in range(3)}
        expected_b = {("B", (k, 1)) for k in range(3)}
        assert out.provenance[0, 1] == frozenset(expected_a | expected_b)

    def test_matvec(self):
        a = TrackedArray(np.ones((2, 3)), name="A")
        v = TrackedArray(np.ones(3), name="V")
        out = np.matmul(a, v)
        assert {name for name, _ in out.provenance[0]} == {"A", "V"}

    def test_clip_and_take(self):
        a = TrackedArray(np.arange(5.0), name="A")
        assert np.clip(a, 0, 2).provenance[4] == frozenset({("A", (4,))})
        assert np.take(a, [3, 0]).provenance[0] == frozenset({("A", (3,))})

    def test_unsupported_function_raises(self):
        a = TrackedArray(np.arange(4.0), name="A")
        with pytest.raises(TypeError):
            np.fft.fft(a)


class TestRelationExport:
    def test_relation_to(self):
        a = TrackedArray(np.ones((3, 2)), name="A")
        out = np.sum(a, axis=1)
        relation = out.relation_to("A", (3, 2), out_name="B")
        assert relation.backward([(1,)]) == {(1, 0), (1, 1)}
        assert relation.out_name == "B" and relation.in_name == "A"

    def test_sources(self):
        a = TrackedArray(np.ones(2), name="A")
        b = TrackedArray(np.ones(2), name="B")
        assert (a + b).sources() == ("A", "B")

    def test_track_operation(self):
        data, relations = track_operation(
            lambda x: np.sum(np.negative(x), axis=1),
            inputs={"A": np.ones((4, 3))},
            out_name="B",
        )
        assert data.shape == (4,)
        assert relations["A"].backward([(2,)]) == {(2, c) for c in range(3)}

    def test_track_operation_two_inputs(self):
        data, relations = track_operation(
            lambda x, y: x + y,
            inputs={"X": np.ones(5), "Y": np.ones(5)},
        )
        assert relations["X"].forward([(1,)]) == {(1,)}
        assert relations["Y"].forward([(4,)]) == {(4,)}

    def test_track_operation_unsupported(self):
        with pytest.raises(TypeError):
            track_operation(lambda x: np.asarray(x) * 2, inputs={"A": np.ones(3)})
