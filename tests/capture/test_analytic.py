"""Tests for the analytic lineage builders, cross-checked against TrackedArray."""

import numpy as np
import pytest

from repro.capture.analytic import (
    axis_reduction_lineage,
    cumulative_lineage,
    elementwise_lineage,
    full_reduction_lineage,
    matmat_lineage,
    matvec_lineage,
    outer_lineage,
    repetition_lineage,
    row_pattern_lineage,
    selection_lineage,
    window_lineage,
)
from repro.capture.tracked import TrackedArray


class TestBuilders:
    def test_elementwise(self):
        rel = elementwise_lineage((3, 2))
        assert len(rel) == 6
        assert rel.backward([(1, 1)]) == {(1, 1)}

    def test_full_reduction(self):
        rel = full_reduction_lineage((2, 2))
        assert rel.backward([(0,)]) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_axis_reduction(self):
        rel = axis_reduction_lineage((3, 4), axis=1)
        assert rel.out_shape == (3,)
        assert rel.backward([(2,)]) == {(2, c) for c in range(4)}

    def test_axis_reduction_axis0(self):
        rel = axis_reduction_lineage((3, 4), axis=0)
        assert rel.out_shape == (4,)
        assert rel.backward([(1,)]) == {(r, 1) for r in range(3)}

    def test_axis_reduction_to_scalar(self):
        rel = axis_reduction_lineage((5,), axis=0)
        assert rel.out_shape == (1,)
        assert len(rel.backward([(0,)])) == 5

    def test_cumulative_1d(self):
        rel = cumulative_lineage((4,), axis=0)
        assert rel.backward([(2,)]) == {(0,), (1,), (2,)}

    def test_cumulative_flat(self):
        rel = cumulative_lineage((2, 2), axis=None)
        assert rel.out_shape == (4,)
        assert rel.backward([(1,)]) == {(0, 0), (0, 1)}

    def test_selection(self):
        source = np.array([2, 0, 1])
        rel = selection_lineage(source, (3,))
        assert rel.backward([(0,)]) == {(2,)}
        assert rel.forward([(1,)]) == {(2,)}

    def test_selection_with_constant_cells(self):
        source = np.array([1, -1, 0])
        rel = selection_lineage(source, (3,))
        assert rel.backward([(1,)]) == set()

    def test_window_same(self):
        rel = window_lineage(5, radius=1, mode="same")
        assert rel.backward([(0,)]) == {(0,), (1,)}
        assert rel.backward([(2,)]) == {(1,), (2,), (3,)}

    def test_window_valid(self):
        rel = window_lineage(5, radius=1, mode="valid")
        assert rel.out_shape == (3,)
        assert rel.backward([(0,)]) == {(0,), (1,), (2,)}

    def test_window_invalid_mode(self):
        with pytest.raises(ValueError):
            window_lineage(5, radius=1, mode="weird")

    def test_matvec(self):
        rel = matvec_lineage(3, 4)
        assert rel.backward([(1,)]) == {(1, c) for c in range(4)}

    def test_matmat(self):
        rel = matmat_lineage(2, 3, 4)
        assert rel.out_shape == (2, 4)
        assert rel.backward([(1, 2)]) == {(1, k) for k in range(3)}

    def test_outer(self):
        rel = outer_lineage(3, 2)
        assert rel.backward([(2, 1)]) == {(2,)}
        assert rel.forward([(0,)]) == {(0, 0), (0, 1)}

    def test_repetition(self):
        rel = repetition_lineage(4, 3)
        assert rel.out_shape == (12,)
        assert rel.backward([(5,)]) == {(1,)}
        assert rel.forward([(0,)]) == {(0,), (4,), (8,)}

    def test_row_pattern(self):
        rel = row_pattern_lineage((4, 3), (2,), out_row_of=[1, 3])
        assert rel.backward([(0,)]) == {(1, c) for c in range(3)}
        assert rel.backward([(1,)]) == {(3, c) for c in range(3)}


class TestAgainstTrackedCapture:
    """The analytic builders must agree with the generic taint tracking."""

    def _tracked_relation(self, func, data, out_shape=None):
        tracked = TrackedArray(np.asarray(data, dtype=np.float64), name="A")
        out = func(tracked)
        return out.relation_to("A", np.asarray(data).shape)

    def test_elementwise_matches(self):
        data = np.random.default_rng(0).normal(size=(4, 3))
        assert self._tracked_relation(np.negative, data) == elementwise_lineage((4, 3))

    def test_axis_sum_matches(self):
        data = np.ones((5, 3))
        tracked = self._tracked_relation(lambda x: np.sum(x, axis=1), data)
        assert tracked == axis_reduction_lineage((5, 3), axis=1)

    def test_full_sum_matches(self):
        data = np.ones((3, 3))
        tracked = self._tracked_relation(np.sum, data)
        assert tracked == full_reduction_lineage((3, 3))

    def test_sort_matches(self):
        data = np.random.default_rng(1).normal(size=12)
        tracked = self._tracked_relation(np.sort, data)
        analytic = selection_lineage(np.argsort(data, kind="stable"), (12,))
        assert tracked == analytic

    def test_cumsum_matches(self):
        data = np.ones(6)
        tracked = self._tracked_relation(np.cumsum, data)
        assert tracked == cumulative_lineage((6,), axis=0)

    def test_flip_matches(self):
        data = np.arange(7.0)
        tracked = self._tracked_relation(np.flip, data)
        assert tracked == selection_lineage(np.flip(np.arange(7)), (7,))

    def test_repeat_matches(self):
        data = np.arange(5.0)
        tracked = self._tracked_relation(lambda x: np.repeat(x, 3), data)
        assert tracked == selection_lineage(np.repeat(np.arange(5), 3), (5,))

    def test_diff_matches(self):
        data = np.arange(6.0)
        tracked = self._tracked_relation(np.diff, data)
        expected_pairs = {((i,), (i,)) for i in range(5)} | {((i,), (i + 1,)) for i in range(5)}
        assert set((o, s) for o, s in tracked) == expected_pairs
