"""Observability end to end: the /metrics and /debug/traces endpoints, the
unified /healthz snapshot, structured request logging, and the
fault-injection accounting invariant (observed == planned)."""

import logging
import time

import pytest

from repro import DSLog, LineageClient
from repro.core.relation import LineageRelation
from repro.faults import FaultPlan, InjectedFault
from repro.obs import REGISTRY, tracing
from repro.obs.metrics import parse_prometheus_text, sample_value
from repro.service.server import LineageServer

SHAPE = (6, 6)

# names the CI smoke and this test both require on the wire; one per
# instrumented subsystem (storage, ingest happens via service tests,
# serving, cache, breaker, faults)
REQUIRED_METRICS = (
    "dslog_segment_flushes_total",
    "dslog_segment_fsyncs_total",
    "dslog_table_cache_hits_total",
    "dslog_table_cache_bytes",
    "dslog_queries_total",
    "dslog_result_cache_misses_total",
    "dslog_breaker_transitions_total",
    "dslog_faults_injected_total",
    "dslog_http_requests_total",
    "dslog_http_request_seconds",
    "dslog_prefetch_seconds",
)


def identity(in_name, out_name):
    pairs = [((i, j), (i, j)) for i in range(SHAPE[0]) for j in range(SHAPE[1])]
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


@pytest.fixture
def server(tmp_path):
    log = DSLog(tmp_path / "db", backend="sharded", num_shards=2)
    for name in ("a", "b", "c"):
        log.define_array(name, SHAPE)
    log.add_lineage("a", "b", relation=identity("a", "b"))
    log.add_lineage("b", "c", relation=identity("b", "c"))
    server = LineageServer(log)
    server.start()
    yield server
    server.close()
    log.close()


@pytest.fixture
def client(server):
    return LineageClient.connect(server.url)


def _counter_value(name, **labels):
    metric = REGISTRY.get(name)
    if metric is None:
        return 0.0
    return (metric.labels(**labels) if labels else metric).value


# ----------------------------------------------------------------------
# /metrics
# ----------------------------------------------------------------------
def test_metrics_endpoint_serves_valid_prometheus(client):
    client.prov_query(["c", "a"], cells=[(1, 1)])
    # the handler meters after sending the response, so the scrape below
    # can win the race against the /query handler thread; poll briefly
    deadline = time.monotonic() + 5.0
    while (
        _counter_value("dslog_http_requests_total", endpoint="/query", status="200") < 1
        and time.monotonic() < deadline
    ):
        time.sleep(0.01)
    text = client.metrics_text()
    families = parse_prometheus_text(text)  # raises on malformed text
    for name in REQUIRED_METRICS:
        assert name in families, f"{name} missing from /metrics"
    assert families["dslog_http_requests_total"]["type"] == "counter"
    assert families["dslog_http_request_seconds"]["type"] == "histogram"
    assert families["dslog_table_cache_bytes"]["type"] == "gauge"
    assert (
        sample_value(
            families,
            "dslog_http_requests_total",
            {"endpoint": "/query", "status": "200"},
        )
        >= 1
    )


def test_metrics_content_type(server):
    import urllib.request

    with urllib.request.urlopen(server.url + "/metrics", timeout=5) as response:
        assert response.headers["Content-Type"].startswith("text/plain; version=0.0.4")


def test_http_error_statuses_are_metered(client):
    before = _counter_value("dslog_http_requests_total", endpoint="/graph/impact", status="404")
    with pytest.raises(Exception):
        client.impact("no-such-array")
    # the handler meters after sending the error response; poll briefly
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        after = _counter_value(
            "dslog_http_requests_total", endpoint="/graph/impact", status="404"
        )
        if after == before + 1:
            break
        time.sleep(0.01)
    assert after == before + 1


# ----------------------------------------------------------------------
# /debug/traces
# ----------------------------------------------------------------------
def _wait_query_traces(client, deadline_s=5.0):
    """The handler thread finishes its trace after sending the response,
    so the trace may land in the ring just after the client call returns."""
    deadline = time.monotonic() + deadline_s
    while True:
        matches = [
            t
            for t in client.traces()
            if t["name"] == "http" and t["tags"].get("endpoint") == "/query"
        ]
        if matches or time.monotonic() >= deadline:
            return matches
        time.sleep(0.01)


def test_query_produces_full_trace(client):
    tracing.clear_traces()
    client.prov_query(["c", "a"], cells=[(2, 3)])
    http_traces = _wait_query_traces(client)
    assert http_traces, "no /query trace reached the ring"
    trace = http_traces[0]
    assert trace["tags"]["status"] == 200
    assert trace["tags"]["cache"] == "miss"
    assert trace["duration_s"] > 0
    names = [s["name"] for s in trace["spans"]]
    for required in ("plan", "prefetch", "prefetch-shard", "join", "cache-install"):
        assert required in names, f"{required} missing from {names}"
    # prefetch-shard spans nest under the prefetch span and carry the shard
    spans = {s["span_id"]: s for s in trace["spans"]}
    for shard_span in (s for s in trace["spans"] if s["name"] == "prefetch-shard"):
        assert spans[shard_span["parent_id"]]["name"] == "prefetch"
        assert "shard" in shard_span["tags"]


def test_cached_query_trace_tags_hit(client):
    client.prov_query(["c", "a"], cells=[(2, 3)])
    tracing.clear_traces()
    client.prov_query(["c", "a"], cells=[(2, 3)])
    (trace,) = _wait_query_traces(client)
    assert trace["tags"]["cache"] == "hit"


def test_traces_limit_param(client):
    tracing.clear_traces()
    for i in range(3):
        client.prov_query(["b", "a"], cells=[(i, i)])
    deadline = time.monotonic() + 5.0
    while len(client.traces()) < 3 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert len(client.traces(limit=2)) == 2


def test_ingest_ticket_traces(tmp_path):
    from repro.service import LineageService

    tracing.clear_traces()
    with LineageService(tmp_path / "svc", num_shards=2) as service:
        for name in ("x", "y"):
            service.define_array(name, SHAPE)
        ticket = service.submit_lineage("x", "y", relation=identity("x", "y"))
        ticket.wait()
    ingest = [t for t in tracing.recent_traces() if t["name"] == "ingest"]
    assert ingest, "no ingest trace recorded"
    trace = ingest[0]
    assert trace["tags"]["outcome"] == "durable"
    names = [s["name"] for s in trace["spans"]]
    assert names == ["queued", "apply", "commit"]


# ----------------------------------------------------------------------
# /healthz agreement with /metrics
# ----------------------------------------------------------------------
def test_healthz_unified_snapshot(client):
    client.prov_query(["c", "a"], cells=[(1, 1)])
    health = client.healthz()
    # the storage section and the registry snapshot ride in one payload
    storage = health["storage"]
    assert "writes" in storage and "table_cache" in storage and "readers" in storage
    assert storage["writes"]["coalesced_records"] >= 1
    snapshot = health["metrics"]
    families = parse_prometheus_text(client.metrics_text())
    # both views read the same registry: spot-check an exact counter.
    # (/healthz was served before /metrics, so its own request may add
    # +1 between the two reads — allow only that skew on http counters)
    assert snapshot["dslog_queries_total"]["values"][""] == sample_value(
        families, "dslog_queries_total"
    )
    assert snapshot["dslog_manifest_publishes_total"]["values"][""] == sample_value(
        families, "dslog_manifest_publishes_total"
    )


# ----------------------------------------------------------------------
# structured request logging (the un-swallowed log_message)
# ----------------------------------------------------------------------
def test_request_log_event(client, caplog):
    def query_logs():
        return [
            getattr(r, "fields", {})
            for r in caplog.records
            if getattr(r, "event", None) == "request"
            and getattr(r, "fields", {}).get("endpoint") == "/query"
        ]

    with caplog.at_level(logging.INFO, logger="repro.obs"):
        client.prov_query(["b", "a"], cells=[(0, 0)])
        # the handler thread logs after it finishes sending the response,
        # i.e. possibly after the client call returns — poll briefly
        deadline = time.monotonic() + 5.0
        while not query_logs() and time.monotonic() < deadline:
            time.sleep(0.01)
    requests = query_logs()
    assert requests, "no structured request log event"
    entry = requests[-1]
    assert entry["method"] == "POST"
    assert entry["status"] == 200
    assert entry["ms"] >= 0
    assert entry["trace_id"]


def test_request_log_quiet_by_default(client, capfd):
    client.prov_query(["b", "a"], cells=[(0, 0)])
    captured = capfd.readouterr()
    assert '"event":"request"' not in captured.err
    assert "POST /query" not in captured.err  # BaseHTTPRequestHandler's default


# ----------------------------------------------------------------------
# fault accounting: observed == planned
# ----------------------------------------------------------------------
def test_faults_injected_metric_matches_plan(tmp_path):
    plan = FaultPlan().on("segment.fsync", every=2)
    before = _counter_value("dslog_faults_injected_total", site="segment.fsync", kind="error")
    log = DSLog(tmp_path / "db", backend="segment", faults=plan, autosync=False)
    log.define_array("a", SHAPE)
    log.define_array("b", SHAPE)
    log.add_lineage("a", "b", relation=identity("a", "b"))
    plan.arm()
    failures = 0
    for _ in range(6):
        try:
            log.sync()
        except (InjectedFault, OSError):
            failures += 1
    plan.disarm()
    log.close()
    after = _counter_value("dslog_faults_injected_total", site="segment.fsync", kind="error")
    assert failures > 0
    assert after - before == plan.fired()


def test_short_write_faults_are_counted_once(tmp_path):
    """short_write rules fire through plan.short_write(), not check();
    the metric must still agree with plan.fired()."""
    plan = FaultPlan().on("segment.write", kind="short_write", at=1, times=1)
    before = _counter_value(
        "dslog_faults_injected_total", site="segment.write", kind="short_write"
    )
    log = DSLog(tmp_path / "db", backend="segment", faults=plan, autosync=False)
    log.define_array("a", SHAPE)
    log.define_array("b", SHAPE)
    plan.arm()
    try:
        log.add_lineage("a", "b", relation=identity("a", "b"))
        log.sync()
    except (InjectedFault, OSError):
        pass
    plan.disarm()
    log.close()
    after = _counter_value(
        "dslog_faults_injected_total", site="segment.write", kind="short_write"
    )
    assert plan.fired() == 1
    assert after - before == 1


def test_fault_injection_emits_log_event(caplog):
    plan = FaultPlan().on("unit.site", at=1, times=1)
    plan.arm()
    with caplog.at_level(logging.WARNING, logger="repro.obs"):
        with pytest.raises(InjectedFault):
            plan.check("unit.site")
    events = [
        r.fields
        for r in caplog.records
        if getattr(r, "event", None) == "fault_injected"
    ]
    assert events and events[-1]["site"] == "unit.site"
    assert events[-1]["kind"] == "error"


def test_breaker_transitions_metered(tmp_path):
    from repro.faults import CircuitBreaker

    before_open = _counter_value(
        "dslog_breaker_transitions_total", scope="unit-breaker", to="open"
    )
    breaker = CircuitBreaker(failures=2, reset_after=0.01, scope="unit-breaker")
    breaker.record_failure()
    breaker.record_failure()  # trips
    after_open = _counter_value(
        "dslog_breaker_transitions_total", scope="unit-breaker", to="open"
    )
    assert after_open == before_open + 1
