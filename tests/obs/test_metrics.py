"""The metrics core: exactness under thread hammering, bucket quantile
math, the Prometheus text round trip, and registry semantics."""

import math
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import set_enabled
from repro.obs.metrics import (
    MetricsRegistry,
    parse_prometheus_text,
    quantile_from_buckets,
    render_prometheus,
    sample_value,
)

THREADS = 8
PER_THREAD = 5_000


@pytest.fixture
def registry():
    return MetricsRegistry()


# ----------------------------------------------------------------------
# concurrency: exact totals, no lost updates
# ----------------------------------------------------------------------
def test_counter_hammer_exact_total(registry):
    counter = registry.counter("hammer_total", "t")
    barrier = threading.Barrier(THREADS)

    def work():
        barrier.wait()
        for _ in range(PER_THREAD):
            counter.inc()

    threads = [threading.Thread(target=work) for _ in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == THREADS * PER_THREAD


def test_labeled_counter_hammer_exact_per_series(registry):
    counter = registry.counter("hammer_labeled_total", "t", labelnames=("worker",))
    barrier = threading.Barrier(THREADS)

    def work(idx):
        child = counter.labels(worker=str(idx % 2))
        barrier.wait()
        for _ in range(PER_THREAD):
            child.inc()

    threads = [threading.Thread(target=work, args=(i,)) for i in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.labels(worker="0").value == THREADS // 2 * PER_THREAD
    assert counter.labels(worker="1").value == THREADS // 2 * PER_THREAD


def test_histogram_hammer_exact_count_and_sum(registry):
    hist = registry.histogram("hammer_seconds", "t", buckets=(0.5, 1.0, 2.0))
    barrier = threading.Barrier(THREADS)

    def work(idx):
        value = 0.25 if idx % 2 == 0 else 1.5
        barrier.wait()
        for _ in range(PER_THREAD):
            hist.observe(value)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = THREADS * PER_THREAD
    assert hist.count == total
    assert hist.sum == pytest.approx((0.25 + 1.5) * (total // 2))
    cumulative = dict(hist.cumulative())
    assert cumulative[0.5] == total // 2
    assert cumulative[2.0] == total
    assert cumulative[float("inf")] == total


def test_counter_monotonic_under_concurrent_reads(registry):
    """Readers polling mid-hammer must never see the value go backwards."""
    counter = registry.counter("mono_total", "t")
    stop = threading.Event()
    violations = []

    def read():
        last = 0.0
        while not stop.is_set():
            now = counter.value
            if now < last:
                violations.append((last, now))
            last = now

    reader = threading.Thread(target=read)
    reader.start()
    threads = [
        threading.Thread(target=lambda: [counter.inc() for _ in range(PER_THREAD)])
        for _ in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    reader.join()
    assert not violations
    assert counter.value == THREADS * PER_THREAD


def test_counter_rejects_negative(registry):
    counter = registry.counter("no_dec_total", "t")
    with pytest.raises(ValueError):
        counter.inc(-1)


# ----------------------------------------------------------------------
# histogram quantile math
# ----------------------------------------------------------------------
def test_quantile_interpolation(registry):
    hist = registry.histogram("q_seconds", "t", buckets=(0.01, 0.1, 1.0, 10.0))
    for _ in range(50):
        hist.observe(0.005)
    for _ in range(50):
        hist.observe(5.0)
    # p50 falls on the boundary of the first bucket
    assert hist.quantile(0.5) == pytest.approx(0.01)
    # p95: rank 95 of 100 sits 45/50ths into the (1.0, 10.0] bucket
    assert hist.quantile(0.95) == pytest.approx(1.0 + 9.0 * 45 / 50)
    summary = hist.summary()
    assert summary["count"] == 100
    assert summary["p50"] == pytest.approx(0.01)


def test_quantile_from_buckets_inf_bucket_clamps():
    cumulative = [(1.0, 0), (float("inf"), 10)]
    # everything landed beyond the largest finite bound: report that bound
    assert quantile_from_buckets(cumulative, 0.5) == 1.0


def test_quantile_empty():
    # no observations: there is no honest answer, so nan
    assert math.isnan(quantile_from_buckets([(1.0, 0), (float("inf"), 0)], 0.5))


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
def test_get_or_create_same_instrument(registry):
    a = registry.counter("twice_total", "t")
    b = registry.counter("twice_total", "other help ignored")
    assert a is b


def test_type_mismatch_raises(registry):
    registry.counter("kind_total", "t")
    with pytest.raises(ValueError):
        registry.gauge("kind_total", "t")


def test_label_mismatch_raises(registry):
    registry.counter("lbl_total", "t", labelnames=("a",))
    with pytest.raises(ValueError):
        registry.counter("lbl_total", "t", labelnames=("b",))


def test_gauge_set_inc_dec(registry):
    gauge = registry.gauge("depth", "t")
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(3)
    assert gauge.value == 12


def test_snapshot_shapes(registry):
    registry.counter("c_total", "t").inc(3)
    registry.gauge("g", "t").set(7)
    hist = registry.histogram("h_seconds", "t", buckets=(1.0,))
    hist.observe(0.5)
    snap = registry.snapshot()
    assert snap["c_total"] == {"type": "counter", "values": {"": 3}}
    assert snap["g"] == {"type": "gauge", "values": {"": 7}}
    hist_values = snap["h_seconds"]["values"][""]
    assert hist_values["count"] == 1
    assert set(hist_values) >= {"count", "sum", "p50", "p95", "p99"}


def test_disabled_updates_are_dropped(registry):
    counter = registry.counter("frozen_total", "t")
    counter.inc()
    set_enabled(False)
    try:
        counter.inc(100)
        registry.gauge("frozen_g", "t").set(5)
    finally:
        set_enabled(True)
    assert counter.value == 1
    assert registry.get("frozen_g").value == 0
    counter.inc()
    assert counter.value == 2


# ----------------------------------------------------------------------
# Prometheus text round trip
# ----------------------------------------------------------------------
def test_render_parse_round_trip(registry):
    registry.counter("rt_total", "requests", labelnames=("endpoint", "status")).labels(
        endpoint="/query", status="200"
    ).inc(4)
    registry.gauge("rt_depth", "queue depth").set(2)
    hist = registry.histogram("rt_seconds", "latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)

    text = registry.render()
    families = parse_prometheus_text(text)

    assert families["rt_total"]["type"] == "counter"
    assert (
        sample_value(families, "rt_total", {"endpoint": "/query", "status": "200"}) == 4
    )
    assert sample_value(families, "rt_depth") == 2
    hist_fam = families["rt_seconds"]
    assert hist_fam["type"] == "histogram"
    assert sample_value(families, "rt_seconds_count") == 2
    assert sample_value(families, "rt_seconds_bucket", {"le": "0.1"}) == 1
    assert sample_value(families, "rt_seconds_bucket", {"le": "+Inf"}) == 2


def test_label_escaping_round_trip(registry):
    counter = registry.counter("esc_total", "t", labelnames=("path",))
    counter.labels(path='a"b\\c\nd').inc()
    families = parse_prometheus_text(registry.render())
    (sample,) = families["esc_total"]["samples"]
    assert sample[1]["path"] == 'a"b\\c\nd'
    assert sample[2] == 1


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_prometheus_text("this is { not prometheus\n")


def test_render_prometheus_histogram_shape(registry):
    hist = registry.histogram("shape_seconds", "t", buckets=(1.0,))
    hist.observe(0.5)
    text = render_prometheus([hist])
    assert "# TYPE shape_seconds histogram" in text
    assert 'shape_seconds_bucket{le="+Inf"} 1' in text
    assert "shape_seconds_count 1" in text


def test_hammer_through_thread_pool(registry):
    """Same exactness property through a ThreadPoolExecutor (the shape the
    serving tier actually uses)."""
    counter = registry.counter("pool_total", "t")
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        list(pool.map(lambda _: counter.inc(), range(THREADS * 500)))
    assert counter.value == THREADS * 500
