"""Tracing: span nesting (including across executor thread pools via
contextvars propagation), the bounded ring, the noop fast path when no
trace is active, and the slow-trace log hook."""

import json
import logging
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import tracing
from repro.obs.tracing import (
    Trace,
    clear_traces,
    current_trace,
    recent_traces,
    set_ring_capacity,
    set_slow_threshold_ms,
    slow_threshold_ms,
    span,
    start_trace,
    wrap_context,
)


@pytest.fixture(autouse=True)
def clean_ring():
    clear_traces()
    yield
    clear_traces()
    # start_trace() pins the trace in this thread's context until the
    # caller replaces it; drop it so tests stay independent
    tracing._CURRENT.set(None)


def _by_name(trace_dict):
    return {s["name"]: s for s in trace_dict["spans"]}


def test_span_nesting_parent_ids():
    trace = Trace("t")
    with trace.activate():
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                with trace.span("leaf"):
                    pass
    spans = _by_name(trace.as_dict())
    assert spans["outer"]["parent_id"] is None
    assert spans["inner"]["parent_id"] == outer.span_id
    assert spans["leaf"]["parent_id"] == inner.span_id
    assert all(s["duration_s"] >= 0 for s in spans.values())


def test_module_span_requires_active_trace():
    # no trace: module-level span() is a noop and records nothing
    with span("orphan") as sp:
        sp.set_tag("ignored", 1)
    trace = start_trace("t")
    try:
        with span("attached"):
            pass
    finally:
        trace.finish()
    assert [s["name"] for s in trace.as_dict()["spans"]] == ["attached"]


def test_nesting_across_thread_pool():
    """Spans opened in pool threads via wrap_context() must attach under
    the submitting span, exactly like the query executor's fan-out."""
    trace = Trace("t")
    with trace.activate():
        with trace.span("fanout") as fanout:

            def load(shard):
                with span("prefetch-shard", shard=shard):
                    return shard

            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [pool.submit(wrap_context(load), i) for i in range(4)]
                assert sorted(f.result() for f in futures) == [0, 1, 2, 3]
    spans = trace.as_dict()["spans"]
    children = [s for s in spans if s["name"] == "prefetch-shard"]
    assert len(children) == 4
    assert {s["parent_id"] for s in children} == {fanout.span_id}
    assert sorted(s["tags"]["shard"] for s in children) == [0, 1, 2, 3]


def test_pool_thread_without_wrap_has_no_trace():
    trace = Trace("t")
    with trace.activate():
        with ThreadPoolExecutor(max_workers=1) as pool:
            assert pool.submit(current_trace).result() is None
        assert current_trace() is trace


def test_add_span_from_other_thread():
    """Post-hoc spans (pipeline tickets timed by the committer thread)."""
    trace = Trace("ingest")

    def committer():
        trace.add_span("commit", 0.025, batch=3)

    with ThreadPoolExecutor(max_workers=1) as pool:
        pool.submit(committer).result()
    (sp,) = trace.as_dict()["spans"]
    assert sp["name"] == "commit"
    assert sp["duration_s"] == pytest.approx(0.025)
    assert sp["tags"]["batch"] == 3


def test_finish_pushes_to_ring_once():
    trace = Trace("t", kind="x")
    trace.finish()
    trace.finish()  # idempotent
    traces = recent_traces()
    assert len(traces) == 1
    assert traces[0]["trace_id"] == trace.trace_id
    assert traces[0]["tags"] == {"kind": "x"}
    assert traces[0]["duration_s"] >= 0


def test_ring_is_bounded_and_newest_first():
    set_ring_capacity(4)
    try:
        ids = []
        for i in range(8):
            t = Trace("t", seq=i)
            ids.append(t.trace_id)
            t.finish()
        traces = recent_traces()
        assert len(traces) == 4
        assert [t["trace_id"] for t in traces] == ids[-1:-5:-1]
        assert [t["trace_id"] for t in recent_traces(limit=2)] == ids[-1:-3:-1]
    finally:
        set_ring_capacity(256)


def test_start_trace_none_when_disabled():
    tracing.set_enabled(False)
    try:
        assert start_trace("t") is None
        assert current_trace() is None
    finally:
        tracing.set_enabled(True)


def test_slow_trace_emits_log_event(caplog):
    previous = slow_threshold_ms()
    set_slow_threshold_ms(0.0)
    try:
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            Trace("slowpoke").finish()
    finally:
        set_slow_threshold_ms(previous)
    events = [r for r in caplog.records if getattr(r, "fields", {}).get("trace_name") == "slowpoke"]
    assert len(events) == 1
    assert events[0].getMessage() == "slow_trace"


def test_trace_payload_is_json_serializable():
    trace = Trace("t")
    with trace.activate(), trace.span("s", shard=1):
        pass
    json.dumps(trace.finish())
