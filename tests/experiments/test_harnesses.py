"""Tests for the experiment harnesses (small-scale runs of every table/figure)."""

import pytest

from repro.experiments import (
    fig7_compression_latency,
    fig8_query_latency,
    fig9_random_numpy,
    table7_compression,
    table9_coverage,
    table10_workflows,
)
from repro.experiments.common import Timer, format_table, mb
from repro.workloads.pipelines import image_pipeline, resnet_block_pipeline


class TestCommon:
    def test_timer(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.seconds >= 0

    def test_mb(self):
        assert mb(2_000_000) == 2.0

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 0.0000001]], title="T")
        assert "T" in text and "a" in text and "x" in text


class TestTable7:
    def test_run_structure(self):
        results = table7_compression.run(scale=0.02, operations=["Negative", "Sort", "Aggregate"])
        assert set(results) == {"Negative", "Sort", "Aggregate"}
        for sizes in results.values():
            assert set(sizes) == set(table7_compression.FORMATS)
            assert all(v > 0 for v in sizes.values())

    def test_provrc_wins_on_structured_ops(self):
        results = table7_compression.run(scale=0.05, operations=["Negative", "Aggregate", "Matrix*Vector"])
        for name, sizes in results.items():
            baselines = [sizes[f] for f in ("Raw", "Array", "Parquet", "Parquet-GZip", "Turbo-RC")]
            assert sizes["ProvRC"] < min(baselines), name
            # the headline claim: orders of magnitude below Raw
            assert sizes["ProvRC"] < sizes["Raw"] / 100, name

    def test_gzip_wins_on_unstructured(self):
        results = table7_compression.run(scale=0.02, operations=["Sort"])
        sizes = results["Sort"]
        assert sizes["ProvRC-GZip"] < sizes["ProvRC"]

    def test_main_prints(self, capsys):
        table7_compression.main(scale=0.01)
        assert "Table VII" in capsys.readouterr().out


class TestFig7:
    def test_run_structure(self):
        results = fig7_compression_latency.run(sizes=(2000, 5000))
        assert set(results) == {"elementwise", "aggregate"}
        for per_format in results.values():
            for fmt, by_size in per_format.items():
                assert set(by_size) == {2000, 5000}
                assert all(v >= 0 for v in by_size.values())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            fig7_compression_latency.run(sizes=(100,), kinds=("weird",))


class TestFig8:
    def test_small_run_and_agreement(self):
        pipelines = {
            "image": image_pipeline(32, 32, lime_samples=20),
            "resnet": resnet_block_pipeline(16, 16),
        }
        results = fig8_query_latency.run(pipelines=pipelines, selectivities=(0.01, 0.05))
        assert set(results) == {"image", "resnet"}
        for per_system in results.values():
            assert set(per_system) == set(fig8_query_latency.SYSTEMS)

    def test_query_cells_for_selectivity(self):
        cells = fig8_query_latency.query_cells_for_selectivity((10, 10), 0.25, seed=1)
        assert len(cells) == 25
        assert all(0 <= y < 10 and 0 <= x < 10 for y, x in cells)


class TestFig9:
    def test_small_run(self):
        results = fig9_random_numpy.run(
            n_workflows=2, chain_lengths=(3,), n_cells=1500, query_cells=20
        )
        assert set(results) == {3}
        stats = results[3]
        assert set(stats) == set(fig9_random_numpy.SYSTEMS)
        for values in stats.values():
            assert values["min"] <= values["avg"] <= values["max"]


class TestTable9:
    def test_small_coverage_run(self):
        from repro.capture.numpy_catalog import build_catalog

        subset = [op for op in build_catalog() if op.name in {
            "negative", "sin", "sum", "sort", "cumsum", "cross_const", "convolve_same",
        }]
        tallies = table9_coverage.run(runs=4, base_size=300, operations=subset)
        assert tallies["total"]["total"] == 7
        # every element-wise op compresses and is reusable at both levels
        assert tallies["element"]["provrc"] == tallies["element"]["total"]
        assert tallies["element"]["gen_sig"] == tallies["element"]["total"]
        # sort's value-dependent lineage blocks shape-based reuse
        assert tallies["complex"]["dim_sig"] < tallies["complex"]["total"]

    def test_cross_triggers_the_misprediction(self):
        from repro.capture.numpy_catalog import build_catalog

        cross = [op for op in build_catalog() if op.name == "cross_const"]
        tallies = table9_coverage.run(runs=8, base_size=30, operations=cross, seed=3)
        assert tallies["complex"]["error"] >= 0  # error may or may not fire depending on widths drawn


class TestTable10:
    def test_run_structure(self):
        results = table10_workflows.run(n_workflows=6)
        assert set(results) == {"Flight", "Netflix", "Total"}
        for stats in results.values():
            assert set(stats) == {"total_ops", "compressible_ops", "compressible_pct", "longest_chain"}

    def test_main_prints(self, capsys):
        table10_workflows.main(n_workflows=4)
        assert "Table X" in capsys.readouterr().out
