"""Tests for the baseline query engines (decode + join per hop)."""

import numpy as np
import pytest

from repro.baselines.engine import ArrayDatabase, BaselineDatabase
from repro.baselines.stores import ColumnarGzipStore, ColumnarStore, RawStore, TurboRCStore
from repro.core.reference import query_path_reference
from repro.core.relation import LineageRelation


def elementwise(shape, in_name, out_name):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def axis_sum(rows, cols, in_name, out_name):
    pairs = [((r,), (r, c)) for r in range(rows) for c in range(cols)]
    return LineageRelation.from_pairs(pairs, (rows,), (rows, cols), in_name=in_name, out_name=out_name)


@pytest.fixture(params=[RawStore, ColumnarStore, ColumnarGzipStore, TurboRCStore],
                ids=lambda c: c.name)
def database(request):
    return BaselineDatabase(request.param())


def build(db):
    r1 = elementwise((6, 4), "A", "B")
    r2 = axis_sum(6, 4, "B", "C")
    db.ingest(r1)
    db.ingest(r2)
    return r1, r2


class TestBaselineDatabase:
    def test_forward_path(self, database):
        r1, r2 = build(database)
        cells = [(0, 0), (4, 3)]
        expected = query_path_reference([r1, r2], ["forward", "forward"], cells)
        assert database.query_path(["A", "B", "C"], cells) == expected

    def test_backward_path(self, database):
        r1, r2 = build(database)
        cells = [(2,), (5,)]
        expected = query_path_reference([r2, r1], ["backward", "backward"], cells)
        assert database.query_path(["C", "B", "A"], cells) == expected

    def test_empty_query(self, database):
        build(database)
        assert database.query_path(["A", "B", "C"], []) == set()

    def test_missing_hop(self, database):
        build(database)
        with pytest.raises(KeyError):
            database.query_path(["A", "Z"], [(0, 0)])

    def test_short_path(self, database):
        build(database)
        with pytest.raises(ValueError):
            database.query_path(["A"], [(0, 0)])

    def test_storage_bytes(self, database):
        build(database)
        assert database.storage_bytes() > 0


class TestArrayDatabase:
    def test_matches_reference(self):
        db = ArrayDatabase(batch_size=3)
        r1, r2 = build(db)
        cells = [(r, c) for r in range(6) for c in range(4) if (r + c) % 3 == 0]
        expected = query_path_reference([r1, r2], ["forward", "forward"], cells)
        assert db.query_path(["A", "B", "C"], cells) == expected

    def test_backward(self):
        db = ArrayDatabase()
        r1, r2 = build(db)
        assert db.query_path(["C", "B", "A"], [(1,)]) == {(1, c) for c in range(4)}

    def test_no_match(self):
        db = ArrayDatabase()
        r1 = LineageRelation.from_pairs([((0,), (0,))], (4,), (4,), in_name="A", out_name="B")
        db.ingest(r1)
        assert db.query_path(["A", "B"], [(3,)]) == set()


class TestAgainstDSLog:
    """Baselines and the in-situ engine must return identical answers."""

    def test_all_engines_agree(self):
        from repro import DSLog

        rng = np.random.default_rng(0)
        shape = (12, 5)
        r1 = elementwise(shape, "A", "B")
        r2 = axis_sum(*shape, "B", "C")

        log = DSLog()
        for name, s in [("A", shape), ("B", shape), ("C", (shape[0],))]:
            log.define_array(name, s)
        log.add_lineage("A", "B", relation=r1)
        log.add_lineage("B", "C", relation=r2)

        cells = [tuple(map(int, (rng.integers(0, shape[0]), rng.integers(0, shape[1])))) for _ in range(6)]
        expected = query_path_reference([r1, r2], ["forward", "forward"], cells)
        assert log.prov_query(["A", "B", "C"], cells).to_cells() == expected

        for store in (RawStore(), ColumnarStore(), TurboRCStore()):
            db = BaselineDatabase(store)
            db.ingest(r1)
            db.ingest(r2)
            assert db.query_path(["A", "B", "C"], cells) == expected

        array_db = ArrayDatabase()
        array_db.ingest(r1)
        array_db.ingest(r2)
        assert array_db.query_path(["A", "B", "C"], cells) == expected
