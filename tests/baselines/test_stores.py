"""Round-trip and relative-size tests for the baseline storage formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.stores import (
    ArrayStore,
    ColumnarGzipStore,
    ColumnarStore,
    RawStore,
    TurboRCStore,
    all_baseline_stores,
)

STORES = [RawStore(), ArrayStore(), ColumnarStore(), ColumnarGzipStore(), TurboRCStore()]


def structured_rows(n=5000):
    """Element-wise-style lineage rows (highly compressible)."""
    idx = np.arange(n)
    return np.stack([idx, idx], axis=1)


def random_rows(n=5000, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 100000, size=(n, 3)).astype(np.int64)


class TestRoundTrip:
    @pytest.mark.parametrize("store", STORES, ids=lambda s: s.name)
    def test_structured(self, store):
        rows = structured_rows()
        assert np.array_equal(store.decode(store.encode(rows)), rows)

    @pytest.mark.parametrize("store", STORES, ids=lambda s: s.name)
    def test_random(self, store):
        rows = random_rows()
        assert np.array_equal(store.decode(store.encode(rows)), rows)

    @pytest.mark.parametrize("store", STORES, ids=lambda s: s.name)
    def test_empty(self, store):
        rows = np.empty((0, 3), dtype=np.int64)
        decoded = store.decode(store.encode(rows))
        assert decoded.shape[0] == 0

    @pytest.mark.parametrize("store", STORES, ids=lambda s: s.name)
    def test_negative_values(self, store):
        rows = np.array([[-5, 3], [-1000000, 7], [42, -9]], dtype=np.int64)
        assert np.array_equal(store.decode(store.encode(rows)), rows)

    def test_multiple_row_groups(self):
        store = ColumnarStore(row_group_size=1000)
        rows = random_rows(3500)
        assert np.array_equal(store.decode(store.encode(rows)), rows)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 200),
        st.integers(1, 4),
        st.integers(0, 2**31),
    )
    def test_property_roundtrip_all_stores(self, n, ncols, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(-1000, 1000, size=(n, ncols)).astype(np.int64)
        for store in STORES:
            assert np.array_equal(store.decode(store.encode(rows)), rows), store.name


class TestRelativeSizes:
    def test_columnar_beats_raw_on_structured(self):
        rows = structured_rows(50000)
        raw = RawStore().size_bytes(rows)
        parquet = ColumnarStore().size_bytes(rows)
        assert parquet < raw

    def test_gzip_helps_on_structured(self):
        rows = structured_rows(50000)
        plain = ColumnarStore().size_bytes(rows)
        gz = ColumnarGzipStore().size_bytes(rows)
        assert gz <= plain

    def test_turbo_rc_between_raw_and_nothing(self):
        rows = random_rows(50000)
        raw = RawStore().size_bytes(rows)
        turbo = TurboRCStore().size_bytes(rows)
        assert 0 < turbo < raw

    def test_aggregate_pattern_compresses_well_in_columnar(self):
        # repeated output index + contiguous input index: dictionary/RLE friendly
        n = 50000
        rows = np.stack([np.zeros(n, dtype=np.int64), np.arange(n)], axis=1)
        parquet = ColumnarStore().size_bytes(rows)
        raw = RawStore().size_bytes(rows)
        assert parquet < raw / 3

    def test_array_store_similar_to_raw(self):
        rows = random_rows(20000)
        raw = RawStore().size_bytes(rows)
        arr = ArrayStore().size_bytes(rows)
        assert abs(arr - raw) < raw * 0.1


class TestRegistry:
    def test_all_baseline_stores(self):
        stores = all_baseline_stores()
        assert set(stores) == {"Raw", "Array", "Parquet", "Parquet-GZip", "Turbo-RC"}

    def test_bad_payload_rejected(self):
        with pytest.raises(ValueError):
            RawStore().decode(b"JUNK" + b"\x00" * 10)
