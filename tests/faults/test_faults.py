"""Unit tests for the fault-injection primitives: deterministic
:class:`FaultPlan` rule semantics and the :class:`CircuitBreaker`
closed → open → half-open automaton."""

import time

import pytest

from repro.faults import (
    CircuitBreaker,
    DeadlineExceeded,
    FaultPlan,
    IngestOverloaded,
    InjectedFault,
    ShardUnavailable,
    plan_from_env,
)


class TestFaultPlan:
    def test_disarmed_plan_never_fires_but_counts(self):
        plan = FaultPlan().on("segment.write", at=7)
        for _ in range(5):
            plan.check("segment.write", "shard-00")  # disarmed: no-op
        plan.arm()
        # counters advanced while disarmed, so the schedule is unchanged:
        # call 6 is clean, call 7 is the one that fires
        plan.check("segment.write", "shard-00")
        with pytest.raises(InjectedFault):
            plan.check("segment.write", "shard-00")
        assert plan.fired() == 1

    def test_at_times_window(self):
        plan = FaultPlan().on("x", at=3, times=2)
        plan.arm()
        outcomes = []
        for _ in range(6):
            try:
                plan.check("x")
                outcomes.append(False)
            except InjectedFault:
                outcomes.append(True)
        assert outcomes == [False, False, True, True, False, False]

    def test_every_nth(self):
        plan = FaultPlan().on("x", every=3)
        plan.arm()
        fired = []
        for i in range(1, 10):
            try:
                plan.check("x")
            except InjectedFault:
                fired.append(i)
        assert fired == [3, 6, 9]

    def test_scopes_are_independent_failure_domains(self):
        plan = FaultPlan().on("x", scope="shard-01", at=1, times=1)
        plan.arm()
        plan.check("x", "shard-00")  # different scope: clean
        with pytest.raises(InjectedFault) as excinfo:
            plan.check("x", "shard-01")
        assert excinfo.value.site == "x"
        assert excinfo.value.scope == "shard-01"
        plan.check("x", "shard-01")  # times=1: spent

    def test_seeded_rate_is_deterministic(self):
        def run(seed):
            plan = FaultPlan.seeded(seed, rate=0.3, sites=("x",))
            plan.arm()
            fired = []
            for i in range(50):
                try:
                    plan.check("x", "s")
                except InjectedFault:
                    fired.append(i)
            return fired

        a, b = run(7), run(7)
        assert a == b  # same seed, same schedule
        assert a, "rate=0.3 over 50 calls must fire at least once"
        assert run(8) != a  # different seed, different schedule

    def test_enospc_kind_sets_errno(self):
        import errno

        plan = FaultPlan().on("x", kind="enospc", at=1, times=1)
        plan.arm()
        with pytest.raises(InjectedFault) as excinfo:
            plan.check("x")
        assert excinfo.value.errno == errno.ENOSPC

    def test_stall_kind_sleeps_instead_of_raising(self):
        plan = FaultPlan().on("x", kind="stall", at=1, times=1, seconds=0.05)
        plan.arm()
        start = time.monotonic()
        plan.check("x")  # no raise
        assert time.monotonic() - start >= 0.04

    def test_short_write_only_fires_through_short_write(self):
        plan = FaultPlan().on("segment.write", kind="short_write", at=1, times=2)
        plan.arm()
        # call 1 is due, but short_write rules never raise through check()
        plan.check("segment.write")
        assert plan.fired() == 0
        # call 2 (still in the window) fires through the writer's hook
        partial = plan.short_write("segment.write", None, 100)
        assert partial is not None and 0 <= partial < 100
        assert plan.fired("segment.write") == 1

    def test_events_record_the_schedule(self):
        plan = FaultPlan().on("x", at=2, times=1)
        plan.arm()
        plan.check("x", "s")
        with pytest.raises(InjectedFault):
            plan.check("x", "s")
        assert plan.events == [("x", "s", "error", 2)]
        assert plan.stats()["injected"] == 1

    def test_plan_from_env(self):
        assert plan_from_env({}) is None
        plan = plan_from_env(
            {"DSLOG_FAULT_SEED": "5", "DSLOG_FAULT_RATE": "0.5", "DSLOG_FAULT_SITES": "x,y"}
        )
        assert plan is not None and not plan.armed
        assert {r["site"] for r in plan.stats()["rules"]} == {"x", "y"}


class TestStructuredErrors:
    def test_taxonomy_inheritance(self):
        # the contracts the service layer and existing handlers rely on
        assert issubclass(InjectedFault, OSError)
        assert issubclass(DeadlineExceeded, TimeoutError)
        assert issubclass(IngestOverloaded, RuntimeError)
        assert issubclass(ShardUnavailable, RuntimeError)
        assert DeadlineExceeded("x", shard=3).shard == 3
        assert ShardUnavailable("x", shard=2).shard == 2
        assert IngestOverloaded("x", queue_depth=9).queue_depth == 9


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failures=3, reset_after=60)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        breaker.record_success()  # resets the consecutive count
        assert breaker.state == "closed"
        for _ in range(2):
            assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # third consecutive: trip
        assert breaker.state == "open"
        assert not breaker.allows()
        assert breaker.trips == 1

    def test_half_open_single_probe_then_close(self):
        breaker = CircuitBreaker(failures=1, reset_after=0.05)
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.try_probe()  # clock not expired yet
        time.sleep(0.06)
        assert breaker.state == "half-open"
        assert breaker.try_probe()
        assert not breaker.try_probe()  # only one caller wins the probe
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allows()

    def test_failed_probe_reopens_and_restarts_clock(self):
        breaker = CircuitBreaker(failures=1, reset_after=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.try_probe()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert not breaker.try_probe()  # clock restarted
        stats = breaker.stats()
        assert stats["state"] == "open"
        assert stats["failure_threshold"] == 1
