"""Fault soak: seeded random fault schedules against the real storage and
service stacks, asserting the recovery invariants rather than specific
outcomes.

Every seed drives a deterministic :class:`FaultPlan` (mixed EIO, ENOSPC,
torn short writes and fsync faults) through a full ingest run; afterwards
the catalog must be mechanically recoverable: ``scrub(repair=True)`` never
raises, a second scrub is clean, every surviving entry hydrates and
answers queries correctly, and no durably-acknowledged write is lost.

Marked ``faults`` so tier-1 stays fast: CI's fault-soak job runs
``pytest -m faults`` over a seed matrix (``DSLOG_SOAK_SEEDS`` /
``DSLOG_SOAK_RATE`` widen it).
"""

import os

import numpy as np
import pytest

from repro import DSLog, FaultPlan, LineageService
from repro.core.relation import LineageRelation
from repro.faults import FaultRule

pytestmark = pytest.mark.faults

SHAPE = (4,)
SEEDS = [int(s) for s in os.environ.get("DSLOG_SOAK_SEEDS", "101,202,303").split(",")]
RATE = float(os.environ.get("DSLOG_SOAK_RATE", "0.08"))


def elementwise(in_name, out_name, shape=SHAPE):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(
        pairs, shape, shape, in_name=in_name, out_name=out_name
    )


def mixed_plan(seed):
    """EIO + ENOSPC + torn short writes + fsync/manifest faults, each on
    its own deterministic sub-seed."""
    return FaultPlan(
        [
            FaultRule("segment.write", kind="short_write", rate=RATE / 2, seed=seed),
            FaultRule("segment.write", kind="error", rate=RATE, seed=seed + 1),
            FaultRule("segment.fsync", kind="error", rate=RATE, seed=seed + 2),
            FaultRule("segment.fsync", kind="enospc", rate=RATE / 2, seed=seed + 3),
            FaultRule("manifest.write", kind="error", rate=RATE, seed=seed + 4),
        ]
    )


def assert_recovered_consistent(root):
    """Cold-open the catalog, heal it, and prove every surviving entry is
    fully readable; returns the surviving (in, out) pairs."""
    recovered = DSLog.load(root, autosync=False)
    try:
        recovered.scrub(repair=True)  # must never raise
        second = recovered.scrub(repair=False)
        if "shards" in second:
            assert all(r["clean"] for r in second["shards"].values())
        else:
            assert second["clean"]
        assert recovered.catalog.materialize_all() == 2 * len(recovered.catalog)
        survivors = {(e.in_name, e.out_name) for e in recovered.catalog.entries()}
        for a, b in survivors:
            assert recovered.prov_query([a, b], [(1,)]).to_cells() == {(1,)}
    finally:
        recovered.close()
    return survivors


@pytest.mark.parametrize("seed", SEEDS)
def test_storage_soak_scrub_always_heals(seed, tmp_path):
    root = tmp_path / "db"
    plan = mixed_plan(seed)
    log = DSLog(root, backend="segment", autosync=False, faults=plan)
    names = [f"A{i}" for i in range(41)]
    for name in names:
        log.define_array(name, SHAPE)
    plan.arm()
    for i, (a, b) in enumerate(zip(names, names[1:])):
        try:
            log.add_lineage(a, b, relation=elementwise(a, b), op_name=f"op_{a}")
        except OSError:
            continue
        if i % 4 == 3:
            try:
                log.sync()
            except OSError:
                pass
    plan.disarm()
    try:
        log.close()
    except OSError:
        pass
    assert_recovered_consistent(root)


@pytest.mark.parametrize("seed", SEEDS)
def test_service_soak_durable_tickets_never_lost(seed, tmp_path):
    root = tmp_path / "db"
    plan = mixed_plan(seed)
    log = DSLog(root, backend="sharded", num_shards=2, autosync=False, faults=plan)
    svc = LineageService(log=log, workers=2, commit_interval=0.001, submit_timeout=10)
    names = [f"B{i}" for i in range(25)]
    for name in names:
        svc.define_array(name, SHAPE)
    plan.arm()
    tickets = []
    for a, b in zip(names, names[1:]):
        tickets.append(
            svc.submit_lineage(a, b, relation=elementwise(a, b), op_name=f"op_{a}")
        )
    svc.flush(timeout=60)
    plan.disarm()
    svc.close()

    survivors = assert_recovered_consistent(root)
    # the durability contract under fire: an acknowledged (durable) ticket
    # is NEVER lost — failed tickets may or may not have landed
    for ticket in tickets:
        assert ticket.done
        if not ticket.failed:
            entry = ticket._record
            assert (entry.in_name, entry.out_name) in survivors
