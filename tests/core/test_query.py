"""Correctness tests for in-situ query processing (θ-joins over compressed tables)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.provrc import compress
from repro.core.query import CellBoxSet, execute_path, merge_boxes, theta_join
from repro.core.reference import query_path_reference
from repro.core.relation import LineageRelation


def elementwise_relation(shape, in_name="A", out_name="B"):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def aggregate_relation(shape, axis, in_name="A", out_name="B"):
    out_shape = tuple(d for i, d in enumerate(shape) if i != axis)
    pairs = []
    for in_cell in np.ndindex(*shape):
        out_cell = tuple(v for i, v in enumerate(in_cell) if i != axis)
        pairs.append((out_cell, in_cell))
    return LineageRelation.from_pairs(pairs, out_shape, shape, in_name=in_name, out_name=out_name)


class TestCellBoxSet:
    def test_from_cells_merges(self):
        box_set = CellBoxSet.from_cells("A", (10,), [(0,), (1,), (2,), (5,)])
        assert len(box_set) == 2
        assert box_set.to_cells() == {(0,), (1,), (2,), (5,)}

    def test_from_slices(self):
        box_set = CellBoxSet.from_slices("A", (10, 10), [slice(0, 3), slice(None)])
        assert box_set.count_cells() == 30

    def test_empty(self):
        box_set = CellBoxSet.empty("A", (4, 4))
        assert box_set.is_empty()
        assert box_set.count_cells() == 0

    def test_mask_and_count_agree(self):
        box_set = CellBoxSet.from_boxes("A", (6, 6), [[(0, 2), (0, 2)], [(2, 4), (2, 4)]])
        assert box_set.count_cells() == int(box_set.to_mask().sum())
        assert box_set.count_cells() == len(box_set.to_cells())

    def test_clipped_drops_out_of_bounds(self):
        box_set = CellBoxSet.from_boxes("A", (4,), [[(2, 9)], [(7, 9)]])
        clipped = box_set.clipped()
        assert clipped.to_cells() == {(2,), (3,)}

    def test_lo_hi_shape_mismatch(self):
        with pytest.raises(ValueError):
            CellBoxSet("A", (4,), np.zeros((2, 1)), np.zeros((3, 1)))


class TestMergeBoxes:
    def test_merges_adjacent_on_one_axis(self):
        lo = np.array([[0, 0], [0, 3]])
        hi = np.array([[0, 2], [0, 5]])
        mlo, mhi = merge_boxes(lo, hi)
        assert mlo.shape[0] == 1
        assert mlo[0].tolist() == [0, 0] and mhi[0].tolist() == [0, 5]

    def test_does_not_over_cover(self):
        # boxes differing on both axes must not be hulled together
        lo = np.array([[0, 0], [1, 3]])
        hi = np.array([[0, 0], [1, 3]])
        mlo, mhi = merge_boxes(lo, hi)
        assert mlo.shape[0] == 2

    def test_overlapping_boxes(self):
        lo = np.array([[0], [2]])
        hi = np.array([[5], [8]])
        mlo, mhi = merge_boxes(lo, hi)
        assert mlo.shape[0] == 1
        assert (mlo[0, 0], mhi[0, 0]) == (0, 8)

    def test_duplicates_removed(self):
        lo = np.array([[1], [1]])
        hi = np.array([[4], [4]])
        mlo, _ = merge_boxes(lo, hi)
        assert mlo.shape[0] == 1


class TestThetaJoin:
    def test_backward_matches_reference(self):
        relation = aggregate_relation((6, 5), axis=1)
        table = compress(relation, key="output")
        cells = [(0,), (3,)]
        query = CellBoxSet.from_cells("B", relation.out_shape, cells)
        result = theta_join(query, table)
        assert result.to_cells() == relation.backward(cells)

    def test_forward_matches_reference(self):
        relation = aggregate_relation((6, 5), axis=1)
        table = compress(relation, key="input")
        cells = [(2, 3), (5, 0)]
        query = CellBoxSet.from_cells("A", relation.in_shape, cells)
        result = theta_join(query, table)
        assert result.to_cells() == relation.forward(cells)

    def test_wrong_array_name_raises(self):
        relation = elementwise_relation((4,))
        table = compress(relation)
        query = CellBoxSet.from_cells("C", (4,), [(0,)])
        with pytest.raises(ValueError):
            theta_join(query, table)

    def test_dimension_mismatch_raises(self):
        relation = aggregate_relation((4, 4), axis=1)
        table = compress(relation)
        query = CellBoxSet.from_cells("B", (4, 4), [(0, 0)])
        with pytest.raises(ValueError):
            theta_join(query, table)

    def test_empty_query(self):
        relation = elementwise_relation((4,))
        table = compress(relation)
        query = CellBoxSet.empty("B", (4,))
        assert theta_join(query, table).is_empty()

    def test_no_match(self):
        relation = LineageRelation.from_pairs([((0,), (0,))], (4,), (4,))
        table = compress(relation)
        query = CellBoxSet.from_cells("B", (4,), [(3,)])
        assert theta_join(query, table).is_empty()

    def test_merge_flag_only_affects_box_count(self):
        relation = aggregate_relation((8, 3), axis=1)
        table = compress(relation, key="input")
        query = CellBoxSet.from_cells("A", relation.in_shape, [(r, c) for r in range(8) for c in range(3)])
        merged = theta_join(query, table, merge=True)
        unmerged = theta_join(query, table, merge=False)
        assert merged.to_cells() == unmerged.to_cells()
        assert len(merged) <= len(unmerged)


def diagonal_relation(n, in_name="A", out_name="B"):
    """B(i) <- A(i, i): the backward table compresses to one row whose two
    value attributes both reference the same key attribute."""
    pairs = [((i,), (i, i)) for i in range(n)]
    return LineageRelation.from_pairs(pairs, (n,), (n, n), in_name=in_name, out_name=out_name)


class TestSharedRefExpansion:
    """Regression: diagonal lineage queried with a key *range* must stay a
    diagonal.  Interval rel_back on two value attributes that reference the
    same key attribute used to produce the full Cartesian box."""

    def test_diagonal_backward_range_query_exact(self):
        relation = diagonal_relation(6)
        table = compress(relation, key="output")
        assert table.shared_ref_mask is not None
        query = CellBoxSet.from_boxes("B", (6,), [[(1, 4)]])
        cells = sorted(query.to_cells())
        assert theta_join(query, table).to_cells() == relation.backward(cells)
        assert theta_join(query, table).to_cells() == {(i, i) for i in range(1, 5)}

    def test_diagonal_forward_unaffected(self):
        # forward table: diagonal (i, i) keys never form runs, each row's
        # single relative value stays on the exact vector path
        relation = diagonal_relation(5)
        table = compress(relation, key="input")
        query = CellBoxSet.from_boxes("A", (5, 5), [[(0, 4), (0, 4)]])
        cells = list(query.to_cells())
        assert theta_join(query, table).to_cells() == relation.forward(cells)

    def test_point_queries_unaffected(self):
        relation = diagonal_relation(6)
        table = compress(relation, key="output")
        for i in range(6):
            query = CellBoxSet.from_cells("B", (6,), [(i,)])
            assert theta_join(query, table).to_cells() == {(i, i)}

    def test_multi_hop_chain_through_diagonal(self):
        # the falsifying shape of the original bug: an aggregation hop
        # widens the query into a key range before it meets the diagonal
        diag = diagonal_relation(6, in_name="A", out_name="B")
        collapse = LineageRelation.from_pairs(
            [((0,), (i,)) for i in range(6)], (1,), (6,), in_name="B", out_name="C"
        )
        tables = [compress(collapse, key="output"), compress(diag, key="output")]
        query = CellBoxSet.from_cells("C", (1,), [(0,)])
        result = execute_path(tables, query)
        expected = query_path_reference([collapse, diag], ["backward", "backward"], [(0,)])
        assert result.to_cells() == expected
        assert result.to_cells() == {(i, i) for i in range(6)}

    def test_merge_flag_agrees(self):
        relation = diagonal_relation(7)
        table = compress(relation, key="output")
        query = CellBoxSet.from_boxes("B", (7,), [[(0, 6)]])
        assert (
            theta_join(query, table, merge=True).to_cells()
            == theta_join(query, table, merge=False).to_cells()
        )


class TestExecutePath:
    def make_chain(self):
        """A -> B (element-wise) -> C (sum over axis 1)."""
        r1 = elementwise_relation((6, 4), in_name="A", out_name="B")
        r2 = aggregate_relation((6, 4), axis=1, in_name="B", out_name="C")
        return r1, r2

    def test_forward_two_hops(self):
        r1, r2 = self.make_chain()
        tables = [compress(r1, key="input"), compress(r2, key="input")]
        cells = [(0, 0), (2, 3)]
        query = CellBoxSet.from_cells("A", (6, 4), cells)
        result = execute_path(tables, query)
        expected = query_path_reference([r1, r2], ["forward", "forward"], cells)
        assert result.to_cells() == expected

    def test_backward_two_hops(self):
        r1, r2 = self.make_chain()
        tables = [compress(r2, key="output"), compress(r1, key="output")]
        cells = [(1,), (4,)]
        query = CellBoxSet.from_cells("C", (6,), cells)
        result = execute_path(tables, query)
        expected = query_path_reference([r2, r1], ["backward", "backward"], cells)
        assert result.to_cells() == expected

    def test_hop_stats_recorded(self):
        r1, r2 = self.make_chain()
        tables = [compress(r1, key="input"), compress(r2, key="input")]
        query = CellBoxSet.from_cells("A", (6, 4), [(0, 0)])
        result = execute_path(tables, query)
        assert len(result.hops) == 2
        assert result.hops[0].array_from == "A"
        assert result.hops[1].array_to == "C"

    def test_empty_frontier_short_circuits(self):
        r1 = LineageRelation.from_pairs([((0,), (0,))], (4,), (4,), in_name="A", out_name="B")
        r2 = elementwise_relation((4,), in_name="B", out_name="C")
        tables = [compress(r1, key="input"), compress(r2, key="input")]
        query = CellBoxSet.from_cells("A", (4,), [(3,)])
        result = execute_path(tables, query)
        assert result.to_cells() == set()
        assert len(result.hops) == 1

    def test_no_merge_matches_merge(self):
        r1, r2 = self.make_chain()
        tables = [compress(r1, key="input"), compress(r2, key="input")]
        cells = [(r, c) for r in range(6) for c in range(4) if (r + c) % 2 == 0]
        query = CellBoxSet.from_cells("A", (6, 4), cells)
        with_merge = execute_path(tables, query, merge=True)
        without_merge = execute_path(tables, query, merge=False)
        assert with_merge.to_cells() == without_merge.to_cells()


# ----------------------------------------------------------------------
# property-based: in-situ queries agree with brute force
# ----------------------------------------------------------------------
@st.composite
def relation_and_query(draw):
    out_ndim = draw(st.integers(1, 2))
    in_ndim = draw(st.integers(1, 2))
    out_shape = tuple(draw(st.integers(1, 5)) for _ in range(out_ndim))
    in_shape = tuple(draw(st.integers(1, 5)) for _ in range(in_ndim))
    n_rows = draw(st.integers(0, 30))
    pairs = []
    for _ in range(n_rows):
        out_cell = tuple(draw(st.integers(0, d - 1)) for d in out_shape)
        in_cell = tuple(draw(st.integers(0, d - 1)) for d in in_shape)
        pairs.append((out_cell, in_cell))
    relation = LineageRelation.from_pairs(pairs, out_shape, in_shape)
    n_query = draw(st.integers(0, 6))
    out_cells = [
        tuple(draw(st.integers(0, d - 1)) for d in out_shape) for _ in range(n_query)
    ]
    in_cells = [
        tuple(draw(st.integers(0, d - 1)) for d in in_shape) for _ in range(n_query)
    ]
    return relation, out_cells, in_cells


class TestQueryProperties:
    @settings(max_examples=100, deadline=None)
    @given(relation_and_query())
    def test_backward_equals_reference(self, data):
        relation, out_cells, _ = data
        table = compress(relation, key="output")
        query = CellBoxSet.from_cells("B", relation.out_shape, out_cells)
        result = theta_join(query, table)
        assert result.to_cells() == relation.backward(out_cells)

    @settings(max_examples=100, deadline=None)
    @given(relation_and_query())
    def test_forward_equals_reference(self, data):
        relation, _, in_cells = data
        table = compress(relation, key="input")
        query = CellBoxSet.from_cells("A", relation.in_shape, in_cells)
        result = theta_join(query, table)
        assert result.to_cells() == relation.forward(in_cells)

    @settings(max_examples=50, deadline=None)
    @given(relation_and_query())
    def test_merge_never_changes_answer(self, data):
        relation, out_cells, _ = data
        table = compress(relation, key="output")
        query = CellBoxSet.from_cells("B", relation.out_shape, out_cells)
        merged = theta_join(query, table, merge=True)
        plain = theta_join(query, table, merge=False)
        assert merged.to_cells() == plain.to_cells()
