"""Round-trip and size tests for ProvRC serialization (ProvRC / ProvRC-GZip)."""

import numpy as np
import pytest

from repro.core.provrc import compress
from repro.core.relation import LineageRelation
from repro.core.serialize import (
    deserialize_compressed,
    deserialize_compressed_gzip,
    read_compressed,
    serialize_compressed,
    serialize_compressed_gzip,
    write_compressed,
)


def sample_table():
    pairs = [((i,), (i, j)) for i in range(50) for j in range(4)]
    relation = LineageRelation.from_pairs(pairs, (50,), (50, 4))
    return compress(relation), relation


class TestSerializationRoundTrip:
    def test_plain_roundtrip(self):
        table, relation = sample_table()
        restored = deserialize_compressed(serialize_compressed(table))
        assert restored.key_side == table.key_side
        assert restored.out_shape == table.out_shape
        assert restored.in_shape == table.in_shape
        assert restored.decompress() == relation

    def test_gzip_roundtrip(self):
        table, relation = sample_table()
        restored = deserialize_compressed_gzip(serialize_compressed_gzip(table))
        assert restored.decompress() == relation

    def test_axis_names_preserved(self):
        table, _ = sample_table()
        restored = deserialize_compressed(serialize_compressed(table))
        assert restored.out_axes == table.out_axes
        assert restored.in_axes == table.in_axes

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            deserialize_compressed(b"NOPE" + b"\x00" * 16)

    def test_empty_table(self):
        relation = LineageRelation((4,), (4,), np.empty((0, 2)))
        table = compress(relation)
        restored = deserialize_compressed(serialize_compressed(table))
        assert len(restored) == 0


class TestOnDisk:
    def test_write_read_plain(self, tmp_path):
        table, relation = sample_table()
        size = write_compressed(table, tmp_path / "t.provrc")
        assert size == (tmp_path / "t.provrc").stat().st_size
        assert read_compressed(tmp_path / "t.provrc").decompress() == relation

    def test_write_read_gzip_sniffed(self, tmp_path):
        table, relation = sample_table()
        write_compressed(table, tmp_path / "t.provrc.gz", gzip=True)
        assert read_compressed(tmp_path / "t.provrc.gz").decompress() == relation

    def test_compressed_is_much_smaller_than_raw(self, tmp_path):
        # A structured operation must compress far below the raw representation.
        pairs = [((i,), (i,)) for i in range(100_000)]
        relation = LineageRelation.from_pairs(pairs, (100_000,), (100_000,))
        table = compress(relation)
        size = write_compressed(table, tmp_path / "big.provrc")
        assert size < relation.nbytes_raw() / 1000
