"""Round-trip and size tests for ProvRC serialization (ProvRC / ProvRC-GZip),
including the zero-copy dtype-preservation contract: hydrated tables hold
read-only views at their stored narrow dtypes, re-serialize to identical
bytes, and answer queries bit-identically to their int64 originals."""

import json
import struct

import numpy as np
import pytest

from repro.core._reference import theta_join_reference
from repro.core.compressed import CompressedLineage
from repro.core.provrc import compress
from repro.core.query import CellBoxSet, theta_join
from repro.core.relation import LineageRelation
from repro.core.serialize import (
    _COLUMNS,
    _MAGIC,
    _minmax,
    _smallest_int_dtype,
    deserialize_compressed,
    deserialize_compressed_gzip,
    read_column_arrays,
    read_compressed,
    serialize_compressed,
    serialize_compressed_gzip,
    serialize_table,
    deserialize_table,
    write_compressed,
)


def sample_table():
    pairs = [((i,), (i, j)) for i in range(50) for j in range(4)]
    relation = LineageRelation.from_pairs(pairs, (50,), (50, 4))
    return compress(relation), relation


class TestSerializationRoundTrip:
    def test_plain_roundtrip(self):
        table, relation = sample_table()
        restored = deserialize_compressed(serialize_compressed(table))
        assert restored.key_side == table.key_side
        assert restored.out_shape == table.out_shape
        assert restored.in_shape == table.in_shape
        assert restored.decompress() == relation

    def test_gzip_roundtrip(self):
        table, relation = sample_table()
        restored = deserialize_compressed_gzip(serialize_compressed_gzip(table))
        assert restored.decompress() == relation

    def test_axis_names_preserved(self):
        table, _ = sample_table()
        restored = deserialize_compressed(serialize_compressed(table))
        assert restored.out_axes == table.out_axes
        assert restored.in_axes == table.in_axes

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            deserialize_compressed(b"NOPE" + b"\x00" * 16)

    def test_empty_table(self):
        relation = LineageRelation((4,), (4,), np.empty((0, 2)))
        table = compress(relation)
        restored = deserialize_compressed(serialize_compressed(table))
        assert len(restored) == 0


class TestOnDisk:
    def test_write_read_plain(self, tmp_path):
        table, relation = sample_table()
        size = write_compressed(table, tmp_path / "t.provrc")
        assert size == (tmp_path / "t.provrc").stat().st_size
        assert read_compressed(tmp_path / "t.provrc").decompress() == relation

    def test_write_read_gzip_sniffed(self, tmp_path):
        table, relation = sample_table()
        write_compressed(table, tmp_path / "t.provrc.gz", gzip=True)
        assert read_compressed(tmp_path / "t.provrc.gz").decompress() == relation

    def test_compressed_is_much_smaller_than_raw(self, tmp_path):
        # A structured operation must compress far below the raw representation.
        pairs = [((i,), (i,)) for i in range(100_000)]
        relation = LineageRelation.from_pairs(pairs, (100_000,), (100_000,))
        table = compress(relation)
        size = write_compressed(table, tmp_path / "big.provrc")
        assert size < relation.nbytes_raw() / 1000


def craft_stream(columns, header_overrides=None):
    """Hand-assemble a serialized-table byte stream (the wire format) so
    degenerate shapes the public constructor rejects can still be decoded."""
    header = {
        "key_side": "output",
        "out_name": "B",
        "in_name": "A",
        "out_shape": [4],
        "in_shape": [4],
        "out_axes": ["b1"],
        "in_axes": ["a1"],
        "columns": {},
    }
    if header_overrides:
        header.update(header_overrides)
    payload = bytearray()
    for name in _COLUMNS:
        arr = np.asarray(columns[name])
        # record the true shape first: ascontiguousarray promotes 0-d to 1-d
        header["columns"][name] = {"dtype": arr.dtype.str, "shape": list(arr.shape)}
        payload.extend(np.ascontiguousarray(arr).tobytes())
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _MAGIC + struct.pack("<I", len(header_bytes)) + header_bytes + bytes(payload)


class TestScalarShapedColumnRegression:
    def test_zero_dim_column_roundtrips_as_size_one(self):
        # Regression: ``count = prod(shape) if shape else 0`` decoded a 0-d
        # (scalar-shaped) column as size 0 — and then read every subsequent
        # column from a payload offset 8 bytes short.  The empty shape's
        # index space is the single empty tuple: its count is 1.
        values = {name: np.int64(10 + i) for i, name in enumerate(_COLUMNS)}
        data = craft_stream({name: np.asarray(v) for name, v in values.items()})
        _header, arrays = read_column_arrays(data)
        for i, name in enumerate(_COLUMNS):
            assert arrays[name].shape == ()
            assert arrays[name].size == 1
            # distinct per-column values prove the payload offsets advanced
            assert int(arrays[name]) == 10 + i

    def test_mixed_scalar_and_matrix_columns_keep_offsets_aligned(self):
        columns = {
            "key_lo": np.asarray(np.int32(-7)),
            "key_hi": np.array([[1, 2], [3, 4]], dtype=np.int16),
            "val_kind": np.asarray(np.int8(1)),
            "val_ref": np.array([[0]], dtype=np.int8),
            "val_lo": np.asarray(np.int64(2**40)),
            "val_hi": np.array([5, 6, 7], dtype=np.int8),
        }
        _header, arrays = read_column_arrays(craft_stream(columns))
        for name, expected in columns.items():
            assert arrays[name].dtype == expected.dtype
            assert np.array_equal(arrays[name], expected)


def _interval_table(magnitude, rows):
    """A backward 1-D table whose interval values reach ``magnitude - 1``
    (so the serializer must pick the matching dtype), mixing absolute and
    relative (delta) value encodings."""
    shape = (int(magnitude),)
    if rows == 0:
        empty = np.empty((0, 1), np.int64)
        return CompressedLineage(
            "output", "B", "A", shape, shape,
            key_lo=empty, key_hi=empty,
            val_kind=np.empty((0, 1), np.int8), val_ref=np.empty((0, 1), np.int16),
            val_lo=empty, val_hi=empty,
        )
    if rows == 1:
        points = np.array([[magnitude - 1]], dtype=np.int64)  # forces the dtype
    else:
        points = np.linspace(0, magnitude - 1, num=rows, dtype=np.int64).reshape(-1, 1)
    kind = np.zeros((rows, 1), np.int64)
    kind[1::2] = 1  # odd rows relative (delta 0 against key attribute 0)
    ref = np.where(kind == 1, 0, -1)
    val_lo = np.where(kind == 1, 0, points)
    return CompressedLineage(
        "output", "B", "A", shape, shape,
        key_lo=points, key_hi=points,
        val_kind=kind, val_ref=ref,
        val_lo=val_lo, val_hi=val_lo,
    )


MAGNITUDES = {
    np.int8: 100,
    np.int16: 30_000,
    np.int32: 2_000_000,
    np.int64: 2**40,
}
INTERVAL_COLUMNS = ("key_lo", "key_hi", "val_lo", "val_hi")


class TestDtypePreservation:
    """Hydration keeps the stored narrow dtypes: no ``astype(int64)``
    inflation, byte-stable re-serialization, identical query results."""

    @pytest.mark.parametrize("dtype", [np.int8, np.int16, np.int32, np.int64])
    @pytest.mark.parametrize("gzip", [False, True])
    @pytest.mark.parametrize("rows", [0, 1, 66_000])
    def test_roundtrip(self, dtype, gzip, rows):
        table = _interval_table(MAGNITUDES[dtype], rows)
        data = serialize_table(table, gzip=gzip)
        hydrated = deserialize_table(data)

        expected = np.dtype(np.int8 if rows == 0 else dtype)
        for name in INTERVAL_COLUMNS:
            column = getattr(hydrated, name)
            assert column.dtype == expected, name
            assert not column.flags.writeable  # views into the payload
            assert np.array_equal(column, getattr(table, name))
        assert hydrated.out_shape == table.out_shape
        assert hydrated.in_shape == table.in_shape

        # the narrow views are charged at their actual footprint
        assert hydrated.nbytes() <= table.nbytes()
        if rows and dtype is not np.int64:
            assert hydrated.nbytes() < table.nbytes()

        # byte-stable: re-serializing the hydrated table reproduces the
        # exact plain payload (no dtype drift between generations)
        assert serialize_compressed(hydrated) == serialize_compressed(table)

        if rows:
            # query results must be bit-identical between the int64
            # original and the narrow hydrated table, and match the oracle
            span = min(int(MAGNITUDES[dtype]) - 1, 50)
            query = CellBoxSet(
                "B", table.key_shape,
                np.array([[0]], np.int64), np.array([[span]], np.int64),
            )
            got = theta_join(query, hydrated)
            want = theta_join(query, table)
            oracle = theta_join_reference(query, hydrated)
            for a, b in ((got, want), (got, oracle)):
                assert np.array_equal(a.lo, b.lo)
                assert np.array_equal(a.hi, b.hi)
            assert got.lo.dtype == np.int64  # box sets stay canonical

    def test_gzip_roundtrip_still_narrow(self):
        table, _relation = sample_table()
        hydrated = deserialize_compressed_gzip(serialize_compressed_gzip(table))
        assert hydrated.key_lo.dtype == np.int8
        assert hydrated.decompress() == _relation

    def test_corrupt_val_ref_rejected_on_hydration(self):
        columns = {
            "key_lo": np.array([[0]], np.int8),
            "key_hi": np.array([[3]], np.int8),
            "val_kind": np.array([[1]], np.int8),
            "val_ref": np.array([[5]], np.int8),  # out of range for a 1-D key
            "val_lo": np.array([[0]], np.int8),
            "val_hi": np.array([[0]], np.int8),
        }
        with pytest.raises(ValueError, match="corrupt or foreign"):
            deserialize_compressed(craft_stream(columns))

    def test_relative_attr_with_negative_ref_rejected(self):
        # ref -1 is legal on absolute attributes (the serializer's filler)
        # but on a relative one it would silently gather the last key
        # column (negative fancy index wraps) — must be rejected up front
        columns = {
            "key_lo": np.array([[0]], np.int8),
            "key_hi": np.array([[3]], np.int8),
            "val_kind": np.array([[1]], np.int8),
            "val_ref": np.array([[-1]], np.int8),
            "val_lo": np.array([[0]], np.int8),
            "val_hi": np.array([[0]], np.int8),
        }
        with pytest.raises(ValueError, match="corrupt or foreign"):
            deserialize_compressed(craft_stream(columns))


class TestSmallestDtypeScan:
    def test_single_pass_minmax_matches_two_pass(self):
        rng = np.random.default_rng(7)
        # long enough to span several chunks, with the extremes buried
        # mid-stream so per-chunk reduction order matters
        arr = rng.integers(-1000, 1000, size=200_001)
        arr[123_456] = -(2**33)
        arr[171_717] = 2**35
        assert _minmax(arr) == (int(arr.min()), int(arr.max()))

    @pytest.mark.parametrize(
        "values,expected",
        [
            ([0, 127], np.int8),
            ([0, 128], np.int16),
            ([-129, 0], np.int16),
            ([0, 2**15 - 1], np.int16),
            ([0, 2**15], np.int32),
            ([0, 2**31 - 1], np.int32),
            ([-(2**31) - 1, 0], np.int64),
            ([0, 2**40], np.int64),
        ],
    )
    def test_boundaries(self, values, expected):
        assert _smallest_int_dtype(np.asarray(values, np.int64)) == np.dtype(expected)

    def test_empty_and_already_int8_skip_the_scan(self):
        assert _smallest_int_dtype(np.empty((0, 3), np.int64)) == np.dtype(np.int8)
        assert _smallest_int_dtype(np.array([1, 2], np.int8)) == np.dtype(np.int8)

    def test_narrow_input_serializes_without_widening(self):
        # already-narrow columns are written as-is (cast skipped): hydrating
        # and re-serializing is byte-stable, proven over a gzip round trip
        table, _ = sample_table()
        plain = serialize_compressed(table)
        hydrated = deserialize_compressed(plain)
        again = deserialize_compressed(serialize_compressed(hydrated))
        assert serialize_compressed(again) == plain


class TestSharedFraming:
    """The shared magic/struct framing helpers behind PRVC, DSEG, BLST and
    the RPC frame: uniform truncation/corruption errors for every format."""

    def test_frame_header_round_trip(self):
        from repro.core.serialize import frame_header, parse_header

        buf = frame_header(b"ABCD", "HIH", 7, 123456, 9) + b"payload"
        fields, offset = parse_header(buf, b"ABCD", "HIH", "test frame")
        assert fields == (7, 123456, 9)
        assert buf[offset:] == b"payload"

    def test_parse_header_truncated(self):
        from repro.core.serialize import frame_header, parse_header

        buf = frame_header(b"ABCD", "I", 42)
        with pytest.raises(ValueError, match="truncated test frame header"):
            parse_header(buf[:-1], b"ABCD", "I", "test frame")
        with pytest.raises(ValueError, match="truncated"):
            parse_header(b"", b"ABCD", "I", "test frame")

    def test_parse_header_bad_magic(self):
        from repro.core.serialize import frame_header, parse_header

        buf = frame_header(b"ABCD", "I", 42)
        with pytest.raises(ValueError, match="not a test frame"):
            parse_header(b"XXXX" + buf[4:], b"ABCD", "I", "test frame")

    def test_json_frame_round_trip(self):
        from repro.core.serialize import json_frame, parse_json_frame

        buf = json_frame(b"JSON", {"k": [1, 2], "n": "x"}, b"\x01\x02")
        header, offset = parse_json_frame(buf, b"JSON", "test frame")
        assert header == {"k": [1, 2], "n": "x"}
        assert buf[offset:] == b"\x01\x02"

    def test_json_frame_header_overruns_buffer(self):
        from repro.core.serialize import json_frame, parse_json_frame

        buf = json_frame(b"JSON", {"k": 1})
        with pytest.raises(ValueError, match="claims"):
            parse_json_frame(buf[:10], b"JSON", "test frame")

    def test_json_frame_corrupt_header(self):
        from repro.core.serialize import parse_json_frame

        garbage = b"JSON" + struct.pack("<I", 4) + b"{{{{"
        with pytest.raises(ValueError, match="corrupt test frame header"):
            parse_json_frame(garbage, b"JSON", "test frame")
        not_an_object = b"JSON" + struct.pack("<I", 2) + b"[]"
        with pytest.raises(ValueError, match="not a JSON object"):
            parse_json_frame(not_an_object, b"JSON", "test frame")

    def test_prvc_truncated_and_corrupt_through_shared_helpers(self):
        # the PRVC reader goes through the shared parser: the same error
        # taxonomy shows up at the table level
        table, _ = sample_table()
        data = serialize_compressed(table)
        with pytest.raises(ValueError, match="not a ProvRC serialized table"):
            deserialize_compressed(b"XXXX" + data[4:])
        with pytest.raises(ValueError):
            deserialize_compressed(data[:6])

    def test_segment_header_through_shared_helpers(self, tmp_path):
        from repro.storage.segments import SegmentWriter, iter_records

        path = tmp_path / "seg-000.seg"
        with SegmentWriter(path) as writer:
            writer.append(b"hello")
            writer.sync()
        raw = path.read_bytes()
        bad = tmp_path / "bad.seg"
        bad.write_bytes(b"XXXX" + raw[4:])
        with pytest.raises(ValueError, match="is not a DSLog segment file"):
            list(iter_records(bad))
