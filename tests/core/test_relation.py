"""Unit tests for the relational lineage model."""

import numpy as np
import pytest

from repro.core.relation import LineageRelation, default_axis_names


def axis_sum_relation():
    """Lineage of ``B = A.sum(axis=1)`` for a 3x2 array (paper Figure 1)."""
    pairs = []
    for row in range(3):
        for col in range(2):
            pairs.append(((row,), (row, col)))
    return LineageRelation.from_pairs(pairs, out_shape=(3,), in_shape=(3, 2))


class TestConstruction:
    def test_default_axis_names(self):
        assert default_axis_names("b", 2) == ("b1", "b2")

    def test_from_pairs_shapes(self):
        rel = axis_sum_relation()
        assert len(rel) == 6
        assert rel.out_ndim == 1 and rel.in_ndim == 2
        assert rel.attribute_names == ("b1", "a1", "a2")

    def test_from_capture(self):
        rel = LineageRelation.from_capture(
            capture=lambda out_cell: [(out_cell[0], col) for col in range(2)],
            out_shape=(3,),
            in_shape=(3, 2),
        )
        assert rel.as_set() == axis_sum_relation().as_set()

    def test_bad_column_count(self):
        with pytest.raises(ValueError):
            LineageRelation((3,), (3, 2), np.zeros((4, 2), dtype=np.int64))

    def test_empty_relation(self):
        rel = LineageRelation((3,), (3,), np.empty((0, 2)))
        assert len(rel) == 0
        assert rel.as_set() == set()

    def test_validate_bounds(self):
        rel = LineageRelation.from_pairs([((5,), (0, 0))], out_shape=(3,), in_shape=(3, 2))
        with pytest.raises(ValueError):
            rel.validate()

    def test_validate_ok(self):
        axis_sum_relation().validate()


class TestSemantics:
    def test_backward(self):
        rel = axis_sum_relation()
        assert rel.backward([(0,)]) == {(0, 0), (0, 1)}

    def test_forward(self):
        rel = axis_sum_relation()
        assert rel.forward([(2, 1)]) == {(2,)}

    def test_forward_multiple(self):
        rel = axis_sum_relation()
        assert rel.forward([(0, 0), (1, 1)]) == {(0,), (1,)}

    def test_inverted(self):
        rel = axis_sum_relation()
        inv = rel.inverted()
        assert inv.out_shape == rel.in_shape
        assert inv.backward([(0, 1)]) == {(0,)}

    def test_deduplicated(self):
        pairs = [((0,), (0, 0)), ((0,), (0, 0))]
        rel = LineageRelation.from_pairs(pairs, out_shape=(1,), in_shape=(1, 1))
        assert len(rel.deduplicated()) == 1

    def test_sorted_is_lexicographic(self):
        rel = LineageRelation.from_pairs(
            [((1,), (1, 0)), ((0,), (0, 1)), ((0,), (0, 0))],
            out_shape=(2,),
            in_shape=(2, 2),
        ).sorted()
        assert [tuple(r) for r in rel.rows] == [(0, 0, 0), (0, 0, 1), (1, 1, 0)]

    def test_equality_is_set_semantics(self):
        a = LineageRelation.from_pairs([((0,), (0,)), ((1,), (1,))], (2,), (2,))
        b = LineageRelation.from_pairs([((1,), (1,)), ((0,), (0,))], (2,), (2,))
        assert a == b

    def test_iteration(self):
        rel = axis_sum_relation()
        pairs = list(rel)
        assert ((0,), (0, 0)) in pairs
        assert len(pairs) == 6


class TestSizeAccounting:
    def test_nbytes_raw(self):
        rel = axis_sum_relation()
        assert rel.nbytes_raw() == 6 * 3 * 8

    def test_csv_bytes_header_and_rows(self):
        data = axis_sum_relation().to_csv_bytes().decode()
        lines = data.strip().split("\n")
        assert lines[0] == "b1,a1,a2"
        assert len(lines) == 7
