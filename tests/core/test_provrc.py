"""Correctness tests for the ProvRC compression algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compressed import KIND_ABS, KIND_REL
from repro.core.provrc import ProvRCStats, compress, compress_both
from repro.core.relation import LineageRelation


# ----------------------------------------------------------------------
# structured lineage generators (mirroring the Table VII operations)
# ----------------------------------------------------------------------
def elementwise_relation(shape):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape)


def aggregate_axis_relation(shape, axis):
    out_shape = tuple(d for i, d in enumerate(shape) if i != axis)
    pairs = []
    for in_cell in np.ndindex(*shape):
        out_cell = tuple(v for i, v in enumerate(in_cell) if i != axis)
        pairs.append((out_cell, in_cell))
    return LineageRelation.from_pairs(pairs, out_shape, shape)


def repetition_relation(n, reps):
    pairs = [((r * n + i,), (i,)) for r in range(reps) for i in range(n)]
    return LineageRelation.from_pairs(pairs, (n * reps,), (n,))


def matvec_relation(rows, cols):
    """Lineage of y = M @ x between M (rows x cols) and y (rows)."""
    pairs = [((r,), (r, c)) for r in range(rows) for c in range(cols)]
    return LineageRelation.from_pairs(pairs, (rows,), (rows, cols))


def permutation_relation(n, seed=0):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    pairs = [((i,), (int(perm[i]),)) for i in range(n)]
    return LineageRelation.from_pairs(pairs, (n,), (n,))


class TestStructuredPatterns:
    def test_elementwise_collapses_to_one_row(self):
        relation = elementwise_relation((20, 15))
        table = compress(relation)
        assert len(table) == 1
        assert table.decompress() == relation

    def test_aggregate_collapses_to_one_row(self):
        relation = aggregate_axis_relation((10, 6), axis=1)
        table = compress(relation)
        assert len(table) == 1
        assert table.decompress() == relation

    def test_full_aggregate_2d(self):
        relation = aggregate_axis_relation((8, 8), axis=0)
        table = compress(relation)
        assert table.decompress() == relation
        assert len(table) <= 8

    def test_repetition(self):
        relation = repetition_relation(16, 4)
        table = compress(relation)
        assert table.decompress() == relation
        assert len(table) <= 4

    def test_matvec(self):
        relation = matvec_relation(12, 7)
        table = compress(relation)
        assert len(table) == 1
        assert table.decompress() == relation

    def test_permutation_worst_case_is_lossless(self):
        relation = permutation_relation(64)
        table = compress(relation)
        assert table.decompress() == relation
        # Sort-like lineage has no contiguous structure: almost no compression.
        assert len(table) > 32

    def test_stats_collected(self):
        stats = ProvRCStats()
        compress(elementwise_relation((30,)), stats=stats)
        assert stats.input_rows == 30
        assert stats.after_key_pass == 1
        assert stats.as_dict()["after_value_pass"] == 30

    def test_compress_both_orientations(self):
        relation = aggregate_axis_relation((6, 4), axis=1)
        backward, forward = compress_both(relation)
        assert backward.key_side == "output"
        assert forward.key_side == "input"
        assert backward.decompress() == relation
        assert forward.decompress() == relation


class TestEdgeCases:
    def test_empty_relation(self):
        relation = LineageRelation((4,), (4,), np.empty((0, 2)))
        table = compress(relation)
        assert len(table) == 0
        assert table.decompress() == relation

    def test_single_row(self):
        relation = LineageRelation.from_pairs([((2,), (3,))], (5,), (5,))
        table = compress(relation)
        assert len(table) == 1
        assert table.decompress() == relation

    def test_duplicate_rows_are_set_semantics(self):
        relation = LineageRelation.from_pairs(
            [((0,), (1,)), ((0,), (1,)), ((1,), (2,))], (3,), (3,)
        )
        table = compress(relation)
        assert table.decompress() == relation.deduplicated()

    def test_invalid_key_side(self):
        with pytest.raises(ValueError):
            compress(elementwise_relation((4,)), key="sideways")

    def test_scalar_arrays_rejected(self):
        relation = LineageRelation((), (3,), np.empty((0, 1)))
        with pytest.raises(ValueError):
            compress(relation)

    def test_negative_like_offsets(self):
        # Shifted one-to-one lineage (e.g. roll): delta is non-zero but constant.
        pairs = [((i,), ((i + 3) % 10,)) for i in range(10)]
        relation = LineageRelation.from_pairs(pairs, (10,), (10,))
        table = compress(relation)
        assert table.decompress() == relation
        # two runs: the wrapped prefix and the shifted suffix
        assert len(table) <= 3

    def test_relative_disabled_still_lossless(self):
        relation = elementwise_relation((9, 4))
        table = compress(relation, relative=False)
        assert table.decompress() == relation
        assert len(table) > 1  # without deltas the element-wise pattern cannot collapse


# ----------------------------------------------------------------------
# property-based losslessness
# ----------------------------------------------------------------------
def relation_strategy(max_out=5, max_in=5, max_rows=40, max_dims=2):
    @st.composite
    def build(draw):
        out_ndim = draw(st.integers(1, max_dims))
        in_ndim = draw(st.integers(1, max_dims))
        out_shape = tuple(draw(st.integers(1, max_out)) for _ in range(out_ndim))
        in_shape = tuple(draw(st.integers(1, max_in)) for _ in range(in_ndim))
        n_rows = draw(st.integers(0, max_rows))
        pairs = []
        for _ in range(n_rows):
            out_cell = tuple(draw(st.integers(0, d - 1)) for d in out_shape)
            in_cell = tuple(draw(st.integers(0, d - 1)) for d in in_shape)
            pairs.append((out_cell, in_cell))
        return LineageRelation.from_pairs(pairs, out_shape, in_shape)

    return build()


class TestLosslessnessProperties:
    @settings(max_examples=120, deadline=None)
    @given(relation_strategy())
    def test_backward_roundtrip(self, relation):
        table = compress(relation, key="output")
        assert table.decompress() == relation.deduplicated()

    @settings(max_examples=120, deadline=None)
    @given(relation_strategy())
    def test_forward_roundtrip(self, relation):
        table = compress(relation, key="input")
        assert table.decompress() == relation.deduplicated()

    @settings(max_examples=60, deadline=None)
    @given(relation_strategy())
    def test_roundtrip_without_relative_transform(self, relation):
        table = compress(relation, relative=False)
        assert table.decompress() == relation.deduplicated()

    @settings(max_examples=60, deadline=None)
    @given(relation_strategy())
    def test_compression_never_exceeds_input_rows(self, relation):
        table = compress(relation)
        assert len(table) <= max(len(relation.deduplicated()), 0) or len(relation) == 0

    @settings(max_examples=60, deadline=None)
    @given(relation_strategy(max_out=4, max_in=4, max_rows=25))
    def test_relative_rows_reference_valid_keys(self, relation):
        table = compress(relation)
        for row in table.rows():
            for value in row.values:
                if value.kind == KIND_REL:
                    assert 0 <= value.ref < len(row.key)
                else:
                    assert value.kind == KIND_ABS
