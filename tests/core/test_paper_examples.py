"""The paper's worked examples (Tables I-VI, Figures 1-6), pinned exactly.

Indices here are 0-based while the paper's figures are 1-based; the
structure (number of compressed rows, which attributes become relative,
which become ranges) is identical.
"""


from repro.core.compressed import KIND_ABS, KIND_REL
from repro.core.provrc import compress
from repro.core.query import CellBoxSet, execute_path, theta_join
from repro.core.relation import LineageRelation


def axis_sum_relation():
    """Figure 1: B = numpy.sum(A, axis=1) over a 3x2 array."""
    pairs = []
    for row in range(3):
        for col in range(2):
            pairs.append(((row,), (row, col)))
    return LineageRelation.from_pairs(pairs, out_shape=(3,), in_shape=(3, 2))


def full_aggregate_relation(n=4):
    """Figure 2/6: every input cell of a 1-D array contributes to one output cell."""
    pairs = [((0,), (i,)) for i in range(n)]
    return LineageRelation.from_pairs(pairs, out_shape=(1,), in_shape=(n,))


def one_to_one_relation(n=2):
    """Figure 3/5: an element-wise operation over a length-n array."""
    pairs = [((i,), (i,)) for i in range(n)]
    return LineageRelation.from_pairs(pairs, out_shape=(n,), in_shape=(n,))


class TestTableI_MultiAttributeRangeEncoding:
    """Step 1 collapses the 6-row axis-sum lineage to 3 rows (Table I)."""

    def test_row_count_after_compression(self):
        table = compress(axis_sum_relation())
        # Step 1 gives 3 rows (Table I); step 2 collapses them to one (Table II).
        assert len(table) == 1

    def test_step1_only_structure(self):
        # Disabling the relative transformation leaves exactly the Table I shape:
        # three rows, each with a2 encoded as the full range [0, 1].
        table = compress(axis_sum_relation(), relative=False)
        assert len(table) == 3
        for row in table.rows():
            a1, a2 = row.values
            assert a1.kind == KIND_ABS and a1.interval.is_point
            assert a2.kind == KIND_ABS
            assert (a2.interval.lo, a2.interval.hi) == (0, 1)


class TestTableII_RelativeTransformation:
    """Step 2 collapses the axis-sum lineage to a single row (Table II)."""

    def test_final_single_row(self):
        table = compress(axis_sum_relation())
        assert len(table) == 1
        row = table.row(0)
        # b1 spans all three output rows
        assert (row.key[0].lo, row.key[0].hi) == (0, 2)
        a1, a2 = row.values
        # a1 is stored relative to b1 with delta 0 (a1 = b1)
        assert a1.kind == KIND_REL and a1.ref == 0
        assert (a1.interval.lo, a1.interval.hi) == (0, 0)
        # a2 keeps its absolute range [0, 1]
        assert a2.kind == KIND_ABS
        assert (a2.interval.lo, a2.interval.hi) == (0, 1)

    def test_lossless(self):
        relation = axis_sum_relation()
        assert compress(relation).decompress() == relation


class TestTableIII_ForwardRepresentation:
    """The forward table keeps input attributes absolute (Table III)."""

    def test_forward_table_structure(self):
        table = compress(axis_sum_relation(), key="input")
        assert table.key_side == "input"
        assert len(table) == 1
        row = table.row(0)
        # keys are (a1, a2): a1 spans [0,2], a2 spans [0,1]
        assert (row.key[0].lo, row.key[0].hi) == (0, 2)
        assert (row.key[1].lo, row.key[1].hi) == (0, 1)
        # b1 is relative to a1 with delta 0
        b1 = row.values[0]
        assert b1.kind == KIND_REL and b1.ref == 0
        assert (b1.interval.lo, b1.interval.hi) == (0, 0)

    def test_forward_table_lossless(self):
        relation = axis_sum_relation()
        assert compress(relation, key="input").decompress() == relation


class TestFigure2_AggregatePattern:
    def test_single_row_with_full_range(self):
        table = compress(full_aggregate_relation(4))
        assert len(table) == 1
        row = table.row(0)
        assert (row.key[0].lo, row.key[0].hi) == (0, 0)
        value = row.values[0]
        assert value.kind == KIND_ABS
        assert (value.interval.lo, value.interval.hi) == (0, 3)


class TestFigure3_OneToOnePattern:
    def test_single_row_with_zero_delta(self):
        table = compress(one_to_one_relation(2))
        assert len(table) == 1
        row = table.row(0)
        assert (row.key[0].lo, row.key[0].hi) == (0, 1)
        value = row.values[0]
        assert value.kind == KIND_REL and value.ref == 0
        assert (value.interval.lo, value.interval.hi) == (0, 0)


class TestTableIV_to_VI_QueryExample:
    """The running backward-query example over the axis-sum lineage."""

    def test_backward_query_rows_0_and_1(self):
        # Query: cells with b1 in {0, 1} (paper's b1 = 1, 2).
        table = compress(axis_sum_relation())
        query = CellBoxSet.from_boxes("B", (3,), [[(0, 1)]])
        result = theta_join(query, table)
        # Table VI: a1 in [0,1] (paper [1,2]), a2 in [0,1] (paper [1,2]).
        assert result.to_cells() == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_full_backward_query(self):
        table = compress(axis_sum_relation())
        query = CellBoxSet.from_boxes("B", (3,), [[(0, 2)]])
        result = theta_join(query, table)
        assert result.to_cells() == axis_sum_relation().backward([(0,), (1,), (2,)])

    def test_figure4_range_join_aggregate(self):
        # Figure 4: all-to-all lineage [0,1] -> [0,2]; query output cells (0,1).
        pairs = [((b,), (a,)) for b in range(3) for a in range(2)]
        relation = LineageRelation.from_pairs(pairs, out_shape=(3,), in_shape=(2,))
        table = compress(relation)
        query = CellBoxSet.from_boxes("B", (3,), [[(0, 1)]])
        result = theta_join(query, table)
        assert result.to_cells() == {(0,), (1,)}

    def test_figure5_relative_range_join(self):
        # Figure 5: one-to-one lineage over a length-3 array, query cells (0,1).
        relation = one_to_one_relation(3)
        table = compress(relation)
        query = CellBoxSet.from_boxes("B", (3,), [[(0, 1)]])
        result = theta_join(query, table)
        assert result.to_cells() == {(0,), (1,)}

    def test_execute_path_single_hop(self):
        table = compress(axis_sum_relation())
        query = CellBoxSet.from_boxes("B", (3,), [[(0, 1)]])
        result = execute_path([table], query)
        assert result.to_cells() == {(0, 0), (0, 1), (1, 0), (1, 1)}
        assert len(result.hops) == 1
        assert result.hops[0].rows_scanned == 1
