"""Equivalence of the vectorized kernels with the loop oracles.

The vectorized θ-join, segmented box merge and ProvRC key-pass run scan in
:mod:`repro.core.query` / :mod:`repro.core.provrc` must reproduce the
original per-row loop implementations (kept in :mod:`repro.core._reference`)
*exactly* — same rows, same order, same dtypes — on randomized 1-D/2-D/3-D
relations, including relative encodings, out-of-bounds queries and empty
results.  Seeded numpy generators keep every run reproducible.
"""

import numpy as np
import pytest

from repro.core._reference import (
    execute_path_batch_reference,
    key_range_pass_reference,
    merge_boxes_batch_reference,
    merge_boxes_reference,
    theta_join_batch_reference,
    theta_join_reference,
)
from repro.core.compressed import KIND_REL
from repro.core.provrc import _key_range_pass, _value_range_pass, compress
from repro.core.query import (
    THETA_JOIN_BLOCK_BUDGET_BYTES,
    CellBoxSet,
    execute_path_batch,
    merge_boxes,
    merge_boxes_batch,
    theta_join,
    theta_join_batch,
)
from repro.core.relation import LineageRelation

SEEDS = [0, 1, 2, 3, 4]


def random_relation(rng, max_ndim=3, max_dim=6, max_rows=60):
    out_ndim = int(rng.integers(1, max_ndim + 1))
    in_ndim = int(rng.integers(1, max_ndim + 1))
    out_shape = tuple(int(rng.integers(1, max_dim)) for _ in range(out_ndim))
    in_shape = tuple(int(rng.integers(1, max_dim)) for _ in range(in_ndim))
    n = int(rng.integers(0, max_rows))
    pairs = []
    for _ in range(n):
        out_cell = tuple(int(rng.integers(0, d)) for d in out_shape)
        in_cell = tuple(int(rng.integers(0, d)) for d in in_shape)
        pairs.append((out_cell, in_cell))
    return LineageRelation.from_pairs(pairs, out_shape, in_shape)


def random_boxes(rng, ndim, n, coord_range=12, max_extent=4):
    lo = rng.integers(0, coord_range, size=(n, ndim)).astype(np.int64)
    hi = lo + rng.integers(0, max_extent + 1, size=(n, ndim)).astype(np.int64)
    return lo, hi


def assert_box_sets_identical(result, oracle):
    assert result.array_name == oracle.array_name
    assert result.shape == oracle.shape
    assert np.array_equal(result.lo, oracle.lo)
    assert np.array_equal(result.hi, oracle.hi)


class TestMergeBoxesEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_boxes_match_oracle(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(80):
            ndim = int(rng.integers(1, 4))
            n = int(rng.integers(0, 50))
            lo, hi = random_boxes(rng, ndim, n)
            got = merge_boxes(lo, hi)
            want = merge_boxes_reference(lo, hi)
            assert np.array_equal(got[0], want[0])
            assert np.array_equal(got[1], want[1])

    def test_empty_input(self):
        lo = np.empty((0, 2), np.int64)
        got = merge_boxes(lo, lo)
        assert got[0].shape == (0, 2)

    def test_heavily_overlapping_single_group(self):
        # one long chain of touching intervals must collapse to one box
        starts = np.arange(0, 3000, 3)[:, None]
        lo = starts.astype(np.int64)
        hi = lo + 3  # touches the next interval
        mlo, mhi = merge_boxes(lo, hi)
        assert mlo.shape[0] == 1
        assert (int(mlo[0, 0]), int(mhi[0, 0])) == (0, 3000)
        ref = merge_boxes_reference(lo, hi)
        assert np.array_equal(mlo, ref[0]) and np.array_equal(mhi, ref[1])


class TestThetaJoinEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("key", ["output", "input"])
    @pytest.mark.parametrize("merge", [True, False])
    def test_random_relations_match_oracle(self, seed, key, merge):
        rng = np.random.default_rng(seed)
        for _ in range(30):
            relation = random_relation(rng)
            table = compress(relation, key=key)
            shape = relation.out_shape if key == "output" else relation.in_shape
            name = relation.out_name if key == "output" else relation.in_name
            n_boxes = int(rng.integers(0, 8))
            lo, hi = random_boxes(rng, len(shape), n_boxes, coord_range=max(shape), max_extent=2)
            query = CellBoxSet(name, shape, lo, hi)
            got = theta_join(query, table, merge=merge)
            want = theta_join_reference(query, table, merge=merge)
            assert_box_sets_identical(got, want)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_relative_encoding_round_trip(self, seed):
        # elementwise lineage compresses to relative rows; the join must
        # de-relativize them identically to the oracle's per-axis loop
        rng = np.random.default_rng(seed)
        shape = (int(rng.integers(4, 40)),) * 2
        pairs = [(cell, cell) for cell in np.ndindex(*shape)]
        relation = LineageRelation.from_pairs(pairs, shape, shape)
        table = compress(relation, key="output")
        assert (table.val_kind == KIND_REL).any()
        cells = [
            tuple(int(rng.integers(0, d)) for d in shape) for _ in range(10)
        ]
        query = CellBoxSet.from_cells(relation.out_name, shape, cells)
        got = theta_join(query, table)
        want = theta_join_reference(query, table)
        assert_box_sets_identical(got, want)
        assert got.to_cells() == relation.backward(cells)

    def test_empty_query_and_empty_table(self):
        relation = random_relation(np.random.default_rng(0))
        table = compress(relation, key="output")
        empty = CellBoxSet.empty(relation.out_name, relation.out_shape)
        assert theta_join(empty, table).is_empty()

        no_rows = LineageRelation.from_pairs([], (4,), (4,))
        empty_table = compress(no_rows, key="output")
        query = CellBoxSet.from_cells(no_rows.out_name, (4,), [(1,)])
        assert theta_join(query, empty_table).is_empty()

    def test_no_match_returns_empty(self):
        relation = LineageRelation.from_pairs([((0,), (0,))], (8,), (8,))
        table = compress(relation, key="output")
        query = CellBoxSet.from_cells(relation.out_name, (8,), [(7,)])
        got = theta_join(query, table)
        want = theta_join_reference(query, table)
        assert got.is_empty() and want.is_empty()

    def test_blocked_join_matches_single_block(self, monkeypatch):
        # force a tiny block budget so a moderate query spans many blocks,
        # then check the result is identical to the unblocked oracle
        import repro.core.query as query_mod

        rng = np.random.default_rng(11)
        relation = random_relation(rng, max_ndim=2, max_dim=8, max_rows=120)
        table = compress(relation, key="output")
        shape = relation.out_shape
        lo, hi = random_boxes(rng, len(shape), 64, coord_range=max(shape), max_extent=1)
        query = CellBoxSet(relation.out_name, shape, lo, hi)

        stats = {}
        monkeypatch.setattr(query_mod, "THETA_JOIN_BLOCK_BUDGET_BYTES", 256)
        got = query_mod.theta_join(query, table, merge=False, stats=stats)
        monkeypatch.undo()
        want = theta_join_reference(query, table, merge=False)
        assert_box_sets_identical(got, want)
        if len(table) and len(query):
            assert stats["join_blocks"] > 1

    def test_block_stats_reported(self):
        relation = random_relation(np.random.default_rng(3))
        table = compress(relation, key="output")
        query = CellBoxSet.from_cells(
            relation.out_name, relation.out_shape, [tuple(0 for _ in relation.out_shape)]
        )
        stats = {}
        theta_join(query, table, stats=stats)
        assert stats["join_blocks"] == (1 if len(table) else 0)


class TestKeyRangePassEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("key", ["output", "input"])
    @pytest.mark.parametrize("relative", [True, False])
    def test_random_relations_match_oracle(self, seed, key, relative):
        rng = np.random.default_rng(seed)
        for _ in range(25):
            relation = random_relation(rng).deduplicated()
            l = relation.out_ndim
            if key == "output":
                key_cols, val_cols = relation.rows[:, :l], relation.rows[:, l:]
            else:
                key_cols, val_cols = relation.rows[:, l:], relation.rows[:, :l]
            klo, khi, vlo, vhi = _value_range_pass(key_cols, val_cols)
            vkind = np.zeros(vlo.shape, dtype=np.int8)
            vref = np.full(vlo.shape, -1, dtype=np.int16)
            args = (klo, khi, vkind, vref, vlo, vhi)
            got = _key_range_pass(*(a.copy() for a in args), relative=relative)
            want = key_range_pass_reference(*(a.copy() for a in args), relative=relative)
            for g, w in zip(got, want):
                assert np.array_equal(g, w)
                assert g.dtype == w.dtype

    @pytest.mark.parametrize("seed", SEEDS)
    def test_compress_decompress_round_trip(self, seed):
        rng = np.random.default_rng(seed + 100)
        for _ in range(10):
            relation = random_relation(rng)
            for key in ("output", "input"):
                table = compress(relation, key=key)
                restored = table.decompress()
                assert restored.rows.tolist() == relation.deduplicated().rows.tolist()

    def test_empty_relation(self):
        relation = LineageRelation.from_pairs([], (3, 3), (3,))
        table = compress(relation, key="output")
        assert len(table) == 0
        assert table.decompress().rows.shape[0] == 0

    def test_structured_lineage_collapses_to_single_row(self):
        pairs = [((i,), (i,)) for i in range(5000)]
        relation = LineageRelation.from_pairs(pairs, (5000,), (5000,))
        assert len(compress(relation)) == 1
        assert len(compress(relation, relative=False)) == 5000


class TestNarrowDtypeEquivalence:
    """Hydrated (narrow-dtype) tables must answer every kernel identically
    to their int64 originals AND to the loop oracles — the zero-copy fast
    path must not change a single output bit."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("key", ["output", "input"])
    def test_theta_join_on_hydrated_tables(self, seed, key):
        from repro.core.serialize import deserialize_compressed, serialize_compressed

        rng = np.random.default_rng(seed + 1000)
        narrow_seen = False
        for _ in range(25):
            relation = random_relation(rng)
            table = compress(relation, key=key)
            hydrated = deserialize_compressed(serialize_compressed(table))
            if len(table) and hydrated.key_lo.dtype != np.int64:
                narrow_seen = True
            shape = relation.out_shape if key == "output" else relation.in_shape
            name = relation.out_name if key == "output" else relation.in_name
            n_boxes = int(rng.integers(0, 8))
            lo, hi = random_boxes(rng, len(shape), n_boxes, coord_range=max(shape), max_extent=2)
            query = CellBoxSet(name, shape, lo, hi)
            got = theta_join(query, hydrated)
            want_int64 = theta_join(query, table)
            oracle = theta_join_reference(query, hydrated)
            for other in (want_int64, oracle):
                assert_box_sets_identical(got, other)
            assert got.lo.dtype == np.int64  # box sets stay canonical int64
        assert narrow_seen, "the hydration path never produced a narrow table"

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("relative", [True, False])
    def test_key_range_pass_on_narrow_columns(self, seed, relative):
        # feed the run scan int8 columns directly: output values must match
        # the oracle run on the same narrow inputs AND the int64 run
        rng = np.random.default_rng(seed + 2000)
        for _ in range(25):
            relation = random_relation(rng).deduplicated()
            l = relation.out_ndim
            key_cols, val_cols = relation.rows[:, :l], relation.rows[:, l:]
            klo, khi, vlo, vhi = _value_range_pass(
                key_cols.astype(np.int8), val_cols.astype(np.int8)
            )
            assert klo.dtype == np.int8  # the value pass preserved the width
            vkind = np.zeros(vlo.shape, dtype=np.int8)
            vref = np.full(vlo.shape, -1, dtype=np.int16)
            args = (klo, khi, vkind, vref, vlo, vhi)
            got = _key_range_pass(*(a.copy() for a in args), relative=relative)
            want = key_range_pass_reference(*(a.copy() for a in args), relative=relative)
            wide = _key_range_pass(
                *(a.astype(np.int64) for a in args[:2]),
                args[2].copy(),
                args[3].copy(),
                *(a.astype(np.int64) for a in args[4:]),
                relative=relative,
            )
            for g, w, x in zip(got, want, wide):
                assert np.array_equal(g, w)
                assert g.dtype == w.dtype
                assert np.array_equal(g, x)

    def test_narrow_contiguity_probe_does_not_wrap(self):
        # two int8 runs meeting exactly at the dtype ceiling: ``hi + 1``
        # wraps to -128 in int8, which would break the merge either way
        # (false merge or missed merge); the int64 probe must see 126|127
        # as contiguous and merge them
        klo = np.array([[126], [127]], dtype=np.int8)
        khi = np.array([[126], [127]], dtype=np.int8)
        vkind = np.zeros((2, 1), dtype=np.int8)
        vref = np.full((2, 1), -1, dtype=np.int16)
        vlo = np.zeros((2, 1), dtype=np.int8)
        vhi = np.zeros((2, 1), dtype=np.int8)
        got = _key_range_pass(klo, khi, vkind, vref, vlo, vhi, relative=True)
        assert got[0].shape[0] == 1
        assert int(got[0][0, 0]) == 126 and int(got[1][0, 0]) == 127

    @pytest.mark.parametrize("seed", SEEDS)
    def test_merge_boxes_on_narrow_inputs(self, seed):
        rng = np.random.default_rng(seed + 3000)
        for _ in range(40):
            ndim = int(rng.integers(1, 4))
            n = int(rng.integers(0, 40))
            lo, hi = random_boxes(rng, ndim, n)
            got = merge_boxes(lo.astype(np.int8), hi.astype(np.int8))
            want = merge_boxes_reference(lo, hi)
            assert np.array_equal(got[0], want[0])
            assert np.array_equal(got[1], want[1])


class TestCountCells:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_mask_count(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(60):
            ndim = int(rng.integers(1, 4))
            shape = tuple(int(rng.integers(2, 10)) for _ in range(ndim))
            n = int(rng.integers(0, 30))
            lo = np.stack(
                [rng.integers(0, shape[d], size=n) for d in range(ndim)], axis=1
            ).astype(np.int64) if n else np.empty((0, ndim), np.int64)
            hi = np.minimum(
                lo + rng.integers(0, 4, size=(n, ndim)), np.asarray(shape) - 1
            ).astype(np.int64) if n else lo
            box_set = CellBoxSet("A", shape, lo, hi)
            assert box_set.count_cells() == int(box_set.to_mask().sum())

    def test_large_sparse_boxes_never_materialize_mask(self):
        # 1e12-cell array: the old mask/cell-set fallbacks would be unusable
        shape = (1_000_000, 1_000_000)
        box_set = CellBoxSet.from_boxes(
            "A",
            shape,
            [
                [(0, 999_999), (0, 0)],  # full first column
                [(0, 0), (0, 999_999)],  # full first row (overlaps in (0, 0))
                [(500, 600), (500, 600)],  # interior block
            ],
        )
        assert box_set.count_cells() == 1_000_000 + 1_000_000 - 1 + 101 * 101


class TestFromCells:
    def test_out_of_bounds_cells_dropped_on_construction(self):
        box_set = CellBoxSet.from_cells("A", (4, 4), [(-1, 0), (1, 1), (4, 0), (2, 7)])
        assert box_set.to_cells() == {(1, 1)}

    def test_all_out_of_bounds_gives_empty(self):
        box_set = CellBoxSet.from_cells("A", (4,), [(-3,), (9,)])
        assert box_set.is_empty()

    def test_accepts_ndarray_input(self):
        cells = np.array([[0, 0], [0, 1], [0, 2]])
        box_set = CellBoxSet.from_cells("A", (4, 4), cells)
        assert len(box_set) == 1
        assert box_set.count_cells() == 3

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError):
            CellBoxSet.from_cells("A", (4, 4), [(1, 2, 3)])


# ----------------------------------------------------------------------
# batched kernels vs the loop-over-queries oracles
# ----------------------------------------------------------------------
def random_chain(rng, max_hops=3, max_dim=6, max_rows=50):
    """A chain of compressed hop tables n0 -> n1 -> ... plus n0's shape."""
    hops = int(rng.integers(1, max_hops + 1))
    ndims = [int(rng.integers(1, 3)) for _ in range(hops + 1)]
    shapes = [
        tuple(int(rng.integers(1, max_dim)) for _ in range(nd)) for nd in ndims
    ]
    tables = []
    for k in range(hops):
        n = int(rng.integers(0, max_rows))
        pairs = []
        for _ in range(n):
            out_cell = tuple(int(rng.integers(0, d)) for d in shapes[k])
            in_cell = tuple(int(rng.integers(0, d)) for d in shapes[k + 1])
            pairs.append((out_cell, in_cell))
        relation = LineageRelation.from_pairs(
            pairs, shapes[k], shapes[k + 1], out_name=f"n{k}", in_name=f"n{k + 1}"
        )
        tables.append(compress(relation, key="output"))
    return tables, shapes[0]


def random_query_batch(rng, name, shape, max_queries=8, max_boxes=4):
    n_queries = int(rng.integers(0, max_queries + 1))
    queries = []
    for _ in range(n_queries):
        n_boxes = int(rng.integers(0, max_boxes + 1))
        lo, hi = random_boxes(rng, len(shape), n_boxes, coord_range=max(shape), max_extent=2)
        queries.append(CellBoxSet(name, shape, lo, hi))
    return queries


def assert_hops_identical(got_hops, want_hops):
    """Hop lists match field-for-field, excluding wall time (``seconds``)
    and ``join_blocks`` (the batch shares one blocked pass per hop)."""
    assert len(got_hops) == len(want_hops)
    for got, want in zip(got_hops, want_hops):
        assert got.array_from == want.array_from
        assert got.array_to == want.array_to
        assert got.rows_scanned == want.rows_scanned
        assert got.boxes_in == want.boxes_in
        assert got.boxes_out_raw == want.boxes_out_raw
        assert got.boxes_out_merged == want.boxes_out_merged


class TestMergeBoxesBatchEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_batches_match_oracle(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(60):
            ndim = int(rng.integers(1, 4))
            n = int(rng.integers(0, 60))
            n_queries = int(rng.integers(1, 6))
            lo, hi = random_boxes(rng, ndim, n)
            qid = np.sort(rng.integers(0, n_queries, size=n)).astype(np.int64)
            got = merge_boxes_batch(lo, hi, qid)
            want = merge_boxes_batch_reference(lo, hi, qid)
            for g, w in zip(got, want):
                assert np.array_equal(g, w)

    def test_qid_segments_stay_contiguous_and_ordered(self):
        rng = np.random.default_rng(7)
        lo, hi = random_boxes(rng, 2, 40)
        qid = np.sort(rng.integers(0, 5, size=40)).astype(np.int64)
        _, _, out_qid = merge_boxes_batch(lo, hi, qid)
        assert np.array_equal(out_qid, np.sort(out_qid))

    def test_empty(self):
        lo = np.empty((0, 2), np.int64)
        qid = np.empty((0,), np.int64)
        got = merge_boxes_batch(lo, lo, qid)
        assert got[0].shape == (0, 2) and got[2].shape == (0,)

    def test_identical_queries_merge_independently(self):
        # two queries with the same boxes must each keep their own copy —
        # the qid axis must prevent cross-query coalescing
        lo = np.array([[0], [0]], np.int64)
        hi = np.array([[3], [3]], np.int64)
        qid = np.array([0, 1], np.int64)
        out_lo, out_hi, out_qid = merge_boxes_batch(lo, hi, qid)
        assert out_lo.shape == (2, 1)
        assert np.array_equal(out_qid, [0, 1])


class TestThetaJoinBatchEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("key", ["output", "input"])
    @pytest.mark.parametrize("merge", [True, False])
    def test_random_batches_match_oracle(self, seed, key, merge):
        rng = np.random.default_rng(seed)
        for _ in range(25):
            relation = random_relation(rng)
            table = compress(relation, key=key)
            shape = relation.out_shape if key == "output" else relation.in_shape
            name = relation.out_name if key == "output" else relation.in_name
            queries = random_query_batch(rng, name, shape)
            got = theta_join_batch(queries, table, merge=merge)
            want = theta_join_batch_reference(queries, table, merge=merge)
            assert len(got) == len(want)
            for g, w in zip(got, want):
                assert_box_sets_identical(g, w)

    def test_empty_batch(self):
        relation = random_relation(np.random.default_rng(0))
        table = compress(relation, key="output")
        assert theta_join_batch([], table) == []

    def test_blocked_batch_matches_oracle(self, monkeypatch):
        import repro.core.query as query_mod

        rng = np.random.default_rng(13)
        relation = random_relation(rng, max_ndim=2, max_dim=8, max_rows=120)
        table = compress(relation, key="output")
        shape = relation.out_shape
        queries = random_query_batch(rng, relation.out_name, shape, max_queries=16, max_boxes=6)
        stats = {}
        monkeypatch.setattr(query_mod, "THETA_JOIN_BLOCK_BUDGET_BYTES", 256)
        got = query_mod.theta_join_batch(queries, table, merge=False, stats=stats)
        monkeypatch.undo()
        want = theta_join_batch_reference(queries, table, merge=False)
        for g, w in zip(got, want):
            assert_box_sets_identical(g, w)
        if len(table) and sum(len(q) for q in queries):
            assert stats["join_blocks"] > 1

    def test_wrong_array_name_raises(self):
        relation = random_relation(np.random.default_rng(1))
        table = compress(relation, key="output")
        bad = CellBoxSet.empty("someone-else", (3,) * table.key_ndim)
        with pytest.raises(ValueError):
            theta_join_batch([bad], table)


class TestExecutePathBatchEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("merge", [True, False])
    def test_random_chains_match_oracle(self, seed, merge):
        rng = np.random.default_rng(seed)
        for _ in range(25):
            tables, shape = random_chain(rng)
            queries = random_query_batch(rng, tables[0].key_name, shape)
            got = execute_path_batch(tables, queries, merge=merge)
            want = execute_path_batch_reference(tables, queries, merge=merge)
            assert len(got) == len(want)
            for g, w in zip(got, want):
                assert_box_sets_identical(g.cells, w.cells)
                assert_hops_identical(g.hops, w.hops)

    def test_early_exit_per_query(self):
        # query 0 dies at hop 1 of 2; query 1 survives both hops — each
        # must get exactly the hop list the sequential path records
        r1 = LineageRelation.from_pairs(
            [((0,), (0,))], (4,), (4,), out_name="C", in_name="B"
        )
        r2 = LineageRelation.from_pairs(
            [((i,), (i,)) for i in range(4)], (4,), (4,), out_name="B", in_name="A"
        )
        tables = [compress(r1, key="output"), compress(r2, key="output")]
        dead = CellBoxSet.from_cells("C", (4,), [(3,)])  # no lineage rows
        live = CellBoxSet.from_cells("C", (4,), [(0,)])
        got = execute_path_batch(tables, [dead, live])
        want = execute_path_batch_reference(tables, [dead, live])
        assert len(got[0].hops) == 1 and len(got[1].hops) == 2
        for g, w in zip(got, want):
            assert_box_sets_identical(g.cells, w.cells)
            assert_hops_identical(g.hops, w.hops)
        # the dead query's empty result lives on the array where it died
        assert got[0].cells.array_name == "B"
        assert got[1].cells.array_name == "A"

    def test_empty_batch_and_empty_chain(self):
        assert execute_path_batch([], []) == []
        query = CellBoxSet.from_cells("X", (3,), [(1,)])
        results = execute_path_batch([], [query])
        assert len(results) == 1
        assert results[0].cells is query and results[0].hops == []
