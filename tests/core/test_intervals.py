"""Unit tests for the interval and box primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import Box, Interval, merge_adjacent_intervals, ranges_from_integers


class TestInterval:
    def test_point(self):
        p = Interval.point(5)
        assert p.lo == 5 and p.hi == 5
        assert p.is_point
        assert len(p) == 1

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            Interval(3, 1)

    def test_len_and_contains(self):
        interval = Interval(2, 6)
        assert len(interval) == 5
        assert 2 in interval and 6 in interval
        assert 1 not in interval and 7 not in interval

    def test_iteration(self):
        assert list(Interval(3, 6)) == [3, 4, 5, 6]

    def test_intersect_overlapping(self):
        assert Interval(1, 5).intersect(Interval(3, 8)) == Interval(3, 5)

    def test_intersect_disjoint(self):
        assert Interval(1, 2).intersect(Interval(4, 6)) is None

    def test_intersect_single_point(self):
        assert Interval(1, 4).intersect(Interval(4, 9)) == Interval(4, 4)

    def test_overlaps_and_touches(self):
        assert Interval(1, 3).overlaps(Interval(3, 5))
        assert not Interval(1, 3).overlaps(Interval(4, 5))
        assert Interval(1, 3).touches(Interval(4, 5))
        assert not Interval(1, 3).touches(Interval(5, 6))

    def test_shift_and_add(self):
        assert Interval(1, 3).shift(4) == Interval(5, 7)
        assert Interval(1, 3).add(Interval(-1, 2)) == Interval(0, 5)

    def test_union_hull(self):
        assert Interval(1, 2).union_hull(Interval(5, 9)) == Interval(1, 9)


class TestBox:
    def test_from_cell_and_contains(self):
        box = Box.from_cell((2, 3))
        assert (2, 3) in box
        assert (2, 4) not in box
        assert len(box) == 1

    def test_cells_enumeration(self):
        box = Box.from_pairs([(0, 1), (2, 3)])
        assert set(box.cells()) == {(0, 2), (0, 3), (1, 2), (1, 3)}
        assert len(box) == 4

    def test_intersect(self):
        a = Box.from_pairs([(0, 4), (0, 4)])
        b = Box.from_pairs([(3, 8), (2, 3)])
        assert a.intersect(b) == Box.from_pairs([(3, 4), (2, 3)])

    def test_intersect_disjoint(self):
        a = Box.from_pairs([(0, 1)])
        b = Box.from_pairs([(3, 4)])
        assert a.intersect(b) is None

    def test_intersect_dim_mismatch(self):
        with pytest.raises(ValueError):
            Box.from_pairs([(0, 1)]).intersect(Box.from_pairs([(0, 1), (0, 1)]))

    def test_contains_wrong_arity(self):
        assert (1, 2) not in Box.from_pairs([(0, 3)])


class TestRangeEncoding:
    def test_paper_example(self):
        # range({1,2,3,4,9,12,13,14,15}) = {[1,4],[9],[12,15]}
        ranges = ranges_from_integers([1, 2, 3, 4, 9, 12, 13, 14, 15])
        assert ranges == [Interval(1, 4), Interval(9, 9), Interval(12, 15)]

    def test_empty(self):
        assert ranges_from_integers([]) == []

    def test_duplicates_ignored(self):
        assert ranges_from_integers([1, 1, 2, 2]) == [Interval(1, 2)]

    def test_single_values(self):
        assert ranges_from_integers([5]) == [Interval(5, 5)]

    @given(st.sets(st.integers(min_value=-200, max_value=200), max_size=60))
    def test_roundtrip_property(self, values):
        ranges = ranges_from_integers(values)
        recovered = set()
        for interval in ranges:
            recovered.update(interval)
        assert recovered == values
        # minimality: consecutive intervals are separated by a gap
        for left, right in zip(ranges, ranges[1:]):
            assert right.lo > left.hi + 1

    def test_merge_adjacent(self):
        merged = merge_adjacent_intervals([Interval(5, 7), Interval(1, 2), Interval(3, 4)])
        assert merged == [Interval(1, 7)]

    def test_merge_disjoint_preserved(self):
        merged = merge_adjacent_intervals([Interval(1, 2), Interval(9, 10)])
        assert merged == [Interval(1, 2), Interval(9, 10)]
