"""Tests for index reshaping (shape-generalized lineage tables)."""

import numpy as np
import pytest

from repro.core.provrc import compress
from repro.core.relation import LineageRelation
from repro.reuse.reshape import GeneralizedTable, generalize, instantiate


def elementwise(shape):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape)


def full_aggregate(n):
    pairs = [((0,), (i,)) for i in range(n)]
    return LineageRelation.from_pairs(pairs, (1,), (n,))


def axis_sum(rows, cols):
    pairs = [((r,), (r, c)) for r in range(rows) for c in range(cols)]
    return LineageRelation.from_pairs(pairs, (rows,), (rows, cols))


class TestGeneralize:
    def test_figure6_aggregate_reshaping(self):
        # Figure 6: an aggregate captured at d1 = 2 generalizes to d1 = 4.
        small = compress(full_aggregate(2))
        generalized = generalize(small)
        instantiated = generalized.instantiate(out_shape=(1,), in_shape=(4,))
        expected = compress(full_aggregate(4))
        assert instantiated.decompress() == full_aggregate(4)
        assert len(instantiated) == len(expected)

    def test_elementwise_reshaping(self):
        small = compress(elementwise((6,)))
        generalized = generalize(small)
        bigger = generalized.instantiate(out_shape=(50,), in_shape=(50,))
        assert bigger.decompress() == elementwise((50,))

    def test_axis_sum_reshaping(self):
        small = compress(axis_sum(4, 3))
        generalized = generalize(small)
        bigger = generalized.instantiate(out_shape=(9,), in_shape=(9, 5))
        assert bigger.decompress() == axis_sum(9, 5)

    def test_relative_attrs_not_marked(self):
        table = compress(elementwise((8,)))
        generalized = generalize(table)
        # the single value attribute is relative (delta 0) and must not be marked
        assert not generalized.val_full.any()
        assert generalized.key_full.all()

    def test_partial_span_not_generalized(self):
        # lineage touching only part of an axis must keep its absolute bounds
        pairs = [((0,), (i,)) for i in range(3)]  # input has 6 cells, only 0..2 used
        relation = LineageRelation.from_pairs(pairs, (1,), (6,))
        generalized = generalize(compress(relation))
        reshaped = generalized.instantiate(out_shape=(1,), in_shape=(10,))
        assert reshaped.decompress().backward([(0,)]) == {(0,), (1,), (2,)}

    def test_empty_table(self):
        relation = LineageRelation((4,), (4,), np.empty((0, 2)))
        generalized = generalize(compress(relation))
        assert len(generalized.instantiate((7,), (7,))) == 0

    def test_dimension_mismatch_rejected(self):
        generalized = generalize(compress(elementwise((4,))))
        with pytest.raises(ValueError):
            generalized.instantiate(out_shape=(4, 4), in_shape=(4,))

    def test_bad_mask_shape_rejected(self):
        table = compress(elementwise((4,)))
        with pytest.raises(ValueError):
            GeneralizedTable(table, np.zeros((99, 1), bool), np.zeros((len(table), 1), bool))

    def test_functional_alias(self):
        generalized = generalize(compress(elementwise((5,))))
        table = instantiate(generalized, (12,), (12,))
        assert table.decompress() == elementwise((12,))
