"""Tests for operation signatures and automatic reuse prediction."""

import numpy as np

from repro.core.provrc import compress
from repro.core.relation import LineageRelation
from repro.reuse.signatures import (
    OperationSignature,
    ReuseManager,
    fingerprint_array,
    tables_equal,
)


def elementwise(shape, in_name="A", out_name="B"):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def shape_dependent(n):
    """A lineage whose pattern changes with shape (like numpy.cross)."""
    if n % 2 == 0:
        pairs = [((i,), (i,)) for i in range(n)]
    else:
        pairs = [((i,), ((i + 1) % n,)) for i in range(n)]
    return LineageRelation.from_pairs(pairs, (n,), (n,))


def signature_for(op_name, data, out_shape, args=None):
    return OperationSignature.build(op_name, [data], [out_shape], op_args=args)


def tables_for(relation):
    return {(relation.in_name, relation.out_name): compress(relation)}


class TestFingerprintsAndEquality:
    def test_fingerprint_depends_on_content(self):
        a = np.arange(10.0)
        b = np.arange(10.0) + 1
        assert fingerprint_array(a) != fingerprint_array(b)
        assert fingerprint_array(a) == fingerprint_array(np.arange(10.0))

    def test_fingerprint_depends_on_shape(self):
        a = np.arange(12.0)
        assert fingerprint_array(a) != fingerprint_array(a.reshape(3, 4))

    def test_tables_equal_identical(self):
        t1 = compress(elementwise((8,)))
        t2 = compress(elementwise((8,)))
        assert tables_equal(t1, t2)

    def test_tables_equal_detects_difference(self):
        assert not tables_equal(compress(elementwise((8,))), compress(elementwise((9,))))

    def test_signature_keys(self):
        data = np.ones((4, 3))
        sig = signature_for("op", data, (4,), args={"axis": 1})
        assert sig.base_key[0] == "op"
        assert sig.dim_key == ("op", ((4, 3),), (("axis", "1"),))
        assert sig.gen_key == ("op", (("axis", "1"),))


class TestBaseSignatureReuse:
    def test_exact_input_match_reuses(self):
        manager = ReuseManager()
        data = np.arange(6.0)
        relation = elementwise((6,))
        sig = signature_for("negative", data, (6,))
        assert not manager.lookup(sig).reused
        manager.observe(sig, tables_for(relation))
        decision = manager.lookup(sig)
        assert decision.reused and decision.level == "base"

    def test_different_input_does_not_match_base(self):
        manager = ReuseManager()
        relation = elementwise((6,))
        manager.observe(signature_for("negative", np.arange(6.0), (6,)), tables_for(relation))
        other = manager.lookup(signature_for("negative", np.arange(6.0) * 2, (6,)))
        # base does not match; dim is not yet confirmed (m = 1 needs one repeat)
        assert not other.reused


class TestDimSignatureReuse:
    def test_promoted_after_confirmation(self):
        manager = ReuseManager(confirmations_required=1)
        relation = elementwise((6,))
        first = signature_for("negative", np.arange(6.0), (6,))
        second = signature_for("negative", np.arange(6.0) * 3, (6,))
        manager.observe(first, tables_for(relation))
        assert not manager.lookup(second).reused
        manager.observe(second, tables_for(relation))
        third = signature_for("negative", np.arange(6.0) + 7, (6,))
        decision = manager.lookup(third)
        assert decision.reused and decision.level == "dim"
        assert manager.has_dim_mapping(third)

    def test_mismatch_blocks_dim(self):
        manager = ReuseManager()
        sig1 = signature_for("weird", np.arange(5.0), (5,))
        sig2 = signature_for("weird", np.arange(5.0) * 2, (5,))
        manager.observe(sig1, tables_for(shape_dependent(5)))
        manager.observe(sig2, tables_for(elementwise((5,))))  # different lineage, same shape
        assert not manager.has_dim_mapping(sig2)
        assert not manager.lookup(signature_for("weird", np.ones(5), (5,))).reused

    def test_higher_confirmation_threshold(self):
        manager = ReuseManager(confirmations_required=2)
        relation = elementwise((4,))
        for i in range(2):
            manager.observe(signature_for("neg", np.arange(4.0) + i, (4,)), tables_for(relation))
        assert not manager.has_dim_mapping(signature_for("neg", np.zeros(4), (4,)))
        manager.observe(signature_for("neg", np.arange(4.0) + 9, (4,)), tables_for(relation))
        assert manager.has_dim_mapping(signature_for("neg", np.zeros(4), (4,)))


class TestGenSignatureReuse:
    def test_promoted_across_shapes(self):
        manager = ReuseManager()
        manager.observe(signature_for("negative", np.arange(6.0), (6,)), tables_for(elementwise((6,))))
        manager.observe(signature_for("negative", np.arange(9.0), (9,)), tables_for(elementwise((9,))))
        new_sig = signature_for("negative", np.arange(20.0), (20,))
        decision = manager.lookup(new_sig)
        assert decision.reused and decision.level == "gen"
        table = next(iter(decision.tables.values()))
        assert table.decompress() == elementwise((20,))
        assert manager.has_gen_mapping(new_sig)

    def test_same_shape_does_not_confirm_gen(self):
        manager = ReuseManager()
        manager.observe(signature_for("negative", np.arange(6.0), (6,)), tables_for(elementwise((6,))))
        manager.observe(signature_for("negative", np.ones(6), (6,)), tables_for(elementwise((6,))))
        # dim is confirmed, but gen needs a different shape before promotion
        assert manager.has_dim_mapping(signature_for("negative", np.zeros(6), (6,)))
        assert not manager.has_gen_mapping(signature_for("negative", np.zeros(17), (17,)))

    def test_shape_dependent_lineage_blocks_gen(self):
        # Mirrors the paper's `cross` misprediction case: lineage pattern
        # changes with shape, so the generalized mapping must be rejected.
        manager = ReuseManager()
        manager.observe(signature_for("cross", np.arange(4.0), (4,)), tables_for(shape_dependent(4)))
        manager.observe(signature_for("cross", np.arange(5.0), (5,)), tables_for(shape_dependent(5)))
        assert not manager.has_gen_mapping(signature_for("cross", np.arange(7.0), (7,)))
        stats = manager.stats()
        assert stats["blocked_gen"] >= 1

    def test_stats_shape(self):
        manager = ReuseManager()
        manager.observe(signature_for("negative", np.arange(6.0), (6,)), tables_for(elementwise((6,))))
        stats = manager.stats()
        assert set(stats) == {
            "base_entries",
            "dim_entries",
            "gen_entries",
            "blocked_dim",
            "blocked_gen",
            "mispredictions",
        }
        manager.record_misprediction()
        assert manager.stats()["mispredictions"] == 1
