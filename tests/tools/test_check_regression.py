"""The CI perf-regression gate (``benchmarks/check_regression.py``):
comparison semantics, missing-benchmark handling and CLI exit codes."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def bench_json(path: Path, means: dict) -> Path:
    payload = {
        "benchmarks": [
            {"fullname": name, "name": name.rsplit("::", 1)[-1], "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def test_load_benchmarks(tmp_path):
    path = bench_json(tmp_path / "b.json", {"suite::bench_a": 0.25, "suite::bench_b": 1.0})
    assert check_regression.load_benchmarks(path) == {
        "suite::bench_a": 0.25,
        "suite::bench_b": 1.0,
    }


def test_compare_within_tolerance_passes():
    regressions, missing, report = check_regression.compare(
        {"a": 1.0, "b": 0.1}, {"a": 1.4, "b": 0.1}, tolerance=1.5
    )
    assert regressions == [] and missing == []
    assert all(line.startswith("ok") for line in report)


def test_compare_flags_regression():
    regressions, missing, _ = check_regression.compare(
        {"a": 1.0, "b": 0.1}, {"a": 1.6, "b": 0.1}, tolerance=1.5
    )
    assert regressions == ["a"] and missing == []


def test_compare_flags_missing_and_tolerates_new():
    regressions, missing, report = check_regression.compare(
        {"a": 1.0}, {"brand_new": 0.5}, tolerance=1.5
    )
    assert regressions == [] and missing == ["a"]
    assert any(line.startswith("new") for line in report)


@pytest.mark.parametrize(
    "fresh_means,extra_args,expected",
    [
        ({"a": 1.0}, [], 0),  # identical: ok
        ({"a": 2.0}, [], 1),  # 2x > 1.5x: regression
        ({"a": 2.0}, ["--tolerance", "3"], 0),  # widened tolerance
        ({}, [], 1),  # baseline benchmark dropped
        # --allow-missing tolerates a PARTIAL run, but matching nothing at
        # all would make the gate vacuous (e.g. after a rename): hard error
        ({}, ["--allow-missing"], 2),
    ],
)
def test_main_exit_codes(tmp_path, fresh_means, extra_args, expected):
    baseline = bench_json(tmp_path / "baseline.json", {"a": 1.0})
    fresh = bench_json(tmp_path / "fresh.json", fresh_means)
    code = check_regression.main(
        [str(fresh), "--baseline", str(baseline), *extra_args]
    )
    assert code == expected


def test_allow_missing_partial_run_still_passes(tmp_path):
    # one matched benchmark is enough: the gate compared something real
    baseline = bench_json(tmp_path / "baseline.json", {"a": 1.0, "b": 1.0, "c": 1.0})
    fresh = bench_json(tmp_path / "fresh.json", {"a": 1.0})
    assert check_regression.main(
        [str(fresh), "--baseline", str(baseline), "--allow-missing"]
    ) == 0


def test_zero_matches_is_an_error_even_with_allow_missing(tmp_path):
    baseline = bench_json(tmp_path / "baseline.json", {"a": 1.0})
    fresh = bench_json(tmp_path / "fresh.json", {"renamed_a": 1.0})
    assert check_regression.main(
        [str(fresh), "--baseline", str(baseline), "--allow-missing"]
    ) == 2


def test_main_merges_multiple_baselines(tmp_path):
    base1 = bench_json(tmp_path / "b1.json", {"a": 1.0})
    base2 = bench_json(tmp_path / "b2.json", {"b": 1.0})
    fresh = bench_json(tmp_path / "fresh.json", {"a": 1.0, "b": 5.0})
    code = check_regression.main(
        [str(fresh), "--baseline", str(base1), "--baseline", str(base2)]
    )
    assert code == 1  # the regression in the second baseline is caught


class TestToleranceOverrides:
    def test_parse_overrides(self):
        parsed = check_regression.parse_overrides(["a=2.5", "suite::b=0.9"])
        assert parsed == {"a": 2.5, "suite::b": 0.9}
        assert check_regression.parse_overrides(None) == {}

    @pytest.mark.parametrize("bad", ["no-equals", "=2.0", "a=zero", "a=-1", "a=0"])
    def test_malformed_overrides_rejected(self, bad):
        with pytest.raises(ValueError):
            check_regression.parse_overrides([bad])

    def test_exact_match_beats_substring(self):
        overrides = {"suite::bench_a": 4.0, "bench": 2.0}
        assert check_regression.tolerance_for("suite::bench_a", 1.5, overrides) == 4.0
        assert check_regression.tolerance_for("suite::bench_b", 1.5, overrides) == 2.0
        assert check_regression.tolerance_for("other", 1.5, overrides) == 1.5

    def test_longest_substring_wins(self):
        overrides = {"bench": 2.0, "bench_noisy": 5.0}
        assert check_regression.tolerance_for("suite::bench_noisy[4]", 1.5, overrides) == 5.0
        assert check_regression.tolerance_for("suite::bench_quiet", 1.5, overrides) == 2.0

    def test_compare_applies_override(self):
        regressions, _missing, report = check_regression.compare(
            {"noisy": 1.0, "steady": 1.0},
            {"noisy": 2.5, "steady": 2.5},
            tolerance=1.5,
            overrides={"noisy": 3.0},
        )
        assert regressions == ["steady"]
        assert any("limit 3.00x" in line for line in report)

    def test_main_with_override_flag(self, tmp_path):
        baseline = bench_json(tmp_path / "baseline.json", {"a": 1.0, "b": 1.0})
        fresh = bench_json(tmp_path / "fresh.json", {"a": 2.8, "b": 1.0})
        args = [str(fresh), "--baseline", str(baseline)]
        assert check_regression.main(args) == 1
        assert check_regression.main(args + ["--tolerance-override", "a=3.0"]) == 0

    def test_main_rejects_bad_override(self, tmp_path, capsys):
        baseline = bench_json(tmp_path / "baseline.json", {"a": 1.0})
        fresh = bench_json(tmp_path / "fresh.json", {"a": 1.0})
        with pytest.raises(SystemExit):
            check_regression.main(
                [str(fresh), "--baseline", str(baseline), "--tolerance-override", "a"]
            )


def test_main_bad_input_is_a_usage_error(tmp_path):
    fresh = tmp_path / "fresh.json"
    fresh.write_text("not json", encoding="utf-8")
    baseline = bench_json(tmp_path / "baseline.json", {"a": 1.0})
    assert check_regression.main([str(fresh), "--baseline", str(baseline)]) == 2
    assert (
        check_regression.main(
            [str(bench_json(tmp_path / "ok.json", {"a": 1.0})), "--baseline", str(fresh)]
        )
        == 2
    )
