"""Tests for the lineage graph planner (automatic paths, closures, summary)."""

import numpy as np
import pytest

from repro import DSLog, LineageGraph
from repro.core.query import QueryResult
from repro.core.relation import LineageRelation


def elementwise(shape, in_name, out_name):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def shift(shape, delta, in_name, out_name):
    """Output (i,) derives from input ((i + delta) % n,)."""
    n = shape[0]
    pairs = [((i,), ((i + delta) % n,)) for i in range(n)]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def chain_log(names, shape=(6,)):
    log = DSLog()
    for name in names:
        log.define_array(name, shape)
    for a, b in zip(names, names[1:]):
        log.add_lineage(a, b, relation=elementwise(shape, a, b))
    return log


def diamond_log(shape=(6,)):
    """A -> B -> D and A -> C -> D, with C's edges shifted by one."""
    log = DSLog()
    for name in "ABCD":
        log.define_array(name, shape)
    log.add_lineage("A", "B", relation=elementwise(shape, "A", "B"))
    log.add_lineage("B", "D", relation=elementwise(shape, "B", "D"))
    log.add_lineage("A", "C", relation=shift(shape, 1, "A", "C"))
    log.add_lineage("C", "D", relation=elementwise(shape, "C", "D"))
    return log


class TestShortestPaths:
    def test_chain_single_path(self):
        names = [f"A{i}" for i in range(6)]
        log = chain_log(names)
        assert log.graph.shortest_path("A0", "A5") == names
        assert log.graph.shortest_paths("A0", "A5") == [names]

    def test_backward_resolution(self):
        names = [f"A{i}" for i in range(4)]
        log = chain_log(names)
        assert log.graph.shortest_path("A3", "A0") == ["A3", "A2", "A1", "A0"]

    def test_diamond_returns_both_paths(self):
        log = diamond_log()
        assert log.graph.shortest_paths("A", "D") == [
            ["A", "B", "D"],
            ["A", "C", "D"],
        ]

    def test_shortest_wins_over_longer(self):
        names = [f"A{i}" for i in range(5)]
        log = chain_log(names)
        log.add_lineage("A0", "A3", relation=elementwise((6,), "A0", "A3"))
        assert log.graph.shortest_path("A0", "A4") == ["A0", "A3", "A4"]

    def test_unconnected_returns_empty(self):
        log = chain_log(["A", "B"])
        log.define_array("Z", (6,))
        assert log.graph.shortest_paths("A", "Z") == []
        with pytest.raises(KeyError):
            log.graph.shortest_path("A", "Z")

    def test_unknown_array_rejected(self):
        log = chain_log(["A", "B"])
        with pytest.raises(KeyError):
            log.graph.shortest_paths("A", "missing")

    def test_memo_survives_repeat_lookups(self):
        log = chain_log(["A", "B", "C"])
        first = log.graph.shortest_paths("A", "C")
        memoized = log.graph.shortest_paths("A", "C")
        assert first == memoized

    def test_graph_refreshed_incrementally_after_catalog_change(self):
        log = chain_log(["A", "B", "C"])
        graph = log.graph
        assert graph.shortest_path("A", "C") == ["A", "B", "C"]
        log.define_array("D", (6,))
        log.add_lineage("C", "D", relation=elementwise((6,), "C", "D"))
        # same instance, incrementally refreshed — not rebuilt from scratch
        assert log.graph is graph
        assert graph.version == log.catalog.version
        assert log.graph.shortest_path("A", "D") == ["A", "B", "C", "D"]


class TestAutomaticProvQuery:
    def test_chain_matches_explicit_hop_list(self):
        names = [f"A{i}" for i in range(6)]
        log = chain_log(names)
        explicit = log.prov_query(names, [(2,)]).to_cells()
        assert log.prov_query(["A0", "A5"], [(2,)]).to_cells() == explicit

    def test_backward_chain_matches_explicit(self):
        names = [f"A{i}" for i in range(6)]
        log = chain_log(names)
        explicit = log.prov_query(list(reversed(names)), [(4,)]).to_cells()
        assert log.prov_query(["A5", "A0"], [(4,)]).to_cells() == explicit

    def test_diamond_unions_both_paths(self):
        log = diamond_log()
        via_b = log.prov_query(["A", "B", "D"], [(2,)]).to_cells()
        via_c = log.prov_query(["A", "C", "D"], [(2,)]).to_cells()
        assert via_b != via_c  # the shifted branch contributes new cells
        auto = log.prov_query(["A", "D"], [(2,)]).to_cells()
        assert auto == via_b | via_c

    def test_direct_entry_still_preferred(self):
        log = diamond_log()
        log.add_lineage("A", "D", relation=shift((6,), 2, "A", "D"))
        # a stored (A, D) entry short-circuits the planner entirely
        assert log.prov_query(["A", "D"], [(0,)]).to_cells() == {(4,)}

    def test_unconnected_two_array_path_raises(self):
        log = chain_log(["A", "B"])
        log.define_array("Z", (6,))
        with pytest.raises(KeyError):
            log.prov_query(["A", "Z"], [(0,)])

    def test_merge_false_preserved_through_union(self):
        log = diamond_log()
        merged = log.prov_query(["A", "D"], [(1,)], merge=True).to_cells()
        unmerged = log.prov_query(["A", "D"], [(1,)], merge=False).to_cells()
        assert merged == unmerged


class TestClosures:
    def test_impact_with_depths(self):
        log = diamond_log()
        assert log.impact("A") == {"B": 1, "C": 1, "D": 2}
        assert log.impact("B") == {"D": 1}
        assert log.impact("D") == {}

    def test_dependencies_with_depths(self):
        log = diamond_log()
        assert log.dependencies("D") == {"B": 1, "C": 1, "A": 2}
        assert log.dependencies("A") == {}

    def test_unknown_array_rejected(self):
        log = diamond_log()
        with pytest.raises(KeyError):
            log.impact("missing")


class TestSummary:
    def test_diamond_summary(self):
        log = diamond_log()
        log.define_array("lonely", (3,))
        summary = log.lineage_summary()
        assert summary["arrays"] == 5
        assert summary["entries"] == 4
        assert summary["roots"] == ["A"]
        assert summary["leaves"] == ["D"]
        assert summary["isolated"] == ["lonely"]
        assert summary["max_depth"] == 2
        assert summary["fan_out"]["A"] == 2
        assert summary["fan_in"]["D"] == 2

    def test_cycle_reports_undefined_depth(self):
        log = DSLog()
        log.define_array("A", (4,))
        log.define_array("B", (4,))
        log.add_lineage("A", "B", relation=elementwise((4,), "A", "B"))
        log.add_lineage("B", "A", relation=elementwise((4,), "B", "A"))
        assert log.lineage_summary()["max_depth"] is None

    def test_operations_counted(self):
        log = DSLog()
        log.define_array("A", (4,))
        log.define_array("B", (4,))
        log.register_operation(
            "negative",
            in_arrs=["A"],
            out_arrs=["B"],
            relations={("A", "B"): elementwise((4,), "A", "B")},
        )
        summary = log.lineage_summary()
        assert summary["operations"] == 1
        assert summary["avg_arrays_per_operation"] == 2.0


class TestQueryResultUnion:
    def test_union_requires_same_array(self):
        log = diamond_log()
        a = log.prov_query(["A", "B"], [(0,)])
        b = log.prov_query(["B", "D"], [(0,)])
        with pytest.raises(ValueError):
            QueryResult.union([a, b])

    def test_union_of_empty_list_rejected(self):
        with pytest.raises(ValueError):
            QueryResult.union([])

    def test_union_keeps_hop_stats(self):
        log = diamond_log()
        result = log.prov_query(["A", "D"], [(3,)])
        assert len(result.hops) == 4  # two hops per planned path


class TestIncrementalRefresh:
    """The graph is memoized on the catalog's generation counter and folds
    new entries in incrementally instead of rebuilding."""

    def test_unchanged_catalog_is_a_noop(self):
        log = chain_log(["A", "B", "C"])
        graph = log.graph
        refreshes = graph.refresh_count
        for _ in range(5):
            assert log.graph is graph
        assert graph.refresh_count == refreshes  # version key short-circuits

    def test_new_entry_invalidates_path_memo(self):
        log = chain_log(["A", "B", "C"])
        graph = log.graph
        assert graph.shortest_paths("A", "C") == [["A", "B", "C"]]
        assert ("A", "C") in graph._path_memo
        # add a shortcut edge: the memoized 2-hop path would now be wrong
        log.add_lineage("A", "C", relation=elementwise((6,), "A", "C"))
        assert log.graph is graph
        assert graph.shortest_paths("A", "C") == [["A", "C"]]

    def test_refresh_picks_up_arrays_defined_after_build(self):
        log = chain_log(["A", "B"])
        graph = log.graph
        log.define_array("C", (6,))
        # arrays alone don't bump the entry version, but refresh still sees
        # them (the old rebuild-on-version design missed this case)
        assert log.graph.successors("C") == []
        log.add_lineage("B", "C", relation=elementwise((6,), "B", "C"))
        assert log.graph.shortest_path("A", "C") == ["A", "B", "C"]
        assert log.graph is graph

    def test_incremental_equals_fresh_build(self):
        from repro.graph import LineageGraph

        names = [f"N{i}" for i in range(8)]
        log = chain_log(names[:4])
        log.graph  # force the initial build so later accesses refresh it
        for name in names[4:]:
            log.define_array(name, (6,))
        for a, b in zip(names[3:], names[4:]):
            log.add_lineage(a, b, relation=elementwise((6,), a, b))
        log.add_lineage("N0", "N5", relation=elementwise((6,), "N0", "N5"))
        refreshed = log.graph
        fresh = LineageGraph(log.catalog)
        assert refreshed._out == fresh._out
        assert refreshed._in == fresh._in
        assert refreshed.shortest_paths("N0", "N7") == fresh.shortest_paths("N0", "N7")
        assert refreshed.lineage_summary() == fresh.lineage_summary()

    def test_replace_bumps_version_but_keeps_adjacency(self):
        log = chain_log(["A", "B", "C"])
        graph = log.graph
        out_before = {k: list(v) for k, v in graph._out.items()}
        log.add_lineage("A", "B", relation=elementwise((6,), "A", "B"), replace=True)
        assert log.graph is graph
        assert graph.version == log.catalog.version
        assert graph._out == out_before  # same edges, no duplicates
