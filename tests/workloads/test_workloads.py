"""Tests for workload generators (Table VII operations, pipelines, Kaggle traces)."""

import numpy as np
import pytest

from repro.core.provrc import compress
from repro.workloads.datasets import make_feature_matrix, make_imdb_like
from repro.workloads.kaggle import OP_VOCABULARY, classify_workflow, generate_workflows, summarize
from repro.workloads.operations import build_workload, compression_workloads
from repro.workloads.pipelines import (
    image_pipeline,
    random_numpy_pipeline,
    relational_pipeline,
    resnet_block_pipeline,
)


class TestDatasets:
    def test_imdb_like_shapes_and_sortedness(self):
        imdb = make_imdb_like(n_basics=500, n_episodes=300, seed=1)
        assert imdb.basics.shape == (500, 5)
        assert imdb.episode.shape == (300, 4)
        tconst = imdb.basics[:, 0]
        start_year = imdb.basics[:, 1]
        is_adult = imdb.basics[:, 2]
        assert np.all(np.diff(tconst) >= 0)
        assert np.all(np.diff(start_year) >= 0)
        assert set(np.unique(is_adult)) <= {0.0, 1.0}

    def test_feature_matrix_has_nans(self):
        data = make_feature_matrix(rows=200, cols=8, seed=2)
        assert np.isnan(data).any()


class TestCompressionWorkloads:
    def test_all_twelve_present(self):
        names = set(compression_workloads())
        assert names == {
            "Negative", "Addition", "Aggregate", "Repetition", "Matrix*Vector",
            "Matrix*Matrix", "Sort", "ImgFilter", "Lime", "DRISE", "Group By", "Inner Join",
        }

    @pytest.mark.parametrize("name", sorted(compression_workloads()))
    def test_workload_builds_and_compresses(self, name):
        relations = build_workload(name, scale=0.02)
        assert relations
        for relation in relations:
            relation.validate()
            table = compress(relation)
            assert table.decompress() == relation.deduplicated()

    def test_structured_ops_compress_to_single_row(self):
        for name in ("Negative", "Aggregate", "Matrix*Vector", "Matrix*Matrix"):
            for relation in build_workload(name, scale=0.02):
                assert len(compress(relation)) == 1, name

    def test_sort_does_not_compress(self):
        relation = build_workload("Sort", scale=0.02)[0]
        assert len(compress(relation)) > len(relation) // 2

    def test_scale_changes_size(self):
        small = build_workload("Negative", scale=0.01)[0]
        larger = build_workload("Negative", scale=0.05)[0]
        assert len(larger) > len(small)


class TestPipelines:
    def test_image_pipeline_chain(self):
        pipeline = image_pipeline(32, 32, lime_samples=30)
        assert len(pipeline.steps) == 5
        assert pipeline.path[0] == "img0" and pipeline.path[-1] == "detection"
        log = pipeline.load_into_dslog()
        result = log.prov_query(pipeline.path, [(0, 0), (16, 16)])
        assert result.count_cells() >= 1

    def test_relational_pipeline_chain(self):
        pipeline = relational_pipeline(300, 200)
        assert len(pipeline.steps) == 5
        log = pipeline.load_into_dslog()
        result = log.prov_query(pipeline.path, [(0, 0)])
        assert result.count_cells() >= 0

    def test_resnet_pipeline_has_seven_steps(self):
        pipeline = resnet_block_pipeline(16, 16)
        assert len(pipeline.steps) == 7
        log = pipeline.load_into_dslog()
        # a centre cell reaches a 5x5 receptive field through two 3x3 convolutions
        result = log.prov_query(pipeline.path, [(8, 8)])
        assert result.count_cells() == 25

    def test_resnet_backward_query(self):
        pipeline = resnet_block_pipeline(16, 16)
        log = pipeline.load_into_dslog()
        result = log.prov_query(list(reversed(pipeline.path)), [(8, 8)])
        assert result.count_cells() == 25

    def test_random_pipeline_reproducible(self):
        a = random_numpy_pipeline(4, n_cells=500, seed=3)
        b = random_numpy_pipeline(4, n_cells=500, seed=3)
        assert [r.out_shape for r in a.steps] == [r.out_shape for r in b.steps]
        assert len(a.steps) == 4

    def test_random_pipeline_queryable(self):
        pipeline = random_numpy_pipeline(5, n_cells=400, seed=5)
        log = pipeline.load_into_dslog()
        result = log.prov_query(pipeline.path, [(0,), (10,)])
        assert result.count_cells() >= 0

    def test_random_pipeline_matches_baseline_answer(self):
        from repro.baselines.stores import RawStore

        pipeline = random_numpy_pipeline(4, n_cells=300, seed=7)
        log = pipeline.load_into_dslog()
        db = pipeline.load_into_baseline(RawStore())
        cells = [(i,) for i in range(0, 40, 3)]
        assert log.prov_query(pipeline.path, cells).to_cells() == db.query_path(pipeline.path, cells)


class TestKaggleTraces:
    def test_vocabulary_has_both_kinds(self):
        compressible = [op for op in OP_VOCABULARY.values() if op.compressible]
        incompressible = [op for op in OP_VOCABULARY.values() if not op.compressible]
        assert compressible and incompressible

    def test_generate_workflows(self):
        traces = generate_workflows("Flight", n_workflows=8, seed=0)
        assert len(traces) == 8
        assert all(trace.operations for trace in traces)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            generate_workflows("MNIST", 2)

    def test_classification_consistency(self):
        trace = generate_workflows("Netflix", 1, seed=1)[0]
        stats = classify_workflow(trace)
        assert 0 <= stats["compressible_pct"] <= 100
        assert stats["compressible_ops"] <= stats["total_ops"]

    def test_summary_matches_paper_ballpark(self):
        # Table X: roughly 60-80% of operations compressible on both datasets.
        traces = generate_workflows("Flight", 20, seed=2) + generate_workflows("Netflix", 20, seed=2)
        summary = summarize(traces)
        mean_pct = summary["compressible_pct"][0]
        assert 55 <= mean_pct <= 90
