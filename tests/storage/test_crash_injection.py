"""Crash-injection tests for manifest atomicity and segment recovery.

Simulates the two crash windows of the durability protocol:

* a **torn temp-file write** — the process died while writing
  ``MANIFEST.json.tmp``, before the atomic rename: reopening must see the
  last *published* generation, with the partial temp file ignored;
* a **dangling segment tail** — the process died mid-append, after the
  manifest was published: the published records must stay readable, the
  torn tail bytes inert, new appends must land safely after them, and
  compaction must reclaim them.
"""

import json

import numpy as np
import pytest

from repro import DSLog, FaultPlan, LineageService
from repro.core.relation import LineageRelation
from repro.storage.manifest import MANIFEST_NAME, load_manifest
from repro.storage.segments import (
    SEGMENT_HEADER_SIZE,
    CorruptRecordError,
    SegmentWriter,
    iter_records,
    read_record,
    valid_length,
)

SHAPE = (4,)


def elementwise(in_name, out_name, shape=SHAPE):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(
        pairs, shape, shape, in_name=in_name, out_name=out_name
    )


def build(root, n, backend="segment", **kwargs):
    log = DSLog(root, backend=backend, autosync=False, **kwargs)
    names = [f"A{i}" for i in range(n + 1)]
    for name in names:
        log.define_array(name, SHAPE)
    for a, b in zip(names, names[1:]):
        log.add_lineage(a, b, relation=elementwise(a, b), op_name=f"op_{a}")
    log.close()
    return names


class TestTornManifestTemp:
    def test_partial_temp_write_recovers_to_published_generation(self, tmp_path):
        root = tmp_path / "db"
        names = build(root, 5)
        published = load_manifest(root).generation

        # crash mid-write of the next manifest: a torn, non-JSON temp file
        (root / "MANIFEST.json.tmp").write_bytes(b'{"format": "dslog-seg')

        reopened = DSLog.load(root, autosync=False)
        assert reopened.store.manifest.generation == published
        assert len(reopened.catalog) == 5
        assert reopened.prov_query([names[0], names[2]], [(1,)]).to_cells() == {(1,)}
        # the recovered store keeps publishing cleanly past the torn temp
        reopened.define_array("B", SHAPE)
        reopened.add_lineage(names[5], "B", relation=elementwise(names[5], "B"))
        reopened.sync()
        assert load_manifest(root).generation == published + 1
        reopened.close()

    def test_temp_never_mistaken_for_manifest(self, tmp_path):
        root = tmp_path / "db"
        build(root, 2)
        manifest_before = (root / MANIFEST_NAME).read_text()
        # even a *valid-looking* temp with a higher generation must be ignored
        fake = json.loads(manifest_before)
        fake["generation"] = 999
        (root / "MANIFEST.json.tmp").write_text(json.dumps(fake))
        reopened = DSLog.load(root)
        assert reopened.store.manifest.generation == json.loads(manifest_before)["generation"]
        reopened.close()

    def test_sharded_one_shard_torn(self, tmp_path):
        root = tmp_path / "db"
        names = build(root, 6, backend="sharded", num_shards=3)
        generations = [load_manifest(root / f"shard-{i:02d}").generation for i in range(3)]
        (root / "shard-01" / "MANIFEST.json.tmp").write_bytes(b"\x00garbage")
        reopened = DSLog.load(root)
        assert list(reopened.store.generation_vector()) == generations
        assert len(reopened.catalog) == 6
        assert reopened.prov_query([names[0], names[3]], [(2,)]).to_cells() == {(2,)}
        reopened.close()


class TestDanglingSegmentTail:
    def _torn_append(self, segment_path):
        """Append a record prefix promising more bytes than follow."""
        with open(segment_path, "ab") as fh:
            fh.write((5000).to_bytes(4, "little"))
            fh.write(b"only-a-few-bytes")

    def test_reopen_recovers_and_new_appends_land_after_tail(self, tmp_path):
        root = tmp_path / "db"
        names = build(root, 4)
        manifest = load_manifest(root)
        segment = root / manifest.segments[-1]
        complete = valid_length(segment)
        self._torn_append(segment)
        assert valid_length(segment) == complete  # tail is not a record
        size_with_tail = segment.stat().st_size
        assert size_with_tail > complete

        reopened = DSLog.load(root)
        assert reopened.store.manifest.generation == manifest.generation
        assert len(reopened.catalog) == 4
        # every published record still readable
        assert reopened.catalog.materialize_all() == 8
        # new ingest appends after the physical end — never over the tail —
        # and remains readable
        reopened.define_array("B", SHAPE)
        reopened.add_lineage(names[4], "B", relation=elementwise(names[4], "B"))
        reopened.sync()
        entry = reopened.catalog.entry(names[4], "B")
        assert entry.backward_ref.offset >= size_with_tail
        reopened.close()

        again = DSLog.load(root)
        assert len(again.catalog) == 5
        assert again.prov_query([names[4], "B"], [(3,)]).to_cells() == {(3,)}
        again.close()

    def test_compact_reclaims_the_tail(self, tmp_path):
        root = tmp_path / "db"
        build(root, 4)
        manifest = load_manifest(root)
        segment = root / manifest.segments[-1]
        self._torn_append(segment)
        tail_bytes = segment.stat().st_size - valid_length(segment)
        assert tail_bytes > 0

        log = DSLog.load(root)
        stats = log.compact()
        assert stats["reclaimed_bytes"] >= tail_bytes
        for name in log.store.manifest.segments:
            path = root / name
            assert valid_length(path) == path.stat().st_size  # no tails left
        assert len(log.catalog) == 4
        log.close()

    def test_unreferenced_segment_dropped_on_reopen(self, tmp_path):
        """A crash between writing a fresh segment and publishing the
        manifest leaves a whole orphan file; reopening removes it."""
        root = tmp_path / "db"
        build(root, 3)
        orphan = root / "segment-000099.seg"
        orphan.write_bytes(b"DSEG" + (1).to_bytes(2, "little") + b"leftover")
        reopened = DSLog.load(root)
        assert not orphan.exists()
        assert len(reopened.catalog) == 3
        reopened.close()

    def test_iter_records_stops_at_tail(self, tmp_path):
        root = tmp_path / "db"
        build(root, 3)
        manifest = load_manifest(root)
        segment = root / manifest.segments[-1]
        records_before = list(iter_records(segment))
        self._torn_append(segment)
        assert list(iter_records(segment)) == records_before
        assert records_before[0][0] == SEGMENT_HEADER_SIZE

    def test_sharded_tail_in_one_shard(self, tmp_path):
        root = tmp_path / "db"
        names = build(root, 8, backend="sharded", num_shards=2)
        shard_dir = root / "shard-01"
        manifest = load_manifest(shard_dir)
        assert manifest.segments, "expected entries hashed to shard 1"
        self._torn_append(shard_dir / manifest.segments[-1])
        reopened = DSLog.load(root)
        assert len(reopened.catalog) == 8
        assert reopened.catalog.materialize_all() == 16
        assert reopened.prov_query([names[0], names[4]], [(1,)]).to_cells() == {(1,)}
        reopened.close()


class TestTornWriteOffsetStability:
    def test_short_write_never_reassigns_promised_offsets(self, tmp_path):
        """An append's offset is a promise manifest rows may already hold:
        after a torn flush the dropped region must read as garbage, never
        be silently reassigned to a later record."""
        path = tmp_path / "segment-000001.seg"
        plan = FaultPlan().on("segment.write", kind="short_write", at=1, times=1)
        writer = SegmentWriter(path, faults=plan)
        plan.arm()
        off_a, _len_a = writer.append(b"a" * 100)
        promised_end = writer.size
        with pytest.raises(OSError):
            writer.flush_pending()
        assert writer.torn_writes == 1
        # the next record lands after A's promised region, not over it
        off_b, _len_b = writer.append(b"b" * 64)
        assert off_b == promised_end
        writer.sync()
        assert bytes(read_record(path, off_b, 64)) == b"b" * 64
        # A's region is torn garbage: its ref dangles, it never aliases B
        with pytest.raises((ValueError, CorruptRecordError)):
            read_record(path, off_a, 100)
        writer.close()


class TestGroupCommitFaults:
    """The group-commit crash matrix: an fsync fault mid-batch must be
    all-or-nothing at the ticket level — no ticket may resolve durable
    whose record is missing after a cold reopen."""

    def _run_service(self, root, plan, n=12):
        log = DSLog(root, backend="sharded", num_shards=2, autosync=False, faults=plan)
        svc = LineageService(log=log, workers=2, commit_interval=0.001)
        names = [f"A{i}" for i in range(n + 1)]
        for name in names:
            svc.define_array(name, SHAPE)
        plan.arm()
        tickets = []
        for a, b in zip(names, names[1:]):
            tickets.append(
                svc.submit_lineage(a, b, relation=elementwise(a, b), op_name=f"op_{a}")
            )
        svc.flush(timeout=60)
        plan.disarm()
        svc.close()
        return tickets

    def _assert_durable_tickets_survive_reopen(self, root, tickets):
        reopened = DSLog.load(root)
        present = {(e.in_name, e.out_name) for e in reopened.catalog.entries()}
        durable, failed = 0, 0
        for ticket in tickets:
            assert ticket.done  # flush resolved everything, one way or the other
            if ticket.failed:
                failed += 1
                continue
            durable += 1
            entry = ticket._record
            pair = (entry.in_name, entry.out_name)
            assert pair in present, f"durable ticket lost on reopen: {pair}"
            # and the record bytes really hydrate from disk
            assert reopened.catalog.entry(*pair).backward is not None
        reopened.close()
        return durable, failed

    def test_fsync_fault_mid_batch_is_all_or_nothing(self, tmp_path):
        root = tmp_path / "db"
        plan = FaultPlan().on("segment.fsync", scope="shard-01", at=1, times=1)
        tickets = self._run_service(root, plan)
        assert plan.fired("segment.fsync") == 1
        durable, failed = self._assert_durable_tickets_survive_reopen(root, tickets)
        # the faulted publish failed its whole batch together
        assert failed >= 1
        # the retried publishes made later batches durable
        assert durable >= 1

    def test_commit_retry_republishes_the_failed_shard(self, tmp_path):
        # the fsync fault leaves the shard dirty; the next group commit
        # must re-publish it rather than silently dropping its batch
        root = tmp_path / "db"
        plan = FaultPlan().on("segment.fsync", at=2, times=2)
        tickets = self._run_service(root, plan)
        durable, _failed = self._assert_durable_tickets_survive_reopen(root, tickets)
        assert durable >= 1
        # reopened catalog is internally consistent: every entry hydrates
        reopened = DSLog.load(root)
        assert reopened.catalog.materialize_all() == 2 * len(reopened.catalog)
        assert reopened.scrub(repair=False)["clean"]
        reopened.close()
