"""The zero-copy storage fast path: mmap-backed segment readers, coalesced
group-commit writes, and the retire-not-delete protocol under live views.

The load-bearing guarantees:

* ``LineageStore.load_table`` serves records through one cached
  :class:`SegmentReader` per segment — zero per-record opens — and the
  hydrated tables are read-only narrow views into the mapped pages;
* ``SegmentWriter`` buffers appends and hands each batch to the OS as one
  write (+ one fsync on ``sync``), while readers that race the buffer get
  the pending bytes flushed on demand;
* compaction may retire (or outright delete) a mapped segment file while
  hydrated tables still hold views into it: the mapping stays alive
  through the tables' buffer chain until the last view is released.
"""

import numpy as np
import pytest

from repro import DSLog
from repro.core.relation import LineageRelation
from repro.storage.segments import (
    SEGMENT_HEADER_SIZE,
    SEGMENT_VERSION,
    SegmentReader,
    SegmentWriter,
    record_overhead,
    valid_length,
)

OVERHEAD = record_overhead(SEGMENT_VERSION)

SHAPE = (8,)


def elementwise(in_name, out_name, shape=SHAPE):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(
        pairs, shape, shape, in_name=in_name, out_name=out_name
    )


def build(root, n, **kwargs):
    log = DSLog(root, backend="segment", autosync=False, **kwargs)
    names = [f"A{i}" for i in range(n + 1)]
    for name in names:
        log.define_array(name, SHAPE)
    for a, b in zip(names, names[1:]):
        log.add_lineage(a, b, relation=elementwise(a, b), op_name=f"op_{a}")
    log.sync()
    return log, names


class TestSegmentReader:
    def test_reads_match_manifest_refs(self, tmp_path):
        path = tmp_path / "seg.seg"
        with SegmentWriter(path) as writer:
            refs = [writer.append(bytes([i]) * (10 + i)) for i in range(5)]
        reader = SegmentReader(path)
        for i, (offset, length) in enumerate(refs):
            payload = reader.read(offset, length)
            assert isinstance(payload, memoryview)
            assert bytes(payload) == bytes([i]) * (10 + i)
        reader.close()

    def test_prefix_mismatch_rejected(self, tmp_path):
        path = tmp_path / "seg.seg"
        with SegmentWriter(path) as writer:
            offset, length = writer.append(b"payload")
            writer.append(b"another-record")  # keeps the bad read in bounds
        reader = SegmentReader(path)
        with pytest.raises(ValueError, match="manifest expected"):
            reader.read(offset, length - 2)
        reader.close()

    def test_remaps_after_growth(self, tmp_path):
        path = tmp_path / "seg.seg"
        writer = SegmentWriter(path)
        o1, l1 = writer.append(b"first-record")
        writer.sync()
        reader = SegmentReader(path)
        assert bytes(reader.read(o1, l1)) == b"first-record"
        mapped_before = reader.mapped_size
        o2, l2 = writer.append(b"second-record-after-map")
        writer.sync()
        assert bytes(reader.read(o2, l2)) == b"second-record-after-map"
        assert reader.mapped_size > mapped_before
        reader.close()
        writer.close()

    def test_truncated_read_raises(self, tmp_path):
        path = tmp_path / "seg.seg"
        with SegmentWriter(path) as writer:
            writer.append(b"only")
        reader = SegmentReader(path)
        with pytest.raises(ValueError, match="truncated"):
            reader.read(SEGMENT_HEADER_SIZE, 10_000)
        reader.close()


class TestCoalescedWrites:
    def test_appends_buffer_until_flush(self, tmp_path):
        path = tmp_path / "seg.seg"
        writer = SegmentWriter(path)
        for i in range(10):
            writer.append(b"x" * 50)
        # only the eagerly-written header has reached the file
        assert path.stat().st_size == SEGMENT_HEADER_SIZE
        assert writer.pending_bytes == 10 * (OVERHEAD + 50)
        assert writer.size == SEGMENT_HEADER_SIZE + 10 * (OVERHEAD + 50)
        flushed = writer.sync()
        assert flushed == 10 * (OVERHEAD + 50)
        assert path.stat().st_size == writer.size
        assert valid_length(path) == writer.size
        # the whole batch went out as ONE coalesced write
        assert writer.coalesced_writes == 1
        assert writer.coalesced_records == 10
        writer.close()

    def test_store_reads_through_pending_batch(self, tmp_path):
        # a reader racing the group-commit buffer (cache evicted before the
        # commit flushed) must still see the appended record
        log, names = build(tmp_path / "db", 3)
        log.define_array("Z", SHAPE)
        entry = log.add_lineage(names[3], "Z", relation=elementwise(names[3], "Z"))
        assert log.store._writer.pending_bytes > 0  # not yet committed
        log.store.cache.clear()
        table = log.catalog.entry(names[3], "Z").backward
        assert table.out_name == "Z"
        assert entry is not None
        log.close()

    def test_group_commit_write_stats(self, tmp_path):
        log, _names = build(tmp_path / "db", 8)
        stats = log.store.write_stats()
        # 9 arrays -> 8 entries x 2 orientations (+ possible reuse-state
        # records), but the single sync coalesced them into very few writes
        assert stats["coalesced_records"] >= 16
        assert stats["coalesced_writes"] <= 3
        log.close()

    def test_unsynced_appends_do_not_survive_a_crash(self, tmp_path):
        # torn batch: appends never flushed are invisible after "crash"
        # (no close); the previously published generation stays intact
        root = tmp_path / "db"
        log, names = build(root, 3)
        log.define_array("Z", SHAPE)
        log.add_lineage(names[3], "Z", relation=elementwise(names[3], "Z"))
        # no sync, no close: drop the store like a killed process would
        segment = root / log.store.manifest.segments[-1]
        assert valid_length(segment) == segment.stat().st_size
        reopened = DSLog.load(root)
        assert len(reopened.catalog) == 3  # the unsynced entry is gone
        assert reopened.catalog.materialize_all() == 6
        reopened.close()


class TestMmapLifecycle:
    def test_hydrated_tables_are_narrow_readonly_views(self, tmp_path):
        log, names = build(tmp_path / "db", 2, gzip=False)
        log.close()
        reopened = DSLog.load(tmp_path / "db", gzip=False)
        table = reopened.catalog.entry(names[0], names[1]).backward
        assert table.key_lo.dtype == np.int8
        assert not table.key_lo.flags.writeable
        # the column's buffer chain bottoms out in the segment mmap
        base = table.key_lo
        while getattr(base, "base", None) is not None:
            base = base.base
        import mmap as mmap_mod

        assert isinstance(base, (memoryview, mmap_mod.mmap))
        reopened.close()

    def test_one_reader_per_segment(self, tmp_path):
        log, _names = build(tmp_path / "db", 20)
        log.close()
        reopened = DSLog.load(tmp_path / "db")
        reopened.catalog.materialize_all()
        stats = reopened.store.reader_stats()
        assert stats["open_readers"] == len(reopened.store.manifest.segments)
        assert stats["mapped_bytes"] > 0
        reopened.close()

    def test_compact_under_live_views(self, tmp_path):
        # hydrate -> compact (segments deleted) -> the hydrated table's
        # views must still read the original bytes from the retired mapping
        log, names = build(tmp_path / "db", 4, gzip=False)
        table = log.catalog.entry(names[0], names[1]).backward
        snapshot_cols = {
            name: np.array(getattr(table, name))
            for name in ("key_lo", "key_hi", "val_lo", "val_hi")
        }
        old_segments = list(log.store.manifest.segments)
        log.compact()
        for name in old_segments:
            assert not (tmp_path / "db" / name).exists()
        assert log.store.reader_stats()["open_readers"] == 0
        for name, expected in snapshot_cols.items():
            assert np.array_equal(getattr(table, name), expected)
        # and the table still answers queries from the unlinked mapping
        assert table.decompress() == elementwise(names[0], names[1])
        log.close()

    def test_pinned_snapshot_retires_instead_of_deleting(self, tmp_path):
        log, names = build(tmp_path / "db", 4)
        view = log.snapshot()
        hydrated = view.catalog.entry(names[1], names[2]).backward
        keep = np.array(hydrated.key_lo)
        old_segments = list(log.store.manifest.segments)
        stats = log.compact()
        assert stats["segments_retired"] == len(old_segments)
        for name in old_segments:
            assert (tmp_path / "db" / name).exists()  # retired, not deleted
        view.close()  # last pin released -> retired files removed
        for name in old_segments:
            assert not (tmp_path / "db" / name).exists()
        assert np.array_equal(hydrated.key_lo, keep)
        log.close()

    def test_retired_segment_readers_dropped_with_the_files(self, tmp_path):
        # a pinned snapshot resolving a DEAD ref (entry replaced before the
        # compaction, so no remap exists) re-opens a reader for the retired
        # segment; releasing the last pin must drop that reader along with
        # the files, not leak its mapping for the store's lifetime
        log, names = build(tmp_path / "db", 3)
        view = log.snapshot()
        log.add_lineage(names[0], names[1], relation=elementwise(names[0], names[1]),
                        op_name="v2", replace=True)
        log.sync()
        log.compact()  # old segments retired (the snapshot pin is held)
        old = view.catalog.entry(names[0], names[1]).backward  # dead-ref read
        assert old.out_name == names[1]
        retained = log.store.reader_stats()["open_readers"]
        assert retained >= 1
        view.close()  # last pin: retired files AND their readers go away
        live = set(log.store.manifest.segments)
        with log.store._reader_lock:
            assert set(log.store._readers) <= live
        log.close()

    def test_closed_reader_read_raises_file_not_found(self, tmp_path):
        # load_table's compaction-race retry hinges on this exact type
        path = tmp_path / "seg.seg"
        with SegmentWriter(path) as writer:
            offset, length = writer.append(b"payload")
        reader = SegmentReader(path)
        reader.close()
        with pytest.raises(FileNotFoundError):
            reader.read(offset, length)

    def test_sharded_reader_stats_aggregate(self, tmp_path):
        log = DSLog(tmp_path / "db", backend="sharded", num_shards=3, autosync=False)
        names = [f"A{i}" for i in range(6)]
        for name in names:
            log.define_array(name, SHAPE)
        for a, b in zip(names, names[1:]):
            log.add_lineage(a, b, relation=elementwise(a, b))
        log.sync()
        assert log.store.write_stats()["coalesced_records"] >= 10
        log.close()
        reopened = DSLog.load(tmp_path / "db")
        reopened.catalog.materialize_all()
        stats = reopened.store.reader_stats()
        assert stats["open_readers"] >= 2  # entries spread over the shards
        reopened.close()
