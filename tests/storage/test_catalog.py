"""Tests for the DSLog catalog layer."""

import pytest

from repro.core.provrc import compress
from repro.core.relation import LineageRelation
from repro.storage.catalog import (
    AmbiguousLineageError,
    ArrayInfo,
    Catalog,
    LineageConflictError,
    OperationRecord,
)


def relation(in_name="A", out_name="B", n=8):
    pairs = [((i,), (i,)) for i in range(n)]
    return LineageRelation.from_pairs(pairs, (n,), (n,), in_name=in_name, out_name=out_name)


class TestArrays:
    def test_define_and_lookup(self):
        catalog = Catalog()
        info = catalog.define_array("A", (4, 5))
        assert info == ArrayInfo("A", (4, 5))
        assert catalog.array("A").ncells == 20
        assert catalog.array("A").ndim == 2

    def test_redefine_same_shape_ok(self):
        catalog = Catalog()
        catalog.define_array("A", (4,))
        catalog.define_array("A", (4,))

    def test_redefine_different_shape_rejected(self):
        catalog = Catalog()
        catalog.define_array("A", (4,))
        with pytest.raises(ValueError):
            catalog.define_array("A", (5,))

    def test_unknown_array(self):
        with pytest.raises(KeyError):
            Catalog().array("missing")


class TestLineageEntries:
    def test_add_relation_and_orientations(self):
        catalog = Catalog()
        entry = catalog.add_relation(relation())
        assert entry.backward.key_side == "output"
        assert entry.forward.key_side == "input"
        assert entry.table_keyed_on("A").key_side == "input"
        assert entry.table_keyed_on("B").key_side == "output"

    def test_table_keyed_on_unknown_array(self):
        catalog = Catalog()
        entry = catalog.add_relation(relation())
        with pytest.raises(KeyError):
            entry.table_keyed_on("Z")

    def test_entry_between_directions(self):
        catalog = Catalog()
        catalog.add_relation(relation())
        entry, direction = catalog.entry_between("A", "B")
        assert direction == "forward"
        entry, direction = catalog.entry_between("B", "A")
        assert direction == "backward"

    def test_entry_between_missing(self):
        with pytest.raises(KeyError):
            Catalog().entry_between("A", "B")

    def test_add_compressed_validates_orientation(self):
        catalog = Catalog()
        rel = relation()
        backward = compress(rel, key="output")
        with pytest.raises(ValueError):
            catalog.add_compressed(backward, backward)

    def test_storage_bytes_positive_and_gzip_smaller_or_close(self):
        catalog = Catalog()
        catalog.add_relation(relation(n=1000))
        plain = catalog.storage_bytes(gzip=False)
        gz = catalog.storage_bytes(gzip=True)
        assert plain > 0 and gz > 0

    def test_len_counts_entries(self):
        catalog = Catalog()
        catalog.add_relation(relation("A", "B"))
        catalog.add_relation(relation("B", "C"))
        assert len(catalog) == 2
        assert len(catalog.entries()) == 2


class TestOverwriteSemantics:
    def test_silent_overwrite_rejected(self):
        catalog = Catalog()
        catalog.add_relation(relation())
        with pytest.raises(LineageConflictError):
            catalog.add_relation(relation())

    def test_explicit_replace_versions_the_entry(self):
        catalog = Catalog()
        first = catalog.add_relation(relation(), op_name="first")
        assert first.version == 1
        second = catalog.add_relation(relation(), op_name="second", replace=True)
        assert second.version == 2
        assert catalog.entry("A", "B").op_name == "second"
        assert len(catalog) == 1

    def test_replace_bumps_catalog_version_for_cache_invalidation(self):
        catalog = Catalog()
        catalog.add_relation(relation())
        before = catalog.version
        catalog.add_relation(relation(), replace=True)
        assert catalog.version > before

    def test_entry_between_ambiguous_orientations(self):
        catalog = Catalog()
        catalog.add_relation(relation("A", "B"))
        catalog.add_relation(relation("B", "A"))
        with pytest.raises(AmbiguousLineageError):
            catalog.entry_between("A", "B")
        # the explicit lookups stay unambiguous
        assert catalog.entry("A", "B").in_name == "A"
        assert catalog.entry("B", "A").in_name == "B"

    def test_conflict_error_is_a_value_error(self):
        catalog = Catalog()
        catalog.add_relation(relation())
        with pytest.raises(ValueError):
            catalog.add_relation(relation())


class TestOperations:
    def test_operation_records(self):
        catalog = Catalog()
        record = OperationRecord(op_name="neg", in_arrs=("A",), out_arrs=("B",))
        catalog.add_operation(record)
        assert catalog.operations[0].op_name == "neg"
