"""Tests for DSLog on-disk persistence (write at ingest, re-open with load)."""

import numpy as np
import pytest

from repro import DSLog
from repro.core.relation import LineageRelation


def elementwise(shape, in_name, out_name):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def axis_sum(rows, cols, in_name, out_name):
    pairs = [((r,), (r, c)) for r in range(rows) for c in range(cols)]
    return LineageRelation.from_pairs(pairs, (rows,), (rows, cols), in_name=in_name, out_name=out_name)


class TestLoad:
    def _write(self, root, gzip=True):
        log = DSLog(root=root, gzip=gzip)
        log.define_array("A", (8, 3))
        log.define_array("B", (8, 3))
        log.define_array("C", (8,))
        log.add_lineage("A", "B", relation=elementwise((8, 3), "A", "B"))
        log.add_lineage("B", "C", relation=axis_sum(8, 3, "B", "C"))
        return log

    def test_roundtrip_gzip(self, tmp_path):
        original = self._write(tmp_path / "db")
        reopened = DSLog.load(tmp_path / "db")
        assert set(reopened.catalog.arrays) == {"A", "B", "C"}
        assert len(reopened.catalog) == 2
        expected = original.prov_query(["C", "B", "A"], [(4,)]).to_cells()
        assert reopened.prov_query(["C", "B", "A"], [(4,)]).to_cells() == expected

    def test_roundtrip_plain(self, tmp_path):
        self._write(tmp_path / "db", gzip=False)
        reopened = DSLog.load(tmp_path / "db", gzip=False)
        assert reopened.prov_query(["A", "B", "C"], [(2, 1)]).to_cells() == {(2,)}

    def test_forward_queries_after_load(self, tmp_path):
        self._write(tmp_path / "db")
        reopened = DSLog.load(tmp_path / "db")
        assert reopened.prov_query(["A", "B", "C"], [(5, 0)]).to_cells() == {(5,)}

    def test_load_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        log = DSLog.load(tmp_path / "empty")
        assert len(log.catalog) == 0

    def test_storage_bytes_preserved(self, tmp_path):
        original = self._write(tmp_path / "db")
        reopened = DSLog.load(tmp_path / "db")
        assert reopened.storage_bytes() == original.storage_bytes()
