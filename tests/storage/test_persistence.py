"""Tests for DSLog on-disk persistence (write at ingest, re-open with load)."""

import numpy as np

from repro import DSLog
from repro.core.relation import LineageRelation


def elementwise(shape, in_name, out_name):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def axis_sum(rows, cols, in_name, out_name):
    pairs = [((r,), (r, c)) for r in range(rows) for c in range(cols)]
    return LineageRelation.from_pairs(pairs, (rows,), (rows, cols), in_name=in_name, out_name=out_name)


class TestLoad:
    def _write(self, root, gzip=True):
        log = DSLog(root=root, gzip=gzip)
        log.define_array("A", (8, 3))
        log.define_array("B", (8, 3))
        log.define_array("C", (8,))
        log.add_lineage("A", "B", relation=elementwise((8, 3), "A", "B"))
        log.add_lineage("B", "C", relation=axis_sum(8, 3, "B", "C"))
        return log

    def test_roundtrip_gzip(self, tmp_path):
        original = self._write(tmp_path / "db")
        reopened = DSLog.load(tmp_path / "db")
        assert set(reopened.catalog.arrays) == {"A", "B", "C"}
        assert len(reopened.catalog) == 2
        expected = original.prov_query(["C", "B", "A"], [(4,)]).to_cells()
        assert reopened.prov_query(["C", "B", "A"], [(4,)]).to_cells() == expected

    def test_roundtrip_plain(self, tmp_path):
        self._write(tmp_path / "db", gzip=False)
        reopened = DSLog.load(tmp_path / "db", gzip=False)
        assert reopened.prov_query(["A", "B", "C"], [(2, 1)]).to_cells() == {(2,)}

    def test_forward_queries_after_load(self, tmp_path):
        self._write(tmp_path / "db")
        reopened = DSLog.load(tmp_path / "db")
        assert reopened.prov_query(["A", "B", "C"], [(5, 0)]).to_cells() == {(5,)}

    def test_load_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        log = DSLog.load(tmp_path / "empty")
        assert len(log.catalog) == 0

    def test_storage_bytes_preserved(self, tmp_path):
        original = self._write(tmp_path / "db")
        reopened = DSLog.load(tmp_path / "db")
        assert reopened.storage_bytes() == original.storage_bytes()


class TestSegmentBackendRoundTrip:
    """Regression for the metadata loss of the legacy loader: op names,
    operation records and the reuse-predictor state must all survive a
    close/reopen cycle on the segment backend."""

    def _write(self, root):
        log = DSLog(root=root, backend="segment")
        log.define_array("A", (8, 3))
        log.define_array("B", (8, 3))
        log.define_array("C", (8,))
        log.add_lineage("A", "B", relation=elementwise((8, 3), "A", "B"), op_name="negative")
        log.add_lineage("B", "C", relation=axis_sum(8, 3, "B", "C"), op_name="sum_axis1")
        return log

    def test_roundtrip_queries(self, tmp_path):
        original = self._write(tmp_path / "db")
        expected = original.prov_query(["C", "B", "A"], [(4,)]).to_cells()
        original.close()
        reopened = DSLog.load(tmp_path / "db")
        assert reopened.backend == "segment"
        assert set(reopened.catalog.arrays) == {"A", "B", "C"}
        assert reopened.prov_query(["C", "B", "A"], [(4,)]).to_cells() == expected
        assert reopened.prov_query(["A", "B", "C"], [(5, 0)]).to_cells() == {(5,)}

    def test_op_names_and_reused_flag_survive(self, tmp_path):
        log = self._write(tmp_path / "db")
        log.close()
        reopened = DSLog.load(tmp_path / "db")
        assert reopened.catalog.entry("A", "B").op_name == "negative"
        assert reopened.catalog.entry("B", "C").op_name == "sum_axis1"
        assert reopened.catalog.entry("A", "B").reused is False

    def test_operation_records_survive(self, tmp_path):
        log = DSLog(root=tmp_path / "db", backend="segment")
        log.define_array("A", (6,))
        log.define_array("B", (6,))
        record = log.register_operation(
            "negative",
            in_arrs=["A"],
            out_arrs=["B"],
            relations={("A", "B"): elementwise((6,), "A", "B")},
            input_data={"A": np.arange(6.0)},
            op_args={"dtype": "float64"},
        )
        log.close()
        reopened = DSLog.load(tmp_path / "db")
        assert len(reopened.catalog.operations) == 1
        restored = reopened.catalog.operations[0]
        assert restored.op_name == record.op_name
        assert restored.in_arrs == ("A",)
        assert restored.out_arrs == ("B",)
        assert restored.op_args == {"dtype": "float64"}
        assert restored.entries == [("A", "B")]

    def test_reuse_state_survives_and_keeps_predicting(self, tmp_path):
        log = DSLog(root=tmp_path / "db", backend="segment")
        for name in ("A", "B", "C", "D"):
            log.define_array(name, (8,))
        # two confirmations in the first session promote the dim mapping
        for src, dst in [("A", "B"), ("C", "D")]:
            log.register_operation(
                "negative",
                in_arrs=[src],
                out_arrs=[dst],
                relations={(src, dst): elementwise((8,), src, dst)},
                input_data={src: np.arange(8.0) * (1 if src == "A" else 3)},
            )
        log.close()

        reopened = DSLog.load(tmp_path / "db")
        for name in ("E", "F"):
            reopened.define_array(name, (8,))
        # the third call, in a fresh session, must reuse without capture
        record = reopened.register_operation(
            "negative",
            in_arrs=["E"],
            out_arrs=["F"],
            relations={("E", "F"): elementwise((8,), "E", "F")},
            input_data={"E": np.arange(8.0) + 7},
        )
        assert record.reuse_level == "dim"
        assert reopened.catalog.entry("E", "F").reused is True
        assert reopened.prov_query(["F", "E"], [(2,)]).to_cells() == {(2,)}

    def test_reuse_state_hydrates_lazily(self, tmp_path):
        log = DSLog(root=tmp_path / "db", backend="segment")
        log.define_array("A", (8,))
        log.define_array("B", (8,))
        log.register_operation(
            "negative",
            in_arrs=["A"],
            out_arrs=["B"],
            relations={("A", "B"): elementwise((8,), "A", "B")},
            input_data={"A": np.arange(8.0)},
        )
        log.close()
        reopened = DSLog.load(tmp_path / "db")
        assert reopened._reuse is None  # not hydrated by the open
        assert reopened.store.tables_deserialized == 0
        assert reopened.reuse.stats()["base_entries"] == 1  # hydrates on touch

    def test_numpy_op_args_roundtrip_as_native_numbers(self, tmp_path):
        log = DSLog(root=tmp_path / "db", backend="segment")
        log.define_array("A", (4,))
        log.define_array("B", (4,))
        log.register_operation(
            "scale",
            in_arrs=["A"],
            out_arrs=["B"],
            relations={("A", "B"): elementwise((4,), "A", "B")},
            op_args={"factor": np.float64(0.5), "k": np.int64(3)},
        )
        log.close()
        reopened = DSLog.load(tmp_path / "db")
        assert reopened.catalog.operations[0].op_args == {"factor": 0.5, "k": 3}

    def test_reuse_confirmations_restored_from_manifest(self, tmp_path):
        log = DSLog(root=tmp_path / "db", backend="segment", reuse_confirmations=3)
        log.define_array("A", (4,))
        log.define_array("B", (4,))
        log.register_operation(
            "negative",
            in_arrs=["A"],
            out_arrs=["B"],
            relations={("A", "B"): elementwise((4,), "A", "B")},
        )
        log.close()
        reopened = DSLog.load(tmp_path / "db")
        assert reopened.reuse.confirmations_required == 3

    def test_load_accepts_explicit_backend_kwarg(self, tmp_path):
        log = self._write(tmp_path / "db")
        log.close()
        reopened = DSLog.load(tmp_path / "db", backend="segment")
        assert reopened.backend == "segment"

    def test_legacy_directory_still_loads(self, tmp_path):
        legacy = DSLog(root=tmp_path / "old")
        legacy.define_array("A", (4,))
        legacy.define_array("B", (4,))
        legacy.add_lineage("A", "B", relation=elementwise((4,), "A", "B"))
        reopened = DSLog.load(tmp_path / "old")
        assert reopened.backend == "memory"
        assert reopened.prov_query(["B", "A"], [(1,)]).to_cells() == {(1,)}
