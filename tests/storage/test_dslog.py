"""End-to-end tests for the DSLog public API."""

import numpy as np
import pytest

from repro import DSLog
from repro.core.query import CellBoxSet
from repro.core.reference import query_path_reference
from repro.core.relation import LineageRelation


def elementwise(shape, in_name, out_name):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def axis_sum(rows, cols, in_name, out_name):
    pairs = [((r,), (r, c)) for r in range(rows) for c in range(cols)]
    return LineageRelation.from_pairs(pairs, (rows,), (rows, cols), in_name=in_name, out_name=out_name)


def build_pipeline(log: DSLog):
    """A (6,4) -> B (6,4) element-wise -> C (6,) axis sum."""
    log.define_array("A", (6, 4))
    log.define_array("B", (6, 4))
    log.define_array("C", (6,))
    log.add_lineage("A", "B", relation=elementwise((6, 4), "A", "B"), op_name="negative")
    log.add_lineage("B", "C", relation=axis_sum(6, 4, "B", "C"), op_name="sum_axis1")


class TestDefineAndIngest:
    def test_define_array(self):
        log = DSLog()
        info = log.define_array("A", (3, 2))
        assert info.shape == (3, 2)

    def test_add_lineage_from_relation(self):
        log = DSLog()
        build_pipeline(log)
        assert len(log.catalog) == 2

    def test_add_lineage_from_capture(self):
        log = DSLog()
        log.define_array("A", (3, 2))
        log.define_array("B", (3,))
        log.add_lineage("A", "B", capture=lambda out: [(out[0], c) for c in range(2)])
        entry = log.catalog.entry("A", "B")
        assert entry.backward.decompress().backward([(1,)]) == {(1, 0), (1, 1)}

    def test_add_lineage_requires_relation_or_capture(self):
        log = DSLog()
        log.define_array("A", (3,))
        log.define_array("B", (3,))
        with pytest.raises(ValueError):
            log.add_lineage("A", "B")

    def test_shape_mismatch_rejected(self):
        log = DSLog()
        log.define_array("A", (4,))
        log.define_array("B", (4,))
        wrong = elementwise((5,), "A", "B")
        with pytest.raises(ValueError):
            log.add_lineage("A", "B", relation=wrong)

    def test_on_disk_flush(self, tmp_path):
        log = DSLog(root=tmp_path / "db")
        build_pipeline(log)
        files = list((tmp_path / "db").glob("*.provrc.gz"))
        assert len(files) == 2
        assert log.storage_bytes() > 0


class TestQueries:
    def test_forward_path_query(self):
        log = DSLog()
        build_pipeline(log)
        cells = [(0, 0), (3, 2)]
        result = log.prov_query(["A", "B", "C"], cells)
        expected = query_path_reference(
            [elementwise((6, 4), "A", "B"), axis_sum(6, 4, "B", "C")],
            ["forward", "forward"],
            cells,
        )
        assert result.to_cells() == expected

    def test_backward_path_query(self):
        log = DSLog()
        build_pipeline(log)
        result = log.prov_query(["C", "B", "A"], [(2,)])
        assert result.to_cells() == {(2, c) for c in range(4)}

    def test_query_with_slices(self):
        log = DSLog()
        build_pipeline(log)
        result = log.prov_query(["A", "B", "C"], [slice(0, 2), slice(None)])
        assert result.to_cells() == {(0,), (1,)}

    def test_query_with_boxset(self):
        log = DSLog()
        build_pipeline(log)
        query = CellBoxSet.from_boxes("C", (6,), [[(0, 1)]])
        result = log.prov_query(["C", "B", "A"], query)
        assert result.count_cells() == 8

    def test_boxset_wrong_array_rejected(self):
        log = DSLog()
        build_pipeline(log)
        query = CellBoxSet.from_boxes("A", (6, 4), [[(0, 1), (0, 1)]])
        with pytest.raises(ValueError):
            log.prov_query(["C", "B", "A"], query)

    def test_short_path_rejected(self):
        log = DSLog()
        build_pipeline(log)
        with pytest.raises(ValueError):
            log.prov_query(["A"], [(0, 0)])

    def test_unknown_array_rejected(self):
        log = DSLog()
        build_pipeline(log)
        with pytest.raises(KeyError):
            log.prov_query(["A", "Z"], [(0, 0)])

    def test_unconnected_path_rejected(self):
        log = DSLog()
        build_pipeline(log)
        log.define_array("D", (5,))
        with pytest.raises(KeyError):
            log.prov_query(["A", "D"], [(0, 0)])


class TestQueryCaches:
    """Invalidation behavior of DSLog's path cache and query-box cache."""

    def test_path_cache_hit_on_repeat_query(self):
        log = DSLog()
        build_pipeline(log)
        log.prov_query(["A", "B", "C"], [(0, 0)])
        key = ("A", "B", "C")
        version, tables = log._path_cache[key]
        assert version == log.catalog.version
        log.prov_query(["A", "B", "C"], [(1, 1)])
        assert log._path_cache[key][1] is tables  # same resolved tables

    def test_path_cache_invalidated_by_version_bump(self):
        log = DSLog()
        build_pipeline(log)
        assert log.prov_query(["A", "B"], [(0, 0)]).to_cells() == {(0, 0)}
        stale_version = log._path_cache[("A", "B")][0]
        # replace the A->B lineage with a row-shifted variant:
        # output (r, c) now derives from input ((r + 1) % 6, c)
        shifted = [((r, c), ((r + 1) % 6, c)) for r in range(6) for c in range(4)]
        relation = LineageRelation.from_pairs(shifted, (6, 4), (6, 4), in_name="A", out_name="B")
        log.add_lineage("A", "B", relation=relation, replace=True)
        assert log.catalog.version > stale_version
        # the query must see the new entry, not the cached tables
        assert log.prov_query(["A", "B"], [(0, 0)]).to_cells() == {(5, 0)}
        assert log._path_cache[("A", "B")][0] == log.catalog.version

    def test_path_cache_wholesale_clear_at_capacity(self):
        log = DSLog()
        build_pipeline(log)
        version = log.catalog.version
        for i in range(128):
            log._path_cache[("X", f"Y{i}")] = (version, [])
        assert len(log._path_cache) == 128
        log.prov_query(["A", "B"], [(0, 0)])
        # the 128-entry cap triggers a wholesale clear before inserting
        assert set(log._path_cache) == {("A", "B")}

    def test_query_box_cache_reuses_conversion(self):
        log = DSLog()
        build_pipeline(log)
        cells = [(0, 0), (3, 2)]
        log.prov_query(["A", "B"], cells)
        cached = log._query_box_cache[("A", tuple(cells))]
        log.prov_query(["A", "B"], cells)
        assert log._query_box_cache[("A", tuple(cells))] is cached

    def test_query_box_cache_wholesale_clear_at_capacity(self):
        log = DSLog()
        build_pipeline(log)
        for i in range(128):
            log._query_box_cache[("X", ((i,),))] = None
        log.prov_query(["A", "B"], [(2, 2)])
        assert set(log._query_box_cache) == {("A", ((2, 2),))}

    def test_slice_queries_bypass_box_cache(self):
        log = DSLog()
        build_pipeline(log)
        result = log.prov_query(["A", "B", "C"], [slice(0, 2), slice(None)])
        assert result.to_cells() == {(0,), (1,)}
        assert len(log._query_box_cache) == 0

    def test_unhashable_cells_bypass_box_cache(self):
        log = DSLog()
        build_pipeline(log)
        result = log.prov_query(["A", "B", "C"], [[0, 0], [1, 1]])
        assert result.to_cells() == {(0,), (1,)}
        assert len(log._query_box_cache) == 0


class TestCapturePairValidation:
    def test_single_pair_mis_keyed_relations_rejected(self):
        log = DSLog()
        log.define_array("A", (4,))
        log.define_array("B", (4,))
        with pytest.raises(ValueError, match="only \\(input, output\\) pair"):
            log.register_operation(
                "negative",
                in_arrs=["A"],
                out_arrs=["B"],
                relations={("X", "Y"): elementwise((4,), "A", "B")},
            )

    def test_correctly_keyed_single_pair_accepted(self):
        log = DSLog()
        log.define_array("A", (4,))
        log.define_array("B", (4,))
        record = log.register_operation(
            "negative",
            in_arrs=["A"],
            out_arrs=["B"],
            relations={("A", "B"): elementwise((4,), "A", "B")},
        )
        assert record.entries == [("A", "B")]

    def test_captures_win_over_mis_keyed_relations(self):
        log = DSLog()
        log.define_array("A", (3,))
        log.define_array("B", (3,))
        record = log.register_operation(
            "identity",
            in_arrs=["A"],
            out_arrs=["B"],
            relations={("X", "Y"): elementwise((3,), "A", "B")},
            captures={("A", "B"): lambda out: [out]},
        )
        assert record.entries == [("A", "B")]
        assert log.prov_query(["B", "A"], [(1,)]).to_cells() == {(1,)}

    def test_multi_pair_operations_skip_missing_pairs(self):
        log = DSLog()
        for name in ("A", "B", "C"):
            log.define_array(name, (4,))
        record = log.register_operation(
            "stack",
            in_arrs=["A", "B"],
            out_arrs=["C"],
            relations={("A", "C"): elementwise((4,), "A", "C")},
        )
        # the (B, C) pair has no lineage and is skipped, not guessed
        assert record.entries == [("A", "C")]


class TestRegisterOperationAndReuse:
    def test_register_operation_with_relation(self):
        log = DSLog()
        log.define_array("A", (8,))
        log.define_array("B", (8,))
        record = log.register_operation(
            "negative",
            in_arrs=["A"],
            out_arrs=["B"],
            relations={("A", "B"): elementwise((8,), "A", "B")},
            input_data={"A": np.arange(8.0)},
        )
        assert record.reuse_level is None
        assert log.catalog.entry("A", "B").backward.decompress() == elementwise((8,), "A", "B")

    def test_dim_reuse_after_confirmation(self):
        log = DSLog()
        for name in ("A", "B", "C", "D", "E", "F"):
            log.define_array(name, (8,))
        pairs = [("A", "B"), ("C", "D"), ("E", "F")]
        datas = [np.arange(8.0), np.arange(8.0) * 2, np.arange(8.0) + 5]
        records = []
        for (src, dst), data in zip(pairs, datas):
            records.append(
                log.register_operation(
                    "negative",
                    in_arrs=[src],
                    out_arrs=[dst],
                    relations={(src, dst): elementwise((8,), src, dst)},
                    input_data={src: data},
                )
            )
        # first call captures, second confirms the dim mapping, third reuses it
        assert records[0].reuse_level is None
        assert records[1].reuse_level is None
        assert records[2].reuse_level == "dim"
        # the reused entry still answers queries correctly
        assert log.prov_query(["F", "E"], [(3,)]).to_cells() == {(3,)}

    def test_gen_reuse_across_shapes(self):
        log = DSLog()
        shapes = [(6,), (9,), (14,)]
        names = [("A1", "B1"), ("A2", "B2"), ("A3", "B3")]
        records = []
        for shape, (src, dst) in zip(shapes, names):
            log.define_array(src, shape)
            log.define_array(dst, shape)
            records.append(
                log.register_operation(
                    "negative",
                    in_arrs=[src],
                    out_arrs=[dst],
                    relations={(src, dst): elementwise(shape, src, dst)},
                    input_data={src: np.arange(float(shape[0]))},
                )
            )
        assert records[2].reuse_level in ("dim", "gen")
        assert records[2].reuse_level == "gen"
        assert log.prov_query(["A3", "B3"], [(10,)]).to_cells() == {(10,)}

    def test_reuse_disabled(self):
        log = DSLog()
        log.define_array("A", (4,))
        log.define_array("B", (4,))
        log.define_array("C", (4,))
        log.define_array("D", (4,))
        for src, dst in [("A", "B"), ("C", "D")]:
            record = log.register_operation(
                "negative",
                in_arrs=[src],
                out_arrs=[dst],
                relations={(src, dst): elementwise((4,), src, dst)},
                input_data={src: np.zeros(4)},
                reuse=False,
            )
            assert record.reuse_level is None
