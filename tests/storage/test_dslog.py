"""End-to-end tests for the DSLog public API."""

import numpy as np
import pytest

from repro import DSLog
from repro.core.query import CellBoxSet
from repro.core.reference import query_path_reference
from repro.core.relation import LineageRelation


def elementwise(shape, in_name, out_name):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def axis_sum(rows, cols, in_name, out_name):
    pairs = [((r,), (r, c)) for r in range(rows) for c in range(cols)]
    return LineageRelation.from_pairs(pairs, (rows,), (rows, cols), in_name=in_name, out_name=out_name)


def build_pipeline(log: DSLog):
    """A (6,4) -> B (6,4) element-wise -> C (6,) axis sum."""
    log.define_array("A", (6, 4))
    log.define_array("B", (6, 4))
    log.define_array("C", (6,))
    log.add_lineage("A", "B", relation=elementwise((6, 4), "A", "B"), op_name="negative")
    log.add_lineage("B", "C", relation=axis_sum(6, 4, "B", "C"), op_name="sum_axis1")


class TestDefineAndIngest:
    def test_define_array(self):
        log = DSLog()
        info = log.define_array("A", (3, 2))
        assert info.shape == (3, 2)

    def test_add_lineage_from_relation(self):
        log = DSLog()
        build_pipeline(log)
        assert len(log.catalog) == 2

    def test_add_lineage_from_capture(self):
        log = DSLog()
        log.define_array("A", (3, 2))
        log.define_array("B", (3,))
        log.add_lineage("A", "B", capture=lambda out: [(out[0], c) for c in range(2)])
        entry = log.catalog.entry("A", "B")
        assert entry.backward.decompress().backward([(1,)]) == {(1, 0), (1, 1)}

    def test_add_lineage_requires_relation_or_capture(self):
        log = DSLog()
        log.define_array("A", (3,))
        log.define_array("B", (3,))
        with pytest.raises(ValueError):
            log.add_lineage("A", "B")

    def test_shape_mismatch_rejected(self):
        log = DSLog()
        log.define_array("A", (4,))
        log.define_array("B", (4,))
        wrong = elementwise((5,), "A", "B")
        with pytest.raises(ValueError):
            log.add_lineage("A", "B", relation=wrong)

    def test_on_disk_flush(self, tmp_path):
        log = DSLog(root=tmp_path / "db")
        build_pipeline(log)
        files = list((tmp_path / "db").glob("*.provrc.gz"))
        assert len(files) == 2
        assert log.storage_bytes() > 0


class TestQueries:
    def test_forward_path_query(self):
        log = DSLog()
        build_pipeline(log)
        cells = [(0, 0), (3, 2)]
        result = log.prov_query(["A", "B", "C"], cells)
        expected = query_path_reference(
            [elementwise((6, 4), "A", "B"), axis_sum(6, 4, "B", "C")],
            ["forward", "forward"],
            cells,
        )
        assert result.to_cells() == expected

    def test_backward_path_query(self):
        log = DSLog()
        build_pipeline(log)
        result = log.prov_query(["C", "B", "A"], [(2,)])
        assert result.to_cells() == {(2, c) for c in range(4)}

    def test_query_with_slices(self):
        log = DSLog()
        build_pipeline(log)
        result = log.prov_query(["A", "B", "C"], [slice(0, 2), slice(None)])
        assert result.to_cells() == {(0,), (1,)}

    def test_query_with_boxset(self):
        log = DSLog()
        build_pipeline(log)
        query = CellBoxSet.from_boxes("C", (6,), [[(0, 1)]])
        result = log.prov_query(["C", "B", "A"], query)
        assert result.count_cells() == 8

    def test_boxset_wrong_array_rejected(self):
        log = DSLog()
        build_pipeline(log)
        query = CellBoxSet.from_boxes("A", (6, 4), [[(0, 1), (0, 1)]])
        with pytest.raises(ValueError):
            log.prov_query(["C", "B", "A"], query)

    def test_short_path_rejected(self):
        log = DSLog()
        build_pipeline(log)
        with pytest.raises(ValueError):
            log.prov_query(["A"], [(0, 0)])

    def test_unknown_array_rejected(self):
        log = DSLog()
        build_pipeline(log)
        with pytest.raises(KeyError):
            log.prov_query(["A", "Z"], [(0, 0)])

    def test_unconnected_path_rejected(self):
        log = DSLog()
        build_pipeline(log)
        log.define_array("D", (5,))
        with pytest.raises(KeyError):
            log.prov_query(["A", "D"], [(0, 0)])


class TestRegisterOperationAndReuse:
    def test_register_operation_with_relation(self):
        log = DSLog()
        log.define_array("A", (8,))
        log.define_array("B", (8,))
        record = log.register_operation(
            "negative",
            in_arrs=["A"],
            out_arrs=["B"],
            relations={("A", "B"): elementwise((8,), "A", "B")},
            input_data={"A": np.arange(8.0)},
        )
        assert record.reuse_level is None
        assert log.catalog.entry("A", "B").backward.decompress() == elementwise((8,), "A", "B")

    def test_dim_reuse_after_confirmation(self):
        log = DSLog()
        for name in ("A", "B", "C", "D", "E", "F"):
            log.define_array(name, (8,))
        pairs = [("A", "B"), ("C", "D"), ("E", "F")]
        datas = [np.arange(8.0), np.arange(8.0) * 2, np.arange(8.0) + 5]
        records = []
        for (src, dst), data in zip(pairs, datas):
            records.append(
                log.register_operation(
                    "negative",
                    in_arrs=[src],
                    out_arrs=[dst],
                    relations={(src, dst): elementwise((8,), src, dst)},
                    input_data={src: data},
                )
            )
        # first call captures, second confirms the dim mapping, third reuses it
        assert records[0].reuse_level is None
        assert records[1].reuse_level is None
        assert records[2].reuse_level == "dim"
        # the reused entry still answers queries correctly
        assert log.prov_query(["F", "E"], [(3,)]).to_cells() == {(3,)}

    def test_gen_reuse_across_shapes(self):
        log = DSLog()
        shapes = [(6,), (9,), (14,)]
        names = [("A1", "B1"), ("A2", "B2"), ("A3", "B3")]
        records = []
        for shape, (src, dst) in zip(shapes, names):
            log.define_array(src, shape)
            log.define_array(dst, shape)
            records.append(
                log.register_operation(
                    "negative",
                    in_arrs=[src],
                    out_arrs=[dst],
                    relations={(src, dst): elementwise(shape, src, dst)},
                    input_data={src: np.arange(float(shape[0]))},
                )
            )
        assert records[2].reuse_level in ("dim", "gen")
        assert records[2].reuse_level == "gen"
        assert log.prov_query(["A3", "B3"], [(10,)]).to_cells() == {(10,)}

    def test_reuse_disabled(self):
        log = DSLog()
        log.define_array("A", (4,))
        log.define_array("B", (4,))
        log.define_array("C", (4,))
        log.define_array("D", (4,))
        for src, dst in [("A", "B"), ("C", "D")]:
            record = log.register_operation(
                "negative",
                in_arrs=[src],
                out_arrs=[dst],
                relations={(src, dst): elementwise((4,), src, dst)},
                input_data={src: np.zeros(4)},
                reuse=False,
            )
            assert record.reuse_level is None
