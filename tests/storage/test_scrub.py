"""Scrub-and-repair: every injected corruption class must be detected, and
repair must heal with zero valid-record loss.

Corruption classes exercised (against a catalog whose ground truth we can
recompute): a flipped payload byte mid-record (CRC mismatch), a torn tail,
a segment truncated mid-record, a segment deleted outright, and an orphan
segment file.  Repair is verified three ways: the catalog still answers
every query correctly, a second scrub comes back clean, and a cold reopen
from disk sees the healed state.
"""

import json

import numpy as np
import pytest

from repro import DSLog
from repro.core.relation import LineageRelation
from repro.storage.manifest import MANIFEST_NAME, load_manifest
from repro.storage.scrub import QUARANTINE_DIR
from repro.storage.segments import SEGMENT_VERSION, record_overhead
from repro.storage.store import TableRef
from repro.tools.scrub import main as scrub_main

SHAPE = (4,)
OVERHEAD = record_overhead(SEGMENT_VERSION)


def elementwise(in_name, out_name, shape=SHAPE):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(
        pairs, shape, shape, in_name=in_name, out_name=out_name
    )


def build(root, n, backend="segment", **kwargs):
    log = DSLog(root, backend=backend, autosync=False, **kwargs)
    names = [f"A{i}" for i in range(n + 1)]
    for name in names:
        log.define_array(name, SHAPE)
    for a, b in zip(names, names[1:]):
        log.add_lineage(a, b, relation=elementwise(a, b), op_name=f"op_{a}")
    log.sync()
    log.close()
    return names


def flip_payload_byte(root, ref: TableRef) -> None:
    """Corrupt one byte inside the payload a manifest ref addresses."""
    path = root / ref.segment
    data = bytearray(path.read_bytes())
    target = ref.offset + OVERHEAD + ref.length // 2
    data[target] ^= 0xFF
    path.write_bytes(bytes(data))


def entry_ref(root, index=0, orient="backward") -> TableRef:
    manifest = load_manifest(root)
    return TableRef.from_json(manifest.entries[index][orient])


def redirect_ref(root, victim=0, donor=1, orient="forward") -> None:
    """Point one entry's ref at another entry's (perfectly valid) record."""
    path = root / MANIFEST_NAME
    data = json.loads(path.read_text())
    data["entries"][victim][orient] = dict(data["entries"][donor][orient])
    path.write_text(json.dumps(data))


def assert_fully_readable(root, names):
    """The zero-loss check: reopen cold and recompute every entry."""
    log = DSLog.load(root, autosync=False)
    try:
        assert log.catalog.materialize_all() == 2 * (len(names) - 1)
        for a, b in zip(names, names[1:]):
            assert log.prov_query([a, b], [(1,)]).to_cells() == {(1,)}
            assert log.prov_query([b, a], [(2,)]).to_cells() == {(2,)}
    finally:
        log.close()


class TestDetect:
    def test_clean_catalog_reports_clean(self, tmp_path):
        root = tmp_path / "db"
        build(root, 4)
        log = DSLog.load(root, autosync=False)
        report = log.scrub(repair=False)
        log.close()
        assert report["clean"]
        assert report["repaired"] is False
        assert report["records_checked"] >= 8
        assert not report["corrupt_records"]

    def test_flipped_byte_detected_as_checksum(self, tmp_path):
        root = tmp_path / "db"
        build(root, 3)
        ref = entry_ref(root, index=1, orient="backward")
        flip_payload_byte(root, ref)
        log = DSLog.load(root, autosync=False)
        report = log.scrub(repair=False)
        log.close()
        assert not report["clean"]
        classes = {r["class"] for r in report["corrupt_records"]}
        assert classes == {"checksum"}
        assert report["corrupt_records"][0]["kind"] == "entry-backward"
        assert any(
            "checksum-mismatch" in d["reason"] for d in report["damaged_segments"]
        )

    def test_torn_tail_detected(self, tmp_path):
        root = tmp_path / "db"
        build(root, 3)
        segment = root / load_manifest(root).segments[-1]
        with open(segment, "ab") as fh:
            fh.write((5000).to_bytes(4, "little") + b"short")
        log = DSLog.load(root, autosync=False)
        report = log.scrub(repair=False)
        log.close()
        assert not report["clean"]
        assert not report["corrupt_records"]  # every referenced record intact
        [damage] = report["damaged_segments"]
        assert "torn" in damage["reason"]
        assert damage["torn_bytes"] == 4 + len(b"short")

    def test_truncated_segment_detected(self, tmp_path):
        root = tmp_path / "db"
        build(root, 3)
        manifest = load_manifest(root)
        segment = root / manifest.segments[-1]
        last = max(
            (TableRef.from_json(row[o]) for row in manifest.entries for o in ("backward", "forward")),
            key=lambda r: r.offset,
        )
        with open(segment, "r+b") as fh:
            fh.truncate(last.offset + OVERHEAD + last.length // 2)
        log = DSLog.load(root, autosync=False)
        report = log.scrub(repair=False)
        log.close()
        assert not report["clean"]
        assert any(r["class"] == "truncated" for r in report["corrupt_records"])

    def test_missing_segment_detected(self, tmp_path):
        root = tmp_path / "db"
        build(root, 3)
        (root / load_manifest(root).segments[-1]).unlink()
        log = DSLog.load(root, autosync=False)
        report = log.scrub(repair=False)
        log.close()
        assert not report["clean"]
        assert any(r["class"] == "missing" for r in report["corrupt_records"])
        assert any(d["reason"] == "missing" for d in report["damaged_segments"])

    def test_misdirected_ref_detected(self, tmp_path):
        # a valid-checksum record that belongs to a *different* entry (the
        # wreckage a torn batch used to leave when dropped offsets were
        # reassigned): only the identity check can see it
        root = tmp_path / "db"
        build(root, 3)
        redirect_ref(root, victim=0, donor=1, orient="forward")
        log = DSLog.load(root, autosync=False)
        report = log.scrub(repair=False)
        log.close()
        assert not report["clean"]
        [bad] = report["corrupt_records"]
        assert bad["class"] == "misdirected"
        assert bad["kind"] == "entry-forward"
        assert bad["pair"] == ["A0", "A1"]

    def test_orphan_segment_detected(self, tmp_path):
        root = tmp_path / "db"
        build(root, 2)
        log = DSLog.load(root, autosync=False)
        # created after open: reopen itself unlinks pre-existing orphans
        orphan = root / "segment-000099.seg"
        orphan.write_bytes(b"DSEG" + (2).to_bytes(2, "little") + b"junk")
        report = log.scrub(repair=False)
        log.close()
        assert not report["clean"]
        assert report["orphan_segments"] == ["segment-000099.seg"]


class TestRepair:
    def test_misdirected_ref_rebuilt_from_sibling(self, tmp_path):
        root = tmp_path / "db"
        names = build(root, 3)
        redirect_ref(root, victim=0, donor=1, orient="forward")
        log = DSLog.load(root, autosync=False)
        report = log.scrub(repair=True)
        assert report["repaired"]
        assert report["rebuilt_orientations"] == 1
        assert report["dropped_entries"] == []
        assert log.scrub(repair=False)["clean"]
        log.close()
        assert_fully_readable(root, names)

    def test_flipped_byte_rebuilt_from_sibling(self, tmp_path):
        root = tmp_path / "db"
        names = build(root, 4)
        flip_payload_byte(root, entry_ref(root, index=2, orient="backward"))
        log = DSLog.load(root, autosync=False)
        report = log.scrub(repair=True)
        assert report["repaired"]
        assert report["rebuilt_orientations"] == 1
        assert report["dropped_entries"] == []
        assert log.scrub(repair=False)["clean"]
        log.close()
        assert_fully_readable(root, names)
        qdir = root / QUARANTINE_DIR
        quarantined = list(qdir.glob("segment-*.seg"))
        assert len(quarantined) == 1
        why = json.loads((qdir / f"{quarantined[0].name}.json").read_text())
        assert "corrupt-records" in why["reason"]

    def test_both_orientations_damaged_drops_only_that_entry(self, tmp_path):
        root = tmp_path / "db"
        names = build(root, 4)
        flip_payload_byte(root, entry_ref(root, index=1, orient="backward"))
        flip_payload_byte(root, entry_ref(root, index=1, orient="forward"))
        manifest = load_manifest(root)
        dropped_pair = [manifest.entries[1]["in"], manifest.entries[1]["out"]]
        log = DSLog.load(root, autosync=False)
        report = log.scrub(repair=True)
        assert report["dropped_entries"] == [dropped_pair]
        # the catalog pruned the dropped entry: no dangling refs anywhere
        assert len(log.catalog) == 3
        assert log.catalog.materialize_all() == 6
        assert log.scrub(repair=False)["clean"]
        log.close()
        reopened = DSLog.load(root)
        assert len(reopened.catalog) == 3
        reopened.close()

    def test_torn_tail_repair_evacuates_all_records(self, tmp_path):
        root = tmp_path / "db"
        names = build(root, 4)
        segment = root / load_manifest(root).segments[-1]
        with open(segment, "ab") as fh:
            fh.write(b"\xff" * 17)
        log = DSLog.load(root, autosync=False)
        report = log.scrub(repair=True)
        assert report["repaired"]
        assert report["evacuated_records"] >= 1
        assert report["dropped_entries"] == []
        assert log.scrub(repair=False)["clean"]
        log.close()
        assert_fully_readable(root, names)
        assert not segment.exists()  # quarantined
        assert (root / QUARANTINE_DIR / segment.name).exists()

    def test_truncated_segment_salvages_valid_prefix(self, tmp_path):
        root = tmp_path / "db"
        names = build(root, 4)
        manifest = load_manifest(root)
        segment = root / manifest.segments[-1]
        last = max(
            (TableRef.from_json(row[o]) for row in manifest.entries for o in ("backward", "forward")),
            key=lambda r: r.offset,
        )
        with open(segment, "r+b") as fh:
            fh.truncate(last.offset + 3)  # cut mid-prefix of the last record
        log = DSLog.load(root, autosync=False)
        report = log.scrub(repair=True)
        assert report["repaired"]
        assert report["rebuilt_orientations"] == 1  # the cut record, from sibling
        assert report["evacuated_records"] >= 1  # everything before the cut
        assert report["dropped_entries"] == []
        assert log.scrub(repair=False)["clean"]
        log.close()
        assert_fully_readable(root, names)

    def test_orphan_quarantined_not_deleted(self, tmp_path):
        root = tmp_path / "db"
        build(root, 2)
        log = DSLog.load(root, autosync=False)
        orphan = root / "segment-000099.seg"
        orphan.write_bytes(b"DSEG" + (2).to_bytes(2, "little") + b"junk")
        report = log.scrub(repair=True)
        log.close()
        assert "segment-000099.seg" in report["quarantined"]
        assert not orphan.exists()
        moved = root / QUARANTINE_DIR / "segment-000099.seg"
        assert moved.exists()
        why = json.loads((moved.parent / "segment-000099.seg.json").read_text())
        assert why["reason"] == "orphan"

    def test_repair_survives_cold_restart_and_keeps_ingesting(self, tmp_path):
        root = tmp_path / "db"
        names = build(root, 3)
        flip_payload_byte(root, entry_ref(root, index=0, orient="forward"))
        log = DSLog.load(root, autosync=False)
        log.scrub(repair=True)
        log.close()
        log = DSLog.load(root, autosync=False)
        log.define_array("B", SHAPE)
        log.add_lineage(names[3], "B", relation=elementwise(names[3], "B"))
        log.sync()
        log.close()
        assert_fully_readable(root, names + ["B"])


class TestShardedScrub:
    def test_one_damaged_shard_healed_others_untouched(self, tmp_path):
        root = tmp_path / "db"
        names = build(root, 8, backend="sharded", num_shards=3)
        damaged = None
        for idx in range(3):
            manifest = load_manifest(root / f"shard-{idx:02d}")
            if manifest.entries:
                damaged = idx
                ref = TableRef.from_json(manifest.entries[0]["backward"])
                flip_payload_byte(root / f"shard-{idx:02d}", ref)
                break
        assert damaged is not None
        log = DSLog.load(root, autosync=False)
        detect = log.scrub(repair=False)
        assert not detect["shards"][damaged]["clean"]
        assert all(r["clean"] for i, r in detect["shards"].items() if i != damaged)
        report = log.scrub(repair=True)
        assert report["shards"][damaged]["repaired"]
        again = log.scrub(repair=False)
        assert again["clean"] and all(r["clean"] for r in again["shards"].values())
        log.close()
        reopened = DSLog.load(root)
        assert len(reopened.catalog) == 8
        assert reopened.catalog.materialize_all() == 16
        for a, b in zip(names, names[1:]):
            assert reopened.prov_query([a, b], [(1,)]).to_cells() == {(1,)}
        reopened.close()


class TestScrubCLI:
    def test_exit_codes_detect_repair_clean(self, tmp_path, capsys):
        root = tmp_path / "db"
        build(root, 3)
        flip_payload_byte(root, entry_ref(root, index=0, orient="backward"))
        assert scrub_main([str(root)]) == 1  # damage found, left in place
        out = capsys.readouterr().out
        assert "DAMAGED" in out and "checksum" in out
        assert scrub_main([str(root), "--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out and "healed" in out
        assert scrub_main([str(root)]) == 0  # clean after the repair
        assert "clean" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        root = tmp_path / "db"
        build(root, 2)
        assert scrub_main([str(root), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True

    def test_not_a_catalog_is_exit_2(self, tmp_path, capsys):
        empty = tmp_path / "not-a-catalog"
        empty.mkdir()
        assert scrub_main([str(empty)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_memory_backend_refuses_scrub(self):
        log = DSLog()
        with pytest.raises(RuntimeError, match="segment or sharded"):
            log.scrub()
