"""Tests for the segment-based lineage store (segments, manifest, cache)."""

import json

import numpy as np
import pytest

from repro import DSLog
from repro.core.provrc import compress
from repro.core.relation import LineageRelation
from repro.storage.manifest import MANIFEST_NAME, load_manifest
from repro.storage.segments import SegmentWriter, iter_records, read_record
from repro.storage.store import (
    LineageStore,
    StoredLineageEntry,
    TableCache,
    TableRef,
)


def elementwise(shape, in_name="A", out_name="B"):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def chain_log(root, n, shape=(6,), **kwargs):
    log = DSLog(root=root, backend="segment", **kwargs)
    names = [f"A{i:04d}" for i in range(n + 1)]
    for name in names:
        log.define_array(name, shape)
    for a, b in zip(names, names[1:]):
        log.add_lineage(a, b, relation=elementwise(shape, a, b), op_name=f"op_{a}")
    return log, names


class TestSegmentFiles:
    def test_append_and_read_roundtrip(self, tmp_path):
        writer = SegmentWriter(tmp_path / "segment-000001.seg")
        offsets = [writer.append(payload) for payload in (b"alpha", b"bravo", b"x" * 1000)]
        writer.close()
        for (offset, length), payload in zip(offsets, (b"alpha", b"bravo", b"x" * 1000)):
            assert read_record(tmp_path / "segment-000001.seg", offset, length) == payload

    def test_iter_records_in_append_order(self, tmp_path):
        writer = SegmentWriter(tmp_path / "s.seg")
        writer.append(b"one")
        writer.append(b"two")
        writer.close()
        assert [payload for _, payload in iter_records(tmp_path / "s.seg")] == [b"one", b"two"]

    def test_length_mismatch_rejected(self, tmp_path):
        writer = SegmentWriter(tmp_path / "s.seg")
        offset, length = writer.append(b"payload")
        writer.close()
        with pytest.raises(ValueError):
            read_record(tmp_path / "s.seg", offset, length + 1)

    def test_truncated_tail_ignored(self, tmp_path):
        path = tmp_path / "s.seg"
        writer = SegmentWriter(path)
        writer.append(b"complete")
        writer.close()
        # simulate a crash mid-append: a length prefix without its payload
        with open(path, "ab") as fh:
            fh.write(b"\xff\x00\x00\x00partial")
        assert [payload for _, payload in iter_records(path)] == [b"complete"]

    def test_not_a_segment_rejected(self, tmp_path):
        (tmp_path / "bogus.seg").write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError):
            read_record(tmp_path / "bogus.seg", 6, 4)


class TestTableCache:
    def _table(self, n, name):
        return compress(elementwise((n,), name, name + "_out"), key="output")

    def test_hit_miss_accounting(self):
        cache = TableCache(budget_bytes=1 << 20)
        ref = TableRef("s", 0, 10)
        assert cache.get(ref) is None
        table = self._table(8, "A")
        cache.put(ref, table)
        assert cache.get(ref) is table
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_byte_budget_evicts_lru(self):
        tables = [self._table(64, f"T{i}") for i in range(4)]
        per_table = tables[0].nbytes()
        cache = TableCache(budget_bytes=int(per_table * 2.5))
        refs = [TableRef("s", i, 1) for i in range(4)]
        for ref, table in zip(refs, tables):
            cache.put(ref, table)
        assert cache.get(refs[0]) is None  # oldest evicted
        assert cache.get(refs[3]) is not None
        assert cache.stats()["evictions"] >= 1
        assert cache.current_bytes <= cache.budget_bytes

    def test_single_oversized_table_is_kept(self):
        table = self._table(64, "big")
        cache = TableCache(budget_bytes=1)
        ref = TableRef("s", 0, 1)
        cache.put(ref, table)
        assert cache.get(ref) is table


class TestLineageStore:
    def test_append_load_roundtrip(self, tmp_path):
        store = LineageStore(tmp_path / "db")
        table = compress(elementwise((5,)), key="output")
        ref = store.append_table(table)
        store.cache.clear()
        loaded = store.load_table(ref)
        assert loaded.decompress() == table.decompress()
        assert store.tables_deserialized == 1

    def test_cache_serves_repeat_loads(self, tmp_path):
        store = LineageStore(tmp_path / "db")
        ref = store.append_table(compress(elementwise((5,)), key="output"))
        store.load_table(ref)
        store.load_table(ref)
        assert store.tables_deserialized == 0  # appended table stayed cached

    def test_segment_rollover(self, tmp_path):
        store = LineageStore(tmp_path / "db", segment_max_bytes=256)
        for i in range(6):
            store.append_table(compress(elementwise((32,), f"I{i}", f"O{i}"), key="output"))
        assert len(store.manifest.segments) > 1

    def test_gzip_flag_recorded_in_manifest(self, tmp_path):
        store = LineageStore(tmp_path / "db", gzip=False)
        store.sync()
        reopened = LineageStore(tmp_path / "db", gzip=True)
        assert reopened.gzip is False  # on-disk format wins


class TestDurability:
    def test_manifest_written_atomically_with_generation(self, tmp_path):
        log, _ = chain_log(tmp_path / "db", 3)
        first = json.loads((tmp_path / "db" / MANIFEST_NAME).read_text())
        log.add_lineage(
            "A0000", "A0002", relation=elementwise((6,), "A0000", "A0002"), op_name="skip"
        )
        second = json.loads((tmp_path / "db" / MANIFEST_NAME).read_text())
        assert second["generation"] > first["generation"]
        assert not (tmp_path / "db" / (MANIFEST_NAME + ".tmp")).exists()

    def test_unsynced_records_invisible_after_reopen(self, tmp_path):
        log, names = chain_log(tmp_path / "db", 3, autosync=False)
        log.sync()
        # more ingest without a sync: segment bytes exist, manifest does not
        # reference them — a crash here must reopen to the synced state
        log.add_lineage(
            names[0], names[2], relation=elementwise((6,), names[0], names[2])
        )
        log.store.close()
        reopened = DSLog.load(tmp_path / "db")
        assert len(reopened.catalog) == 3
        with pytest.raises(KeyError):
            reopened.catalog.entry(names[0], names[2])

    def test_orphan_segments_removed_on_open(self, tmp_path):
        log, _ = chain_log(tmp_path / "db", 2)
        log.close()
        orphan = tmp_path / "db" / "segment-999999.seg"
        SegmentWriter(orphan).close()
        assert orphan.exists()
        DSLog.load(tmp_path / "db")
        assert not orphan.exists()


class TestLazyOpen:
    def test_cold_open_deserializes_nothing(self, tmp_path):
        log, names = chain_log(tmp_path / "db", 40, autosync=False)
        log.close()
        reopened = DSLog.load(tmp_path / "db")
        assert len(reopened.catalog) == 40
        assert reopened.store.tables_deserialized == 0
        for entry in reopened.catalog.entries():
            assert isinstance(entry, StoredLineageEntry)

    def test_query_loads_only_path_tables(self, tmp_path):
        log, names = chain_log(tmp_path / "db", 40, autosync=False)
        log.close()
        reopened = DSLog.load(tmp_path / "db")
        result = reopened.prov_query(names[:6], [(3,)])
        assert result.to_cells() == {(3,)}
        assert reopened.store.tables_deserialized == 5

    def test_storage_bytes_without_loading_tables(self, tmp_path):
        log, _ = chain_log(tmp_path / "db", 10, autosync=False)
        expected = log.storage_bytes()
        log.close()
        reopened = DSLog.load(tmp_path / "db")
        assert reopened.storage_bytes() == expected
        assert reopened.store.tables_deserialized == 0

    def test_materialize_all_is_the_eager_path(self, tmp_path):
        log, _ = chain_log(tmp_path / "db", 10, autosync=False)
        log.close()
        reopened = DSLog.load(tmp_path / "db")
        count = reopened.catalog.materialize_all()
        assert count == 20  # both orientations of every entry
        assert reopened.store.tables_deserialized == 20

    def test_lru_budget_bounds_resident_tables(self, tmp_path):
        log, names = chain_log(tmp_path / "db", 30, shape=(64,), autosync=False)
        log.close()
        one_table = compress(elementwise((64,)), key="output").nbytes()
        reopened = DSLog.load(tmp_path / "db", cache_bytes=one_table * 4)
        reopened.catalog.materialize_all()
        stats = reopened.store.cache.stats()
        assert stats["evictions"] > 0
        assert stats["bytes"] <= stats["budget_bytes"]
        # evicted tables transparently reload on demand
        assert reopened.prov_query([names[0], names[1]], [(9,)]).to_cells() == {(9,)}


class TestCompaction:
    def test_compact_reclaims_replaced_entries(self, tmp_path):
        log, names = chain_log(tmp_path / "db", 8)
        for _ in range(4):  # churn one edge to build up dead versions
            log.add_lineage(
                names[0], names[1],
                relation=elementwise((6,), names[0], names[1]),
                replace=True,
            )
        before = log.store.segment_bytes()
        stats = log.compact()
        assert stats["reclaimed_bytes"] > 0
        assert log.store.segment_bytes() < before
        # catalog still answers queries and survives a reopen
        assert log.prov_query(names[:3], [(1,)]).to_cells() == {(1,)}
        log.close()
        reopened = DSLog.load(tmp_path / "db")
        assert reopened.prov_query([names[0], names[-1]], [(2,)]).to_cells() == {(2,)}
        assert reopened.catalog.entry(names[0], names[1]).version == 5

    def test_compact_preserves_generation_monotonicity(self, tmp_path):
        log, _ = chain_log(tmp_path / "db", 3)
        generation = load_manifest(tmp_path / "db").generation
        log.compact()
        assert load_manifest(tmp_path / "db").generation > generation

    def test_ingest_continues_after_compact(self, tmp_path):
        log, names = chain_log(tmp_path / "db", 3)
        log.compact()
        log.define_array("Z", (6,))
        log.add_lineage(names[-1], "Z", relation=elementwise((6,), names[-1], "Z"))
        assert log.prov_query([names[0], "Z"], [(0,)]).to_cells() == {(0,)}
        log.close()
        assert DSLog.load(tmp_path / "db").prov_query(
            [names[0], "Z"], [(0,)]
        ).to_cells() == {(0,)}
