"""Property-based end-to-end tests: random lineage chains through DSLog.

For arbitrary random relation chains and query cells, the full DSLog path
(ProvRC compression at ingest, in-situ θ-joins at query time) must return
exactly the same cells as the brute-force reference join over the
uncompressed relations — in both directions, with and without the merge
optimization, and after a serialization round trip.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DSLog
from repro.core.provrc import compress
from repro.core.reference import query_path_reference
from repro.core.relation import LineageRelation
from repro.core.serialize import deserialize_compressed_gzip, serialize_compressed_gzip


@st.composite
def relation_chain(draw, max_hops=3, max_dim=4, max_rows=25):
    """A chain of random relations A0 -> A1 -> ... with matching shapes."""
    n_hops = draw(st.integers(1, max_hops))
    shapes = []
    for _ in range(n_hops + 1):
        ndim = draw(st.integers(1, 2))
        shapes.append(tuple(draw(st.integers(1, max_dim)) for _ in range(ndim)))
    relations = []
    for hop in range(n_hops):
        in_shape, out_shape = shapes[hop], shapes[hop + 1]
        n_rows = draw(st.integers(0, max_rows))
        pairs = []
        for _ in range(n_rows):
            out_cell = tuple(draw(st.integers(0, d - 1)) for d in out_shape)
            in_cell = tuple(draw(st.integers(0, d - 1)) for d in in_shape)
            pairs.append((out_cell, in_cell))
        relations.append(
            LineageRelation.from_pairs(
                pairs, out_shape, in_shape, in_name=f"A{hop}", out_name=f"A{hop + 1}"
            )
        )
    n_query = draw(st.integers(0, 5))
    query = [tuple(draw(st.integers(0, d - 1)) for d in shapes[0]) for _ in range(n_query)]
    return shapes, relations, query


def _build_log(shapes, relations):
    log = DSLog()
    for index, shape in enumerate(shapes):
        log.define_array(f"A{index}", shape)
    for relation in relations:
        log.add_lineage(relation.in_name, relation.out_name, relation=relation)
    return log


class TestRandomChains:
    @settings(max_examples=60, deadline=None)
    @given(relation_chain())
    def test_forward_chain_matches_reference(self, data):
        shapes, relations, query = data
        log = _build_log(shapes, relations)
        path = [f"A{i}" for i in range(len(shapes))]
        expected = query_path_reference(relations, ["forward"] * len(relations), query)
        assert log.prov_query(path, query).to_cells() == expected

    @settings(max_examples=60, deadline=None)
    @given(relation_chain())
    def test_backward_chain_matches_reference(self, data):
        shapes, relations, _ = data
        rng = np.random.default_rng(0)
        last_shape = shapes[-1]
        query = [tuple(int(rng.integers(0, d)) for d in last_shape) for _ in range(3)]
        log = _build_log(shapes, relations)
        path = [f"A{i}" for i in reversed(range(len(shapes)))]
        expected = query_path_reference(
            list(reversed(relations)), ["backward"] * len(relations), query
        )
        assert log.prov_query(path, query).to_cells() == expected

    @settings(max_examples=40, deadline=None)
    @given(relation_chain())
    def test_merge_flag_never_changes_answer(self, data):
        shapes, relations, query = data
        log = _build_log(shapes, relations)
        path = [f"A{i}" for i in range(len(shapes))]
        merged = log.prov_query(path, query, merge=True).to_cells()
        plain = log.prov_query(path, query, merge=False).to_cells()
        assert merged == plain

    @settings(max_examples=40, deadline=None)
    @given(relation_chain(max_hops=1))
    def test_serialization_roundtrip_preserves_queries(self, data):
        shapes, relations, query = data
        relation = relations[0]
        table = compress(relation, key="input")
        restored = deserialize_compressed_gzip(serialize_compressed_gzip(table))
        from repro.core.query import CellBoxSet, theta_join

        box_query = CellBoxSet.from_cells(relation.in_name, relation.in_shape, query)
        assert (
            theta_join(box_query, restored).to_cells()
            == theta_join(box_query, table).to_cells()
            == relation.forward(query)
        )
