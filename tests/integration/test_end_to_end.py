"""Integration tests: capture → compression → storage → multi-hop queries → reuse."""

import numpy as np
import pytest

from repro import DSLog
from repro.baselines.stores import ColumnarStore, RawStore
from repro.capture.tracked import track_operation
from repro.core.reference import query_path_reference
from repro.workloads.pipelines import (
    image_pipeline,
    random_numpy_pipeline,
    relational_pipeline,
    resnet_block_pipeline,
)


class TestTrackedCaptureToQuery:
    """A workflow captured with TrackedArray, stored in DSLog, queried end to end."""

    def build(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(50, 6))
        b, lin_ab = track_operation(lambda x: np.abs(x) + 1.0, inputs={"A": a}, out_name="B")
        c, lin_bc = track_operation(lambda x: np.sum(x, axis=1), inputs={"B": b}, out_name="C")
        d, lin_cd = track_operation(np.sort, inputs={"C": c}, out_name="D")
        log = DSLog()
        for name, arr in [("A", a), ("B", b), ("C", c), ("D", d)]:
            log.define_array(name, arr.shape)
        log.add_lineage("A", "B", relation=lin_ab["A"])
        log.add_lineage("B", "C", relation=lin_bc["B"])
        log.add_lineage("C", "D", relation=lin_cd["C"])
        return log, [lin_ab["A"], lin_bc["B"], lin_cd["C"]]

    def test_forward_matches_reference(self):
        log, relations = self.build()
        cells = [(0, 0), (25, 3)]
        expected = query_path_reference(relations, ["forward"] * 3, cells)
        assert log.prov_query(["A", "B", "C", "D"], cells).to_cells() == expected

    def test_backward_matches_reference(self):
        log, relations = self.build()
        cells = [(10,), (49,)]
        expected = query_path_reference(list(reversed(relations)), ["backward"] * 3, cells)
        assert log.prov_query(["D", "C", "B", "A"], cells).to_cells() == expected

    def test_partial_path(self):
        log, relations = self.build()
        cells = [(7,)]
        expected = query_path_reference([relations[1]], ["backward"], cells)
        assert log.prov_query(["C", "B"], cells).to_cells() == expected

    def test_storage_much_smaller_than_raw(self):
        log, relations = self.build()
        raw = sum(rel.nbytes_raw() for rel in relations)
        assert log.storage_bytes() < raw / 5


class TestPipelinesAgainstBaselines:
    """DSLog and every baseline engine agree on all three Figure 8 workflows."""

    @pytest.mark.parametrize("factory,query", [
        (lambda: image_pipeline(32, 32, lime_samples=25), [(10, 10), (20, 20)]),
        (lambda: relational_pipeline(300, 200), [(5, 0), (17, 3)]),
        (lambda: resnet_block_pipeline(12, 12), [(6, 6), (0, 0)]),
    ], ids=["image", "relational", "resnet"])
    def test_forward_agreement(self, factory, query):
        pipeline = factory()
        log = pipeline.load_into_dslog()
        expected = log.prov_query(pipeline.path, query).to_cells()
        for store in (RawStore(), ColumnarStore()):
            db = pipeline.load_into_baseline(store)
            assert db.query_path(pipeline.path, query) == expected

    @pytest.mark.parametrize("length", [3, 6])
    def test_random_workflow_agreement(self, length):
        pipeline = random_numpy_pipeline(length, n_cells=800, seed=length)
        log = pipeline.load_into_dslog()
        db = pipeline.load_into_baseline(RawStore())
        cells = [(i,) for i in range(0, 100, 7)]
        assert log.prov_query(pipeline.path, cells).to_cells() == db.query_path(pipeline.path, cells)
        # reversing the path answers the backward question consistently too
        back_cells = [(0,)]
        back = log.prov_query(list(reversed(pipeline.path)), back_cells).to_cells()
        assert back == db.query_path(list(reversed(pipeline.path)), back_cells)


class TestReuseEndToEnd:
    def test_repeated_featurization_roundtrip(self, tmp_path):
        log = DSLog(root=tmp_path / "db")
        shapes = [(40, 4), (25, 4), (60, 4)]
        for i, shape in enumerate(shapes):
            in_name, out_name = f"X{i}", f"F{i}"
            log.define_array(in_name, shape)
            log.define_array(out_name, (shape[0],))
            from repro.capture.analytic import axis_reduction_lineage

            log.register_operation(
                "featurize",
                in_arrs=[in_name],
                out_arrs=[out_name],
                relations={(in_name, out_name): axis_reduction_lineage(shape, axis=1)},
                input_data={in_name: np.random.default_rng(i).normal(size=shape)},
            )
        record = log.catalog.operations[-1]
        assert record.reuse_level == "gen"
        # the reused lineage answers queries identically to a fresh capture
        assert log.prov_query(["F2", "X2"], [(10,)]).to_cells() == {(10, c) for c in range(4)}
        # and the on-disk files exist for every entry
        assert len(list((tmp_path / "db").glob("*.provrc.gz"))) == 3
