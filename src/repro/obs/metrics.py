"""The metrics half of the observability layer: a dependency-free,
thread-safe registry of counters, gauges and fixed-bucket histograms.

Every subsystem registers its instruments against the process-wide
:data:`REGISTRY` at import time (cheap: a dict lookup per registration)
and updates them at event time — a segment flush, a cache hit, a request
served.  The registry is the single source the ``GET /metrics`` endpoint
(Prometheus text exposition format), the ``/healthz`` payload and the
``python -m repro.tools.stats`` CLI all read, so the numbers can never
disagree between surfaces.

Instrument semantics
--------------------
* :class:`Counter` — monotonically increasing float; ``inc(amount)``.
  Named ``*_total`` by convention.
* :class:`Gauge` — a value that goes both ways; ``set`` / ``inc`` / ``dec``
  (queue depth, cache bytes, open readers).
* :class:`Histogram` — fixed cumulative buckets plus sum and count;
  ``observe(value)``.  Quantiles (p50/p95/p99) are estimated by linear
  interpolation *within* the bucket containing the target rank — exact at
  bucket boundaries, monotone everywhere, and computable from nothing but
  the exported bucket counts (the same math the ``stats`` CLI applies to a
  scraped ``/metrics`` page).

Labels: an instrument created with ``labelnames`` is a family; call
``labels(value, ...)`` (positionally, in labelname order) or
``labels(name=value, ...)`` to get the child carrying those label values.
Children are cached, so the hot path is one dict lookup.

Cost model: every update takes one short uncontended mutex (exact totals
under concurrency are part of the contract — see the 8-thread hammer
test), and :func:`set_enabled` (False) turns every update into a single
attribute check, which is what the overhead benchmark's "registry
disabled" baseline measures.

:func:`render_prometheus` emits the text exposition format (version
0.0.4); :func:`parse_prometheus_text` is its inverse, used by the CI
smoke check and the stats CLI — a render/parse round trip is asserted in
the test suite.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "set_enabled",
    "metrics_enabled",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "render_prometheus",
    "parse_prometheus_text",
    "quantile_from_buckets",
]

# latency buckets in seconds: 100µs .. 10s, roughly logarithmic
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
# size buckets (records per batch, bytes, queue depths): 1 .. 64k
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

# one switch for the whole layer: the overhead benchmark's control arm
_STATE = threading.local  # placeholder so linters see usage below
_enabled = True


def set_enabled(value: bool) -> None:
    """Globally enable/disable metric updates (tracing has its own switch;
    :func:`repro.obs.set_enabled` flips both).  Disabled updates cost one
    module-global read."""
    global _enabled
    _enabled = bool(value)


def metrics_enabled() -> bool:
    return _enabled


class _Instrument:
    """Shared label-family plumbing of all three instrument types."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        # label-value tuple -> child instrument (children have no labelnames)
        self._children: Dict[Tuple[str, ...], "_Instrument"] = {}

    def labels(self, *values, **kwargs) -> "_Instrument":
        """The child instrument carrying these label values."""
        if not self.labelnames:
            raise ValueError(f"{self.name} was registered without labels")
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(kwargs[name] for name in self.labelnames)
            except KeyError as missing:
                raise ValueError(
                    f"{self.name} needs labels {self.labelnames}, missing {missing}"
                ) from None
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} needs {len(self.labelnames)} label values, got {len(key)}"
            )
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _make_child(self) -> "_Instrument":
        raise NotImplementedError

    def _series(self) -> List[Tuple[Tuple[str, ...], "_Instrument"]]:
        """Every (label values, leaf instrument) pair of this family."""
        if not self.labelnames:
            return [((), self)]
        with self._lock:
            return sorted(self._children.items())


class Counter(_Instrument):
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name)

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge(self.name)

    def set(self, value: float) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Instrument):
    """Fixed cumulative-bucket histogram with sum and count.

    ``buckets`` are the finite upper bounds, strictly increasing; a
    ``+Inf`` bucket is implicit.  ``observe`` costs one bisect and two
    adds under the mutex.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be non-empty and strictly increasing")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, buckets=self.bounds)

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper bound, cumulative count)`` pairs, ``+Inf`` last."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (bucket interpolation; see module docs)."""
        return quantile_from_buckets(self.cumulative(), q)

    def summary(self) -> dict:
        cumulative = self.cumulative()
        return {
            "count": self._count,
            "sum": self._sum,
            "p50": quantile_from_buckets(cumulative, 0.50),
            "p95": quantile_from_buckets(cumulative, 0.95),
            "p99": quantile_from_buckets(cumulative, 0.99),
        }


def quantile_from_buckets(cumulative: Sequence[Tuple[float, int]], q: float) -> float:
    """Estimate a quantile from cumulative ``(upper bound, count)`` pairs.

    Linear interpolation inside the bucket containing the target rank,
    with the previous bound (or 0) as the bucket's lower edge.  The
    unbounded ``+Inf`` bucket has no width to interpolate over, so its
    answer is the largest finite bound — a known floor, never a made-up
    extrapolation.  Returns ``nan`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not cumulative:
        return math.nan
    total = cumulative[-1][1]
    if total == 0:
        return math.nan
    rank = q * total
    lower = 0.0
    prev_count = 0
    for bound, count in cumulative:
        if count >= rank:
            if math.isinf(bound):
                return lower  # the last finite bound
            if count == prev_count:
                return bound
            fraction = (rank - prev_count) / (count - prev_count)
            return lower + (bound - lower) * fraction
        lower = bound if not math.isinf(bound) else lower
        prev_count = count
    return lower


class MetricsRegistry:
    """Process-wide home of every instrument; get-or-create semantics.

    ``counter`` / ``gauge`` / ``histogram`` return the existing instrument
    when one with the same name is already registered (re-imports and
    multiple component instances share one series), and raise when the
    name is reused at a different type or label set — the mistakes that
    silently corrupt dashboards.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Instrument]" = {}

    def _register(self, cls, name: str, help: str, labelnames, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help=help, labelnames=labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[_Instrument]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, dict]:
        """JSON-friendly view of every series: counters/gauges as numbers,
        histograms as ``{count, sum, p50, p95, p99}`` — the shape
        ``/healthz`` embeds so it always agrees with ``/metrics``."""
        out: Dict[str, dict] = {}
        for metric in self.metrics():
            series = {}
            for labelvalues, leaf in metric._series():
                key = ",".join(
                    f"{n}={v}" for n, v in zip(metric.labelnames, labelvalues)
                )
                if isinstance(leaf, Histogram):
                    series[key] = leaf.summary()
                else:
                    series[key] = leaf._value
            out[metric.name] = {"type": metric.kind, "values": series}
        return out

    def render(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        return render_prometheus(self.metrics())

    def reset(self) -> None:
        """Drop every registered instrument (tests only — module-level
        instrument handles become dangling, so production code never calls
        this)."""
        with self._lock:
            self._metrics.clear()


REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


# ----------------------------------------------------------------------
# Prometheus text format: render + parse
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(names: Iterable[str], values: Iterable[str], extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def render_prometheus(metrics: Sequence[_Instrument]) -> str:
    lines: List[str] = []
    for metric in metrics:
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for labelvalues, leaf in metric._series():
            if isinstance(leaf, Histogram):
                for bound, cum in leaf.cumulative():
                    le = "+Inf" if math.isinf(bound) else _format_value(bound)
                    labels = _labels_text(
                        metric.labelnames, labelvalues, extra=f'le="{le}"'
                    )
                    lines.append(f"{metric.name}_bucket{labels} {cum}")
                base = _labels_text(metric.labelnames, labelvalues)
                lines.append(f"{metric.name}_sum{base} {_format_value(leaf.sum)}")
                lines.append(f"{metric.name}_count{base} {leaf.count}")
            else:
                labels = _labels_text(metric.labelnames, labelvalues)
                lines.append(f"{metric.name}{labels} {_format_value(leaf._value)}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def parse_prometheus_text(text: str) -> Dict[str, dict]:
    """Parse a ``/metrics`` page into ``{family: {"type", "help",
    "samples": [(sample name, labels dict, value)]}}``.

    Histogram ``_bucket``/``_sum``/``_count`` samples are grouped under
    their family name.  Raises ``ValueError`` on any malformed line — the
    CI smoke step treats an unparseable page as a failed build.
    """
    families: Dict[str, dict] = {}
    last_family: Optional[str] = None
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP comment: {raw!r}")
            name = parts[2]
            families.setdefault(name, {"type": "untyped", "help": "", "samples": []})
            families[name]["help"] = parts[3] if len(parts) > 3 else ""
            last_family = name
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE comment: {raw!r}")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            families.setdefault(name, {"type": kind, "help": "", "samples": []})
            families[name]["type"] = kind
            last_family = name
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        sample = match.group("name")
        labels_raw = match.group("labels")
        labels: Dict[str, str] = {}
        if labels_raw:
            consumed = 0
            for lm in _LABEL_RE.finditer(labels_raw):
                labels[lm.group(1)] = _unescape_label(lm.group(2))
                consumed = lm.end()
            rest = labels_raw[consumed:].strip().strip(",")
            if rest:
                raise ValueError(f"line {lineno}: malformed labels: {labels_raw!r}")
        value_raw = match.group("value")
        if value_raw == "+Inf":
            value = math.inf
        elif value_raw == "-Inf":
            value = -math.inf
        elif value_raw == "NaN":
            value = math.nan
        else:
            try:
                value = float(value_raw)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: malformed sample value {value_raw!r}"
                ) from None
        family = sample
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample[: -len(suffix)] if sample.endswith(suffix) else None
            if base and families.get(base, {}).get("type") == "histogram":
                family = base
                break
        if family != last_family and family not in families:
            families.setdefault(family, {"type": "untyped", "help": "", "samples": []})
        families[family]["samples"].append((sample, labels, value))
    return families


def sample_value(
    families: Mapping[str, dict], name: str, labels: Optional[Mapping[str, str]] = None
) -> Optional[float]:
    """Convenience lookup into :func:`parse_prometheus_text` output: the
    value of one exact sample (labels must match exactly; ``None`` when
    absent)."""
    family = families.get(name)
    candidates = [family] if family is not None else list(families.values())
    want = dict(labels or {})
    for fam in candidates:
        for sample, got, value in fam["samples"]:
            if sample == name and got == want:
                return value
    return None
