"""Lightweight request tracing: trace ids, nested spans, contextvars
propagation, a bounded in-memory ring of finished traces, and a
slow-trace log.

A :class:`Trace` is opened per HTTP request (by the server) and per
ingest ticket (by ``LineagePipeline.submit``).  Within a trace, work is
recorded as nested spans — ``plan``, ``prefetch`` with one child per
shard, ``join``, ``cache-install`` — each carrying wall-clock duration
and free-form tags.  Propagation uses a single :class:`~contextvars.ContextVar`
holding ``(trace, parent span id)``; crossing a thread boundary is one
``contextvars.copy_context()`` at submit time (see
:func:`wrap_context`), which is how spans opened inside the executor's
prefetch pool and the pipeline's worker/committer threads still parent
correctly.

Finished traces land in a bounded deque served by ``GET /debug/traces``;
traces slower than the threshold (``DSLOG_SLOW_TRACE_MS`` env or
:func:`set_slow_threshold_ms`) are additionally emitted to the
structured log as ``slow_trace`` events.

The module-level :func:`span` helper is the only API hot paths touch:
when tracing is disabled or no trace is active it returns a cached no-op
context manager, so uninstrumented-cost is one ContextVar read.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import os
import threading
import time
import uuid
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Trace",
    "Span",
    "start_trace",
    "current_trace",
    "span",
    "wrap_context",
    "recent_traces",
    "clear_traces",
    "set_ring_capacity",
    "set_slow_threshold_ms",
    "slow_threshold_ms",
    "set_enabled",
    "tracing_enabled",
]

_enabled = True


def set_enabled(value: bool) -> None:
    global _enabled
    _enabled = bool(value)


def tracing_enabled() -> bool:
    return _enabled


# (trace, parent span id) of the logical call chain; None outside a trace
_CURRENT: "contextvars.ContextVar[Optional[Tuple[Trace, Optional[int]]]]" = (
    contextvars.ContextVar("repro_obs_trace", default=None)
)

_DEFAULT_RING_CAPACITY = 256
_ring_lock = threading.Lock()
_ring: "deque[dict]" = deque(maxlen=_DEFAULT_RING_CAPACITY)


def _env_slow_ms() -> float:
    try:
        return float(os.environ.get("DSLOG_SLOW_TRACE_MS", "250"))
    except ValueError:
        return 250.0


_slow_threshold_ms = _env_slow_ms()


def set_slow_threshold_ms(value: float) -> None:
    """Traces at least this many milliseconds long are logged as
    ``slow_trace`` events (0 logs every trace, ``inf`` disables)."""
    global _slow_threshold_ms
    _slow_threshold_ms = float(value)


def slow_threshold_ms() -> float:
    return _slow_threshold_ms


def set_ring_capacity(capacity: int) -> None:
    """Resize the finished-trace ring (keeps the newest entries)."""
    global _ring
    with _ring_lock:
        _ring = deque(_ring, maxlen=max(1, int(capacity)))


def recent_traces(limit: Optional[int] = None) -> List[dict]:
    """Finished traces, newest first, as JSON-friendly dicts."""
    with _ring_lock:
        items = list(_ring)
    items.reverse()
    if limit is not None:
        items = items[: max(0, int(limit))]
    return items


def clear_traces() -> None:
    with _ring_lock:
        _ring.clear()


class Span:
    """One timed region inside a trace.  Created via ``Trace.span`` /
    module :func:`span`; not instantiated directly."""

    __slots__ = ("span_id", "parent_id", "name", "tags", "start", "_t0", "duration_s")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        tags: Dict[str, Any],
        start: float,
        t0: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.tags = tags
        self.start = start  # wall clock, epoch seconds
        self._t0 = t0  # monotonic, for duration
        self.duration_s: Optional[float] = None

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_s": self.duration_s,
            "tags": dict(self.tags),
        }


class Trace:
    """A tree of spans sharing one trace id.

    Thread-safe: spans opened from pool threads (after
    :func:`wrap_context` propagation) append under the trace's lock.
    ``finish()`` closes the trace, pushes it into the ring, and emits a
    ``slow_trace`` log event when over threshold.
    """

    def __init__(self, name: str, **tags: Any) -> None:
        self.trace_id = uuid.uuid4().hex[:16]
        self.name = name
        self.tags: Dict[str, Any] = dict(tags)
        self.start = time.time()
        self._t0 = time.monotonic()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = itertools.count(1)
        self.duration_s: Optional[float] = None
        self._finished = False

    # -- span management -------------------------------------------------
    def _open_span(self, name: str, parent_id: Optional[int], tags: Dict[str, Any]) -> Span:
        sp = Span(
            span_id=next(self._ids),
            parent_id=parent_id,
            name=name,
            tags=tags,
            start=time.time(),
            t0=time.monotonic(),
        )
        with self._lock:
            self._spans.append(sp)
        return sp

    @contextlib.contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[Span]:
        """Open a child span of whatever span is current in this context."""
        state = _CURRENT.get()
        parent_id = state[1] if state is not None and state[0] is self else None
        sp = self._open_span(name, parent_id, tags)
        token = _CURRENT.set((self, sp.span_id))
        try:
            yield sp
        finally:
            sp.duration_s = time.monotonic() - sp._t0
            _CURRENT.reset(token)

    def add_span(
        self,
        name: str,
        duration_s: float,
        parent_id: Optional[int] = None,
        start: Optional[float] = None,
        **tags: Any,
    ) -> Span:
        """Record an already-measured region (used by the pipeline, where
        a ticket's queued/apply/commit phases are timed by different
        threads and closed after the fact)."""
        sp = self._open_span(name, parent_id, tags)
        sp.start = start if start is not None else time.time()
        sp.duration_s = duration_s
        return sp

    @contextlib.contextmanager
    def activate(self) -> Iterator["Trace"]:
        """Make this trace current in this thread's context (worker and
        committer threads re-enter ticket traces through this)."""
        token = _CURRENT.set((self, None))
        try:
            yield self
        finally:
            _CURRENT.reset(token)

    def set_tag(self, key: str, value: Any) -> None:
        with self._lock:
            self.tags[key] = value

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def as_dict(self) -> dict:
        with self._lock:
            spans = [sp.as_dict() for sp in self._spans]
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "start": self.start,
            "duration_s": self.duration_s,
            "tags": dict(self.tags),
            "spans": spans,
        }

    def finish(self) -> dict:
        """Close the trace; idempotent (the first call wins)."""
        with self._lock:
            if self._finished:
                finished = False
            else:
                self._finished = True
                self.duration_s = time.monotonic() - self._t0
                finished = True
        payload = self.as_dict()
        if not finished:
            return payload
        with _ring_lock:
            _ring.append(payload)
        duration_ms = (self.duration_s or 0.0) * 1000.0
        if duration_ms >= _slow_threshold_ms:
            from . import log as _log

            _log.log_event(
                "slow_trace",
                component="tracing",
                trace_id=self.trace_id,
                trace_name=self.name,
                duration_ms=round(duration_ms, 3),
                spans=len(payload["spans"]),
                tags=payload["tags"],
            )
        return payload


def start_trace(name: str, **tags: Any) -> Optional[Trace]:
    """Open a trace and make it current; ``None`` when tracing is off.
    Callers hold the returned trace and ``finish()`` it themselves."""
    if not _enabled:
        return None
    trace = Trace(name, **tags)
    _CURRENT.set((trace, None))
    return trace


def current_trace() -> Optional[Trace]:
    state = _CURRENT.get()
    return state[0] if state is not None else None


class _NoopSpan:
    __slots__ = ()

    def set_tag(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


def span(name: str, **tags: Any):
    """Open a span on the current trace, or a cached no-op when there is
    no active trace (or tracing is disabled).  This is what instrumented
    hot paths call, so the inactive cost is one ContextVar read."""
    if not _enabled:
        return _NOOP_SPAN
    state = _CURRENT.get()
    if state is None:
        return _NOOP_SPAN
    return state[0].span(name, **tags)


def wrap_context(fn):
    """Bind ``fn`` to the caller's context so the active trace (and
    parent span) follow it across a thread-pool boundary::

        pool.submit(wrap_context(load_shard), shard_id)

    A plain closure over ``contextvars.copy_context()``; cheap enough to
    wrap every pool task unconditionally.
    """
    ctx = contextvars.copy_context()

    def _bound(*args: Any, **kwargs: Any):
        return ctx.run(fn, *args, **kwargs)

    return _bound
