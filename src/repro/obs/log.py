"""Structured JSON-lines logging for the whole runtime.

One logger tree rooted at ``repro.obs`` carries server request logs,
breaker transitions, scrub/repair outcomes, fault injections, and slow
traces.  Events are single-line JSON objects with a stable envelope::

    {"ts": 1754650000.123, "level": "info", "event": "request",
     "component": "server", ...fields}

Design points:

* Built on stdlib :mod:`logging` so standard tooling (``caplog``,
  handler config, level filtering) keeps working.
* Quiet by default: the root obs logger starts at WARNING, so routine
  request logs (INFO) stay silent until ``DSLOG_LOG_LEVEL=INFO`` or
  :func:`set_level` opts in — this is the satellite fix for
  ``log_message``: requests are *routed* through the logger rather than
  swallowed, and verbosity is a level knob instead of a code edit.
* ``propagate`` stays on, and our stderr handler is attached to the
  ``repro.obs`` root only, so records reach pytest's caplog while
  ``logging.lastResort`` never double-prints.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import threading
from typing import Any, Optional

__all__ = [
    "get_logger",
    "log_event",
    "set_level",
    "configure",
    "JsonLinesFormatter",
]

ROOT_NAME = "repro.obs"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_configure_lock = threading.Lock()
_configured = False


class JsonLinesFormatter(logging.Formatter):
    """Render a record's structured fields as one JSON line."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, "event", record.getMessage()),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc"] = str(record.exc_info[1])
        return json.dumps(payload, default=str, separators=(",", ":"))


def configure(stream=None, level: Optional[str] = None) -> logging.Logger:
    """Attach the JSON handler to the obs root logger (idempotent).

    Level resolution: explicit ``level`` arg > ``DSLOG_LOG_LEVEL`` env >
    WARNING (quiet).  Called lazily on first use; safe to call again to
    re-point the stream (tests do, to capture output).
    """
    global _configured
    root = logging.getLogger(ROOT_NAME)
    with _configure_lock:
        if stream is not None or not _configured:
            for handler in list(root.handlers):
                if getattr(handler, "_repro_obs", False):
                    root.removeHandler(handler)
            handler = logging.StreamHandler(stream or sys.stderr)
            handler.setFormatter(JsonLinesFormatter())
            handler._repro_obs = True  # type: ignore[attr-defined]
            root.addHandler(handler)
            _configured = True
        resolved = level or os.environ.get("DSLOG_LOG_LEVEL")
        if resolved or root.level == logging.NOTSET:
            root.setLevel(_LEVELS.get((resolved or "warning").lower(), logging.WARNING))
    return root


def set_level(level: str) -> None:
    """Set the obs logger level by name (``"info"``, ``"debug"``, ...)."""
    configure().setLevel(_LEVELS.get(level.lower(), logging.WARNING))


def get_logger(name: str = "") -> logging.Logger:
    """A child of the obs root (``get_logger("server")`` →
    ``repro.obs.server``); the root's handler and level apply."""
    configure()
    return logging.getLogger(f"{ROOT_NAME}.{name}" if name else ROOT_NAME)


def log_event(
    event: str,
    *,
    level: str = "info",
    component: str = "",
    exc_info: Any = None,
    **fields: Any,
) -> None:
    """Emit one structured event.

    ``event`` is the stable machine-readable name (``"request"``,
    ``"breaker_transition"``, ``"fault_injected"``, ``"scrub_complete"``,
    ``"slow_trace"``); ``fields`` become top-level JSON keys.
    """
    logger = get_logger(component)
    lvl = _LEVELS.get(level.lower(), logging.INFO)
    if not logger.isEnabledFor(lvl):
        return
    logger.log(
        lvl,
        event,
        exc_info=exc_info,
        extra={"event": event, "fields": dict(fields, component=component or "obs")},
    )
