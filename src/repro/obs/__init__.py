"""`repro.obs` — the dependency-free observability layer.

Three pieces, one import surface:

* :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms in a
  process-wide registry, rendered as Prometheus text by ``GET /metrics``
  and embedded in ``/healthz``.
* :mod:`repro.obs.tracing` — per-request / per-ticket traces of nested
  spans, contextvars-propagated across thread pools, retrievable from a
  bounded ring via ``GET /debug/traces``.
* :mod:`repro.obs.log` — one JSON-lines structured logger
  (``repro.obs``) for request logs, breaker/scrub/repair events, fault
  injections, and slow traces.

:func:`set_enabled` flips metrics *and* tracing together — the
"registry disabled" baseline the overhead benchmark compares against.
"""

from __future__ import annotations

from . import log, metrics, tracing
from .log import get_logger, log_event, set_level
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
    parse_prometheus_text,
    quantile_from_buckets,
    render_prometheus,
    sample_value,
)
from .tracing import (
    Span,
    Trace,
    clear_traces,
    current_trace,
    recent_traces,
    set_ring_capacity,
    set_slow_threshold_ms,
    slow_threshold_ms,
    span,
    start_trace,
    wrap_context,
)

__all__ = [
    "log",
    "metrics",
    "tracing",
    "get_logger",
    "log_event",
    "set_level",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "parse_prometheus_text",
    "quantile_from_buckets",
    "render_prometheus",
    "sample_value",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Span",
    "Trace",
    "clear_traces",
    "current_trace",
    "recent_traces",
    "set_ring_capacity",
    "set_slow_threshold_ms",
    "slow_threshold_ms",
    "span",
    "start_trace",
    "wrap_context",
    "set_enabled",
    "enabled",
]


def set_enabled(value: bool) -> None:
    """Enable/disable the whole layer (metrics + tracing) in one call."""
    metrics.set_enabled(value)
    tracing.set_enabled(value)


def enabled() -> bool:
    return metrics.metrics_enabled() and tracing.tracing_enabled()
