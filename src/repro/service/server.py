"""The HTTP lineage server and client (``LineageServer`` / ``LineageClient``).

Everything before this module answered queries in-process; the serving
tier makes the catalog reachable from other processes with nothing beyond
the stdlib: a :class:`http.server.ThreadingHTTPServer` fronting a
:class:`~repro.service.query.QueryExecutor` (one handler thread per
connection, all sharing the executor's result cache and fan-out pool), and
a thin ``urllib``-based client with bounded retry on transport failures.

JSON API
--------
=======================  ====  =====================================================
``/query``               POST  ``{"path": [...], "cells": [[i, j], ...]}`` or
                               ``{"path": [...], "slices": [[start, stop], ...]}``
                               (+ optional ``"merge"``, ``"include_boxes"``,
                               ``"include_cells"``) → result boxes, exact cell
                               count, per-hop stats, ``"cached"`` flag
``/query_batch``         POST  ``{"queries": [<query body>, ...]}`` → one
                               ``results`` entry per query (a result payload or
                               a per-item ``{"error": ...}``); the server runs
                               each resolved path's queries as a single batched
                               θ-join pass
``/graph/impact``        GET   ``?array=NAME`` → downstream closure with hop counts
``/graph/dependencies``  GET   ``?array=NAME`` → upstream closure with hop counts
``/graph/summary``       GET   whole-catalog summary (roots, leaves, fan-in/out…)
``/healthz``             GET   liveness + catalog size, durable generation vector,
                               cache/executor stats, per-shard circuit-breaker
                               states (``"status": "degraded"`` while any breaker
                               is open)
``/metrics``             GET   the whole :data:`repro.obs.REGISTRY` in Prometheus
                               text exposition format (``text/plain;
                               version=0.0.4``) — the only non-JSON endpoint
``/debug/traces``        GET   recently finished traces, newest first
                               (``?limit=N`` caps the reply); spans carry wall
                               time and tags (shard, cache outcome, fault site)
``/admin/scrub``         POST  ``{"repair": bool}`` (body optional) → full scrub
                               report; with ``"repair": true`` the catalog is
                               healed in place (:mod:`repro.storage.scrub`)
=======================  ====  =====================================================

Every failure returns a *structured* JSON payload — ``{"error": {"type",
"message"}}`` with a matching status code (400 malformed request, 404
unknown array or endpoint, 405 wrong method, 500 internal; plus the fault
taxonomy: 504 ``deadline-exceeded``, 503 ``shard-unavailable`` /
``overloaded`` / ``io-error``) — never a hung socket: the handler catches
everything, and the server always finishes the response it started.
``/query`` responses carry a ``"degraded"`` flag: ``true`` means the home
shard was unavailable and a stale cached result was served instead
(:class:`~repro.service.query.QueryExecutor`'s circuit-breaker path).

Construction sugar: ``DSLog.serve(port)`` / ``LineageService.serve(port)``
start a server on a background thread; ``LineageClient.connect(url)``
polls ``/healthz`` until the server answers.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import socket
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..faults import DeadlineExceeded, IngestOverloaded, ShardUnavailable
from ..obs import DEFAULT_SIZE_BUCKETS, REGISTRY, log_event, tracing
from ..storage.catalog import AmbiguousLineageError
from .query import DEFAULT_CACHE_ENTRIES, QueryExecutor, QueryOutcome

_HTTP_REQUESTS = REGISTRY.counter(
    "dslog_http_requests_total",
    "HTTP requests served, by endpoint and status code",
    labelnames=("endpoint", "status"),
)
_HTTP_SECONDS = REGISTRY.histogram(
    "dslog_http_request_seconds",
    "Wall time per HTTP request, by endpoint",
    labelnames=("endpoint",),
)
_COALESCED_BATCH = REGISTRY.histogram(
    "dslog_coalesced_batch_size",
    "Single /query requests grouped into one executor batch per flush",
    buckets=DEFAULT_SIZE_BUCKETS,
)
_COALESCE_FLUSHES = REGISTRY.counter(
    "dslog_coalesce_flushes_total",
    "Coalescer flushes, by trigger (idle = lone request on an idle queue, "
    "window = the coalescing tick expired)",
    labelnames=("reason",),
)

# endpoints that open a per-request trace (the observability surfaces
# themselves — /metrics, /debug/traces, /healthz — would only self-spam)
_TRACED_ENDPOINTS = {
    "/query",
    "/query_batch",
    "/graph/impact",
    "/graph/dependencies",
    "/graph/summary",
    "/admin/scrub",
}

__all__ = [
    "LineageServer",
    "LineageClient",
    "LineageServerError",
    "LineageConnectionError",
    "QueryCoalescer",
    "result_payload",
]


class LineageServerError(RuntimeError):
    """A structured error returned by the server (the client re-raises it)."""

    def __init__(self, status: int, kind: str, message: str) -> None:
        super().__init__(f"[{status} {kind}] {message}")
        self.status = status
        self.kind = kind
        self.message = message


class LineageConnectionError(ConnectionError):
    """The client exhausted its transport retries without an HTTP response."""


# ----------------------------------------------------------------------
# payloads
# ----------------------------------------------------------------------
def result_payload(
    result, include_boxes: bool = True, include_cells: bool = False
) -> dict:
    """JSON-encodable form of a :class:`~repro.core.query.QueryResult`."""
    cells = result.cells
    payload: Dict[str, Any] = {
        "array": cells.array_name,
        "shape": list(cells.shape),
        "boxes_merged": int(len(cells)),
        "count": int(result.count_cells()),
        "hops": [
            {
                "from": hop.array_from,
                "to": hop.array_to,
                "rows_scanned": hop.rows_scanned,
                "boxes_in": hop.boxes_in,
                "boxes_out_raw": hop.boxes_out_raw,
                "boxes_out_merged": hop.boxes_out_merged,
                "seconds": hop.seconds,
            }
            for hop in result.hops
        ],
    }
    if include_boxes:
        payload["boxes"] = [
            [cells.lo[i].tolist(), cells.hi[i].tolist()] for i in range(len(cells))
        ]
    if include_cells:
        payload["cells"] = sorted(list(cell) for cell in result.to_cells())
    return payload


def _parse_query_request(body: dict) -> Tuple[list, Any, bool, bool, bool, Optional[float]]:
    path = body.get("path")
    if not isinstance(path, list) or len(path) < 2 or not all(
        isinstance(name, str) for name in path
    ):
        raise ValueError("'path' must be a list of at least two array names")
    cells = body.get("cells")
    slices = body.get("slices")
    if (cells is None) == (slices is None):
        raise ValueError("exactly one of 'cells' or 'slices' is required")
    if cells is not None:
        if not isinstance(cells, list):
            raise ValueError("'cells' must be a list of cell coordinates")
        query: Any = []
        for cell in cells:
            if isinstance(cell, list) and all(isinstance(c, int) for c in cell):
                query.append(tuple(cell))
            elif isinstance(cell, int):
                query.append(cell)
            else:
                raise ValueError(
                    "'cells' entries must be integer coordinate lists (or bare "
                    f"integers for 1-D arrays), got {cell!r}"
                )
    else:
        if not isinstance(slices, list):
            raise ValueError("'slices' must be a list of [start, stop] pairs")
        query = []
        for pair in slices:
            if pair is None:
                query.append(slice(None, None))
            elif (
                isinstance(pair, list)
                and len(pair) == 2
                and all(p is None or isinstance(p, int) for p in pair)
            ):
                query.append(slice(pair[0], pair[1]))
            else:
                raise ValueError(
                    f"'slices' entries must be [start, stop] pairs or null, got {pair!r}"
                )
    merge = bool(body.get("merge", True))
    include_boxes = bool(body.get("include_boxes", True))
    include_cells = bool(body.get("include_cells", False))
    deadline = body.get("deadline")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise ValueError("'deadline' must be a positive number of seconds")
        deadline = float(deadline)
    return path, query, merge, include_boxes, include_cells, deadline


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "dslog-lineage"

    # the LineageServer installs itself here on the subclass it creates
    lineage: "LineageServer" = None

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # BaseHTTPRequestHandler's per-response log line, routed through
        # the structured logger at DEBUG — quiet by default, one
        # DSLOG_LOG_LEVEL=DEBUG away when needed.  The richer per-request
        # event (endpoint, status, latency) is emitted by _dispatch at INFO.
        log_event(
            "http_log",
            level="debug",
            component="server",
            client=self.client_address[0],
            line=format % args,
        )

    # -- plumbing -------------------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(self, status: int, kind: str, message: str) -> None:
        self._send_json(status, {"error": {"type": kind, "message": message}})

    def _read_body(self) -> dict:
        length = self.headers.get("Content-Length")
        if length is None:
            raise ValueError("a JSON request body is required")
        raw = self.rfile.read(int(length))
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadJson(str(error)) from None
        if not isinstance(body, dict):
            raise _BadJson("the request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        parsed = urllib.parse.urlparse(self.path)
        endpoint = parsed.path.rstrip("/") or "/"
        route = (method, endpoint)
        handler = _ROUTES.get(route)
        if handler is None:
            if any(existing[1] == endpoint for existing in _ROUTES):
                self._send_error_payload(
                    405, "method-not-allowed", f"{method} is not supported on {parsed.path}"
                )
            else:
                self._send_error_payload(
                    404, "not-found", f"unknown endpoint {parsed.path!r}"
                )
            # unknown paths share one label value so a URL scanner cannot
            # blow up the endpoint cardinality
            _HTTP_REQUESTS.labels(endpoint="(unrouted)", status="404").inc()
            return
        started = time.monotonic()
        trace: Optional[tracing.Trace] = None
        if endpoint in _TRACED_ENDPOINTS and tracing.tracing_enabled():
            trace = tracing.Trace("http", endpoint=endpoint, method=method)
        status = self._run_route(handler, parsed, trace)
        elapsed = time.monotonic() - started
        if trace is not None:
            trace.set_tag("status", status)
            trace.finish()
        _HTTP_REQUESTS.labels(endpoint=endpoint, status=str(status)).inc()
        _HTTP_SECONDS.labels(endpoint=endpoint).observe(elapsed)
        log_event(
            "request",
            component="server",
            method=method,
            endpoint=endpoint,
            status=status,
            ms=round(elapsed * 1000.0, 3),
            client=self.client_address[0],
            trace_id=trace.trace_id if trace is not None else None,
        )

    def _run_route(self, handler, parsed, trace: "Optional[tracing.Trace]") -> int:
        """Execute one route handler inside the request's trace context and
        send the response (JSON, or raw text for ``(content_type, text)``
        payloads like /metrics); returns the HTTP status actually sent."""
        try:
            if trace is not None:
                with trace.activate():
                    status, payload = handler(self.lineage, self, parsed)
            else:
                status, payload = handler(self.lineage, self, parsed)
        except Exception as error:  # noqa: BLE001 - must never hang the socket
            status, kind, message = _error_info(error)
            self._send_error_payload(status, kind, message)
            return status
        if isinstance(payload, tuple):
            content_type, text = payload
            self._send_text(status, text, content_type)
        else:
            self._send_json(status, payload)
        return status

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")


class _BadJson(ValueError):
    """Body was present but not valid JSON (distinct 400 type)."""


def _error_info(error: BaseException) -> Tuple[int, str, str]:
    """Map an exception to its structured ``(status, type, message)``
    triple — the one taxonomy behind whole-request errors and the
    per-item errors of ``/query_batch``."""
    if isinstance(error, _BadJson):
        return 400, "bad-json", f"malformed JSON body: {error}"
    if isinstance(error, (ValueError, AmbiguousLineageError)):
        return 400, "bad-request", str(error)
    if isinstance(error, KeyError):
        return 404, "not-found", str(error.args[0] if error.args else error)
    if isinstance(error, DeadlineExceeded):
        # before OSError: TimeoutError is an OSError subclass on 3.10+
        return 504, "deadline-exceeded", str(error)
    if isinstance(error, ShardUnavailable):
        return 503, "shard-unavailable", str(error)
    if isinstance(error, IngestOverloaded):
        return 503, "overloaded", str(error)
    if isinstance(error, OSError):
        return 503, "io-error", f"{type(error).__name__}: {error}"
    return 500, "internal", f"{type(error).__name__}: {error}"


def _route_query(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    body = handler._read_body()
    path, query, merge, include_boxes, include_cells, deadline = _parse_query_request(body)
    start = time.monotonic()
    if server.coalescer is not None:
        outcome = server.coalescer.submit(path, query, merge=merge, deadline=deadline)
    else:
        outcome = server.executor.query(path, query, merge=merge, deadline=deadline)
    payload = result_payload(
        outcome.result, include_boxes=include_boxes, include_cells=include_cells
    )
    payload["cached"] = outcome.cached
    payload["degraded"] = outcome.degraded
    payload["elapsed_ms"] = (time.monotonic() - start) * 1000.0
    return 200, payload


def _route_query_batch(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    body = handler._read_body()
    items = body.get("queries")
    if not isinstance(items, list) or not items:
        raise ValueError("'queries' must be a non-empty list of query objects")
    deadline = body.get("deadline")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise ValueError("'deadline' must be a positive number of seconds")
        deadline = float(deadline)
    # parse each item independently: one malformed entry becomes a
    # structured per-item error, never a whole-batch 400
    specs: List[Any] = []
    for item in items:
        try:
            if not isinstance(item, dict):
                raise ValueError("each 'queries' entry must be a JSON object")
            specs.append(_parse_query_request(item))
        except ValueError as error:
            specs.append(error)
    results: List[Any] = [None] * len(items)
    start = time.monotonic()
    # one executor batch per merge flavor (batches share a merge flag);
    # almost all real batches are homogeneous, so this is one call
    for merge_value in (True, False):
        idxs = [
            i
            for i, spec in enumerate(specs)
            if not isinstance(spec, BaseException) and spec[2] is merge_value
        ]
        if not idxs:
            continue
        outcomes = server.executor.query_batch(
            [(specs[i][0], specs[i][1]) for i in idxs],
            merge=merge_value,
            deadline=deadline,
        )
        for i, outcome in zip(idxs, outcomes):
            results[i] = outcome
    elapsed_ms = (time.monotonic() - start) * 1000.0
    payload_results = []
    for spec, outcome in zip(specs, results):
        if isinstance(spec, BaseException):
            outcome = spec
        if isinstance(outcome, BaseException):
            status, kind, message = _error_info(outcome)
            payload_results.append(
                {"error": {"type": kind, "message": message, "status": status}}
            )
            continue
        entry = result_payload(
            outcome.result, include_boxes=spec[3], include_cells=spec[4]
        )
        entry["cached"] = outcome.cached
        entry["degraded"] = outcome.degraded
        payload_results.append(entry)
    return 200, {
        "results": payload_results,
        "batch_size": len(items),
        "elapsed_ms": elapsed_ms,
    }


def _array_param(parsed) -> str:
    params = urllib.parse.parse_qs(parsed.query)
    values = params.get("array")
    if not values or not values[0]:
        raise ValueError("the 'array' query parameter is required")
    return values[0]


def _route_impact(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    name = _array_param(parsed)
    return 200, {"array": name, "impact": server.executor.impact(name)}


def _route_dependencies(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    name = _array_param(parsed)
    return 200, {"array": name, "dependencies": server.executor.dependencies(name)}


def _route_summary(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    # copy before annotating: the summary dict is shared with the cache
    payload = dict(server.executor.lineage_summary())
    payload["edges"] = [list(pair) for pair in server.executor.graph_edges()]
    return 200, payload


def _route_healthz(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    log = server.log
    store = getattr(log, "store", None)
    generations = (
        list(store.generation_vector()) if store is not None else [log.catalog.version]
    )
    breakers = server.executor.breaker_stats()
    degraded = any(b["state"] != "closed" for b in breakers.values())
    return 200, {
        "status": "degraded" if degraded else "ok",
        "backend": log.backend,
        "arrays": len(log.catalog.arrays),
        "entries": len(log.catalog),
        "operations": len(log.catalog.operations),
        "generations": generations,
        "breakers": {str(shard): stats for shard, stats in breakers.items()},
        "executor": server.executor.stats(),
        "coalescer": server.coalescer.stats() if server.coalescer is not None else None,
        "storage": _storage_stats(store),
        "metrics": REGISTRY.snapshot(),
    }


def _storage_stats(store) -> dict:
    """One shape for both backends: write coalescing, table cache, and mmap
    reader stats, pulled from the same objects the metrics registry meters."""
    if store is None:
        return {}
    stats: Dict[str, Any] = {}
    if hasattr(store, "write_stats"):
        stats["writes"] = store.write_stats()
    if hasattr(store, "cache_stats"):  # sharded: one entry per shard
        stats["table_cache"] = store.cache_stats()
    elif hasattr(store, "cache"):
        stats["table_cache"] = store.cache.stats()
    if hasattr(store, "reader_stats"):
        stats["readers"] = store.reader_stats()
    return stats


def _route_metrics(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, tuple]:
    return 200, ("text/plain; version=0.0.4; charset=utf-8", REGISTRY.render())


def _route_traces(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    params = urllib.parse.parse_qs(parsed.query)
    limit = None
    if params.get("limit"):
        try:
            limit = int(params["limit"][0])
        except ValueError:
            raise ValueError("the 'limit' query parameter must be an integer") from None
        if limit <= 0:
            raise ValueError("the 'limit' query parameter must be positive")
    return 200, {"traces": tracing.recent_traces(limit)}


def _route_scrub(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    body = handler._read_body() if handler.headers.get("Content-Length") else {}
    repair = bool(body.get("repair", False))
    try:
        report = server.log.scrub(repair=repair)
    except RuntimeError as error:  # e.g. the memory backend has no segments
        raise ValueError(str(error)) from None
    # reports may carry Paths / int shard keys; normalize to pure JSON
    return 200, {"scrub": json.loads(json.dumps(report, default=str))}


_ROUTES = {
    ("POST", "/query"): _route_query,
    ("POST", "/query_batch"): _route_query_batch,
    ("GET", "/graph/impact"): _route_impact,
    ("GET", "/graph/dependencies"): _route_dependencies,
    ("GET", "/graph/summary"): _route_summary,
    ("GET", "/healthz"): _route_healthz,
    ("GET", "/metrics"): _route_metrics,
    ("GET", "/debug/traces"): _route_traces,
    ("POST", "/admin/scrub"): _route_scrub,
}


class _PendingQuery:
    """One ``/query`` request parked in the coalescer, waiting for a flush."""

    __slots__ = ("path", "query", "merge", "deadline", "arrival", "event", "outcome", "error")

    def __init__(self, path, query, merge: bool, deadline: Optional[float]) -> None:
        self.path = path
        self.query = query
        self.merge = merge
        self.deadline = deadline
        self.arrival = time.monotonic()
        self.event = threading.Event()
        self.outcome: Optional[QueryOutcome] = None
        self.error: Optional[BaseException] = None


class QueryCoalescer:
    """Group single ``/query`` requests arriving within a window into one
    executor batch — the read-path mirror of the ingest committer's group
    commit.

    A background flusher owns the pending queue.  The flush rule keeps
    single-threaded clients deadlock- and latency-free: woken with exactly
    one pending request and nothing else inbound, the flusher flushes it
    *immediately* (counted as reason ``idle``); with two or more pending it
    waits out the coalescing tick from the *earliest* arrival, letting more
    requests pile on, then flushes them as one batch (reason ``window``).
    Requests arriving while a batch executes accumulate for the next flush,
    so batches form under sustained load without ever parking a lone caller.
    """

    def __init__(self, executor: QueryExecutor, window_ms: float) -> None:
        self.executor = executor
        self.window = max(0.0, float(window_ms)) / 1000.0
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: List[_PendingQuery] = []
        self._closed = False
        self.flushes = {"idle": 0, "window": 0}
        self.queries = 0
        self.largest_batch = 0
        self._thread = threading.Thread(
            target=self._run, name="query-coalescer", daemon=True
        )
        self._thread.start()

    def submit(
        self,
        path,
        query,
        merge: bool = True,
        deadline: Optional[float] = None,
    ) -> QueryOutcome:
        """Park the query until the next flush; returns its outcome (or
        re-raises its per-item error) once the batch it joined executes."""
        item = _PendingQuery(path, query, merge, deadline)
        with self._wakeup:
            if self._closed:
                raise RuntimeError("the query coalescer is closed")
            self._pending.append(item)
            self._wakeup.notify()
        item.event.wait()
        if item.error is not None:
            raise item.error
        assert item.outcome is not None
        return item.outcome

    def _run(self) -> None:
        while True:
            with self._wakeup:
                while not self._pending and not self._closed:
                    self._wakeup.wait()
                if not self._pending:
                    return  # closed and drained
                if len(self._pending) > 1 and not self._closed:
                    # several waiters: let the tick fill the batch
                    expires = self._pending[0].arrival + self.window
                    while not self._closed:
                        remaining = expires - time.monotonic()
                        if remaining <= 0:
                            break
                        self._wakeup.wait(timeout=remaining)
                batch, self._pending = self._pending, []
            self._flush(batch)

    def _flush(self, batch: List[_PendingQuery]) -> None:
        reason = "idle" if len(batch) == 1 else "window"
        self.flushes[reason] += 1
        self.queries += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))
        _COALESCE_FLUSHES.labels(reason=reason).inc()
        _COALESCED_BATCH.observe(len(batch))
        # executor batches share one merge flag and one deadline; flush
        # each distinct combination as its own sub-batch
        groups: Dict[Tuple[bool, Optional[float]], List[_PendingQuery]] = {}
        for item in batch:
            groups.setdefault((item.merge, item.deadline), []).append(item)
        for (merge, deadline), items in groups.items():
            try:
                outcomes = self.executor.query_batch(
                    [(item.path, item.query) for item in items],
                    merge=merge,
                    deadline=deadline,
                )
            except BaseException as error:  # noqa: BLE001 - waiters must wake
                outcomes = [error] * len(items)
            for item, outcome in zip(items, outcomes):
                if isinstance(outcome, BaseException):
                    item.error = outcome
                else:
                    item.outcome = outcome
                item.event.set()

    def stats(self) -> dict:
        with self._lock:
            pending = len(self._pending)
        return {
            "window_ms": self.window * 1000.0,
            "pending": pending,
            "flushes": dict(self.flushes),
            "queries": self.queries,
            "largest_batch": self.largest_batch,
        }

    def close(self) -> None:
        """Stop the flusher; pending requests are flushed before it exits."""
        with self._wakeup:
            if self._closed:
                return
            self._closed = True
            self._wakeup.notify_all()
        self._thread.join(timeout=5)


class LineageServer:
    """Serve a DSLog catalog over HTTP.

    Parameters
    ----------
    log:
        The :class:`~repro.dslog.DSLog` to serve (any backend).  The server
        only reads; a colocated writer keeps ingesting through the same log
        object and the result cache invalidates per touched shard.
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`url`).
    executor:
        A pre-built :class:`QueryExecutor` to share; by default the server
        owns one (and closes it on :meth:`close`).
    max_workers / cache_entries:
        Forwarded to the owned executor.
    coalesce_ms:
        Opt-in request coalescing: single ``/query`` requests arriving
        within this window are grouped into one executor batch
        (:class:`QueryCoalescer`).  ``None`` reads the
        ``DSLOG_COALESCE_MS`` environment variable; ``0`` (the default
        when the variable is unset) disables coalescing.
    """

    def __init__(
        self,
        log,
        host: str = "127.0.0.1",
        port: int = 0,
        executor: Optional[QueryExecutor] = None,
        max_workers: Optional[int] = None,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        coalesce_ms: Optional[float] = None,
    ) -> None:
        self.log = log
        self._owns_executor = executor is None
        self.executor = executor or QueryExecutor(
            log, max_workers=max_workers, cache_entries=cache_entries
        )
        if coalesce_ms is None:
            raw = os.environ.get("DSLOG_COALESCE_MS", "").strip()
            if raw:
                try:
                    coalesce_ms = float(raw)
                except ValueError:
                    raise ValueError(
                        f"DSLOG_COALESCE_MS must be a number of milliseconds, got {raw!r}"
                    ) from None
        self.coalescer: Optional[QueryCoalescer] = (
            QueryCoalescer(self.executor, coalesce_ms)
            if coalesce_ms is not None and coalesce_ms > 0
            else None
        )
        handler = type("LineageHandler", (_Handler,), {"lineage": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "LineageServer":
        """Serve on a daemon thread; returns self (``server = log.serve()``)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="lineage-http",
                kwargs={"poll_interval": 0.05},
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (blocks; for dedicated processes)."""
        self._httpd.serve_forever(poll_interval=0.05)

    def close(self) -> None:
        """Stop accepting, join the serving thread, release the executor."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self.coalescer is not None:
            self.coalescer.close()
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "LineageServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
# transport-level failures worth a retry: the server restarting, a listen
# backlog reset, a half-closed keep-alive connection
_RETRYABLE = (
    ConnectionResetError,
    ConnectionRefusedError,
    ConnectionAbortedError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    socket.timeout,
)


class LineageClient:
    """Thin stdlib HTTP client for a :class:`LineageServer`.

    All requests are read-only (and therefore idempotent), so transport
    failures — connection reset/refused, a server restart mid-request —
    are retried up to *retries* times with exponential backoff before
    :class:`LineageConnectionError` is raised.  Each backoff delay is
    *jittered* (scaled by a random factor in ``[1, 1 + jitter]``) so a
    fleet of clients hammered off the same server restart does not retry
    in lockstep, and the total time spent sleeping between retries is
    capped by *retry_budget* seconds — whichever of the attempt count or
    the budget runs out first ends the retry loop.  HTTP-level errors are
    parsed back into :class:`LineageServerError` with the server's
    structured ``type`` and ``message``.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.05,
        jitter: float = 0.5,
        retry_budget: Optional[float] = 10.0,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.jitter = max(0.0, float(jitter))
        self.retry_budget = None if retry_budget is None else float(retry_budget)
        self.requests_sent = 0
        self.retries_used = 0

    @classmethod
    def connect(cls, url: str, timeout: float = 10.0, **kwargs) -> "LineageClient":
        """Build a client and wait (up to *timeout* seconds) for the server
        to answer ``/healthz`` — the rendezvous for freshly spawned server
        processes."""
        client = cls(url, **kwargs)
        deadline = time.monotonic() + float(timeout)
        while True:
            try:
                client.healthz()
                return client
            except (LineageConnectionError, LineageServerError):
                if time.monotonic() >= deadline:
                    raise LineageConnectionError(
                        f"no lineage server answered at {client.url} within {timeout}s"
                    ) from None
                time.sleep(min(0.05, client.backoff))

    # -- transport ------------------------------------------------------
    def _request(self, method: str, route: str, body: Optional[dict] = None) -> dict:
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if data is not None else {}
        last_error: Optional[BaseException] = None
        budget = self.retry_budget
        for attempt in range(self.retries + 1):
            if attempt:
                delay = self.backoff * (2 ** (attempt - 1))
                delay *= 1.0 + self.jitter * random.random()
                if budget is not None:
                    if budget <= 0:
                        raise LineageConnectionError(
                            f"{method} {route} failed after {attempt} attempts "
                            f"(retry budget of {self.retry_budget}s exhausted): "
                            f"{last_error}"
                        ) from last_error
                    delay = min(delay, budget)
                    budget -= delay
                self.retries_used += 1
                time.sleep(delay)
            request = urllib.request.Request(
                self.url + route, data=data, headers=headers, method=method
            )
            self.requests_sent += 1
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as error:
                raise self._server_error(error) from None
            except _RETRYABLE as error:
                last_error = error
            except urllib.error.URLError as error:
                if not isinstance(error.reason, _RETRYABLE):
                    raise LineageConnectionError(str(error)) from error
                last_error = error
        raise LineageConnectionError(
            f"{method} {route} failed after {self.retries + 1} attempts: {last_error}"
        ) from last_error

    @staticmethod
    def _server_error(error: urllib.error.HTTPError) -> LineageServerError:
        try:
            payload = json.loads(error.read().decode("utf-8"))
            detail = payload["error"]
            return LineageServerError(error.code, detail["type"], detail["message"])
        except Exception:  # noqa: BLE001 - non-JSON error body
            return LineageServerError(error.code, "http-error", str(error))

    # -- API ------------------------------------------------------------
    def prov_query(
        self,
        path: Sequence[str],
        cells: Optional[Sequence] = None,
        slices: Optional[Sequence] = None,
        merge: bool = True,
        include_boxes: bool = True,
        include_cells: bool = False,
        deadline: Optional[float] = None,
    ) -> dict:
        """Run a lineage query; returns the server's result payload
        (``boxes``, exact ``count``, per-hop stats, ``cached`` and
        ``degraded`` flags).  *deadline* bounds the server-side fan-out —
        a slow shard turns into a structured 504, never a hang."""
        body: Dict[str, Any] = {"path": list(path), "merge": merge}
        if cells is not None:
            body["cells"] = [list(cell) for cell in cells]
        if slices is not None:
            body["slices"] = [list(pair) if pair is not None else None for pair in slices]
        body["include_boxes"] = include_boxes
        body["include_cells"] = include_cells
        if deadline is not None:
            body["deadline"] = deadline
        return self._request("POST", "/query", body)

    def prov_query_batch(
        self,
        queries: Sequence[Any],
        merge: bool = True,
        include_boxes: bool = True,
        include_cells: bool = False,
        deadline: Optional[float] = None,
    ) -> List[dict]:
        """Run many lineage queries in one ``POST /query_batch`` round trip
        — the server executes them as one θ-join pass per resolved path.

        Each entry of *queries* is either a full request dict (the same
        shape :meth:`prov_query` builds: ``path`` plus ``cells`` or
        ``slices``, optionally overriding ``merge`` etc.) or a shorthand
        ``(path, cells)`` pair.  Returns one entry per query, in order:
        a result payload, or ``{"error": {...}}`` for queries that failed
        individually (a bad query never fails its batch-mates).
        """
        body_queries: List[dict] = []
        for item in queries:
            if isinstance(item, dict):
                entry = dict(item)
            else:
                path, cells = item
                entry = {
                    "path": list(path),
                    "cells": [
                        list(cell) if isinstance(cell, (list, tuple)) else cell
                        for cell in cells
                    ],
                }
            entry.setdefault("merge", merge)
            entry.setdefault("include_boxes", include_boxes)
            entry.setdefault("include_cells", include_cells)
            body_queries.append(entry)
        body: Dict[str, Any] = {"queries": body_queries}
        if deadline is not None:
            body["deadline"] = deadline
        return self._request("POST", "/query_batch", body)["results"]

    def impact(self, name: str) -> Dict[str, int]:
        payload = self._request(
            "GET", "/graph/impact?" + urllib.parse.urlencode({"array": name})
        )
        return payload["impact"]

    def dependencies(self, name: str) -> Dict[str, int]:
        payload = self._request(
            "GET", "/graph/dependencies?" + urllib.parse.urlencode({"array": name})
        )
        return payload["dependencies"]

    def lineage_summary(self) -> dict:
        return self._request("GET", "/graph/summary")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def scrub(self, repair: bool = False) -> dict:
        """Run the server-side fsck (``POST /admin/scrub``); returns the
        scrub report.  ``repair=True`` heals the catalog in place."""
        return self._request("POST", "/admin/scrub", {"repair": repair})["scrub"]

    def metrics_text(self) -> str:
        """Fetch ``GET /metrics`` as raw Prometheus exposition text (the
        one endpoint that is not JSON, so it bypasses :meth:`_request`)."""
        request = urllib.request.Request(self.url + "/metrics", method="GET")
        self.requests_sent += 1
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise self._server_error(error) from None
        except urllib.error.URLError as error:
            raise LineageConnectionError(str(error)) from error

    def traces(self, limit: Optional[int] = None) -> list:
        """Fetch recently finished traces (``GET /debug/traces``),
        newest first."""
        route = "/debug/traces"
        if limit is not None:
            route += "?" + urllib.parse.urlencode({"limit": limit})
        return self._request("GET", route)["traces"]
