"""The HTTP lineage server and client (``LineageServer`` / ``LineageClient``).

Everything before this module answered queries in-process; the serving
tier makes the catalog reachable from other processes with nothing beyond
the stdlib: a :class:`http.server.ThreadingHTTPServer` fronting the shared
:class:`~repro.service.api.ServiceCore` (one handler thread per
connection, all sharing the core's executor, result cache and optional
coalescer), and a thin ``http.client``-based client with **persistent
keep-alive connections** (one per calling thread, transparently re-dialed
when the server restarts) and bounded retry on transport failures.

This module is one of two transports over the same service layer — the
binary RPC tier (:mod:`repro.service.rpc`) is the other.  Pick HTTP for
interoperability (curl, browsers, load balancers); pick RPC when the
round trip itself is the cost that matters.

JSON API
--------
=======================  ====  =====================================================
``/query``               POST  ``{"path": [...], "cells": [[i, j], ...]}`` or
                               ``{"path": [...], "slices": [[start, stop], ...]}``
                               (+ optional ``"merge"``, ``"include_boxes"``,
                               ``"include_cells"``) → result boxes, exact cell
                               count, per-hop stats, ``"cached"`` flag
``/query_batch``         POST  ``{"queries": [<query body>, ...]}`` → one
                               ``results`` entry per query (a result payload or
                               a per-item ``{"error": ...}``); the server runs
                               each resolved path's queries as a single batched
                               θ-join pass
``/graph/impact``        GET   ``?array=NAME`` → downstream closure with hop counts
``/graph/dependencies``  GET   ``?array=NAME`` → upstream closure with hop counts
``/graph/summary``       GET   whole-catalog summary (roots, leaves, fan-in/out…)
``/healthz``             GET   liveness + catalog size, durable generation vector,
                               cache/executor stats, per-shard circuit-breaker
                               states (``"status": "degraded"`` while any breaker
                               is open)
``/metrics``             GET   the whole :data:`repro.obs.REGISTRY` in Prometheus
                               text exposition format (``text/plain;
                               version=0.0.4``) — the only non-JSON endpoint
``/debug/traces``        GET   recently finished traces, newest first
                               (``?limit=N`` caps the reply); spans carry wall
                               time and tags (shard, cache outcome, fault site)
``/admin/scrub``         POST  ``{"repair": bool}`` (body optional) → full scrub
                               report; with ``"repair": true`` the catalog is
                               healed in place (:mod:`repro.storage.scrub`)
=======================  ====  =====================================================

Every failure returns a *structured* JSON payload — ``{"error": {"type",
"message"}}`` with a matching status code (400 malformed request, 404
unknown array or endpoint, 405 wrong method, 500 internal; plus the fault
taxonomy: 504 ``deadline-exceeded``, 503 ``shard-unavailable`` /
``overloaded`` / ``io-error``) — never a hung socket: the handler catches
everything, and the server always finishes the response it started.
``/query`` responses carry a ``"degraded"`` flag: ``true`` means the home
shard was unavailable and a stale cached result was served instead
(:class:`~repro.service.query.QueryExecutor`'s circuit-breaker path).

Construction sugar: ``DSLog.serve(port)`` / ``LineageService.serve(port)``
start a server on a background thread; ``LineageClient.connect(url)``
polls ``/healthz`` until the server answers.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.error
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs import REGISTRY, log_event, tracing
from .api import (
    BadJson,
    QueryCoalescer,
    ServiceCore,
    annotate_outcome,
    error_info,
    result_payload,
)
from .query import DEFAULT_CACHE_ENTRIES, QueryExecutor
from .retry import RetryPolicy

_HTTP_REQUESTS = REGISTRY.counter(
    "dslog_http_requests_total",
    "HTTP requests served, by endpoint and status code",
    labelnames=("endpoint", "status"),
)
_HTTP_SECONDS = REGISTRY.histogram(
    "dslog_http_request_seconds",
    "Wall time per HTTP request, by endpoint",
    labelnames=("endpoint",),
)

# endpoints that open a per-request trace (the observability surfaces
# themselves — /metrics, /debug/traces, /healthz — would only self-spam)
_TRACED_ENDPOINTS = {
    "/query",
    "/query_batch",
    "/graph/impact",
    "/graph/dependencies",
    "/graph/summary",
    "/admin/scrub",
}

__all__ = [
    "LineageServer",
    "LineageClient",
    "LineageServerError",
    "LineageConnectionError",
    "QueryCoalescer",
    "result_payload",
]


class LineageServerError(RuntimeError):
    """A structured error returned by the server (the client re-raises it)."""

    def __init__(self, status: int, kind: str, message: str) -> None:
        super().__init__(f"[{status} {kind}] {message}")
        self.status = status
        self.kind = kind
        self.message = message


class LineageConnectionError(ConnectionError):
    """The client exhausted its transport retries without an HTTP response."""


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "dslog-lineage"
    # buffer the response and push it in one segment: the stdlib default
    # (unbuffered writes + Nagle) turns every keep-alive response into a
    # small-write sequence that trips the ~40 ms delayed-ACK stall
    wbufsize = 64 * 1024
    disable_nagle_algorithm = True

    # the LineageServer installs itself here on the subclass it creates
    lineage: "LineageServer" = None

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # BaseHTTPRequestHandler's per-response log line, routed through
        # the structured logger at DEBUG — quiet by default, one
        # DSLOG_LOG_LEVEL=DEBUG away when needed.  The richer per-request
        # event (endpoint, status, latency) is emitted by _dispatch at INFO.
        log_event(
            "http_log",
            level="debug",
            component="server",
            client=self.client_address[0],
            line=format % args,
        )

    # -- plumbing -------------------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(self, status: int, kind: str, message: str) -> None:
        self._send_json(status, {"error": {"type": kind, "message": message}})

    def _read_body(self) -> dict:
        length = self.headers.get("Content-Length")
        if length is None:
            raise ValueError("a JSON request body is required")
        raw = self.rfile.read(int(length))
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadJson(str(error)) from None
        if not isinstance(body, dict):
            raise BadJson("the request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        parsed = urllib.parse.urlparse(self.path)
        endpoint = parsed.path.rstrip("/") or "/"
        route = (method, endpoint)
        handler = _ROUTES.get(route)
        if handler is None:
            if any(existing[1] == endpoint for existing in _ROUTES):
                self._send_error_payload(
                    405, "method-not-allowed", f"{method} is not supported on {parsed.path}"
                )
            else:
                self._send_error_payload(
                    404, "not-found", f"unknown endpoint {parsed.path!r}"
                )
            # unknown paths share one label value so a URL scanner cannot
            # blow up the endpoint cardinality
            _HTTP_REQUESTS.labels(endpoint="(unrouted)", status="404").inc()
            return
        started = time.monotonic()
        trace: Optional[tracing.Trace] = None
        if endpoint in _TRACED_ENDPOINTS and tracing.tracing_enabled():
            trace = tracing.Trace("http", endpoint=endpoint, method=method)
        status = self._run_route(handler, parsed, trace)
        elapsed = time.monotonic() - started
        if trace is not None:
            trace.set_tag("status", status)
            trace.finish()
        _HTTP_REQUESTS.labels(endpoint=endpoint, status=str(status)).inc()
        _HTTP_SECONDS.labels(endpoint=endpoint).observe(elapsed)
        log_event(
            "request",
            component="server",
            method=method,
            endpoint=endpoint,
            status=status,
            ms=round(elapsed * 1000.0, 3),
            client=self.client_address[0],
            trace_id=trace.trace_id if trace is not None else None,
        )

    def _run_route(self, handler, parsed, trace: "Optional[tracing.Trace]") -> int:
        """Execute one route handler inside the request's trace context and
        send the response (JSON, or raw text for ``(content_type, text)``
        payloads like /metrics); returns the HTTP status actually sent."""
        try:
            if trace is not None:
                with trace.activate():
                    status, payload = handler(self.lineage, self, parsed)
            else:
                status, payload = handler(self.lineage, self, parsed)
        except Exception as error:  # noqa: BLE001 - must never hang the socket
            status, kind, message = error_info(error)
            self._send_error_payload(status, kind, message)
            return status
        if isinstance(payload, tuple):
            content_type, text = payload
            self._send_text(status, text, content_type)
        else:
            self._send_json(status, payload)
        return status

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")


def _route_query(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    body = handler._read_body()
    start = time.monotonic()
    outcome, spec = server.core.execute_query(body)
    payload = result_payload(
        outcome.result,
        include_boxes=spec.include_boxes,
        include_cells=spec.include_cells,
    )
    return 200, annotate_outcome(payload, outcome, (time.monotonic() - start) * 1000.0)


def _route_query_batch(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    body = handler._read_body()
    start = time.monotonic()
    specs, outcomes = server.core.execute_query_batch(body)
    elapsed_ms = (time.monotonic() - start) * 1000.0
    payload_results = []
    for spec, outcome in zip(specs, outcomes):
        if isinstance(outcome, BaseException):
            status, kind, message = error_info(outcome)
            payload_results.append(
                {"error": {"type": kind, "message": message, "status": status}}
            )
            continue
        entry = result_payload(
            outcome.result,
            include_boxes=spec.include_boxes,
            include_cells=spec.include_cells,
        )
        entry["cached"] = outcome.cached
        entry["degraded"] = outcome.degraded
        payload_results.append(entry)
    return 200, {
        "results": payload_results,
        "batch_size": len(specs),
        "elapsed_ms": elapsed_ms,
    }


def _array_param(parsed) -> str:
    params = urllib.parse.parse_qs(parsed.query)
    values = params.get("array")
    if not values or not values[0]:
        raise ValueError("the 'array' query parameter is required")
    return values[0]


def _route_impact(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    return 200, server.core.impact_payload(_array_param(parsed))


def _route_dependencies(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    return 200, server.core.dependencies_payload(_array_param(parsed))


def _route_summary(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    return 200, server.core.summary_payload()


def _route_healthz(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    return 200, server.core.healthz_payload()


def _route_metrics(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, tuple]:
    return 200, ("text/plain; version=0.0.4; charset=utf-8", server.core.metrics_text())


def _route_traces(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    params = urllib.parse.parse_qs(parsed.query)
    limit = None
    if params.get("limit"):
        try:
            limit = int(params["limit"][0])
        except ValueError:
            raise ValueError("the 'limit' query parameter must be an integer") from None
        if limit <= 0:
            raise ValueError("the 'limit' query parameter must be positive")
    return 200, server.core.traces_payload(limit)


def _route_scrub(server: "LineageServer", handler: _Handler, parsed) -> Tuple[int, dict]:
    body = handler._read_body() if handler.headers.get("Content-Length") else {}
    return 200, server.core.scrub_payload(repair=bool(body.get("repair", False)))


_ROUTES = {
    ("POST", "/query"): _route_query,
    ("POST", "/query_batch"): _route_query_batch,
    ("GET", "/graph/impact"): _route_impact,
    ("GET", "/graph/dependencies"): _route_dependencies,
    ("GET", "/graph/summary"): _route_summary,
    ("GET", "/healthz"): _route_healthz,
    ("GET", "/metrics"): _route_metrics,
    ("GET", "/debug/traces"): _route_traces,
    ("POST", "/admin/scrub"): _route_scrub,
}


class LineageServer:
    """Serve a DSLog catalog over HTTP.

    Parameters
    ----------
    log:
        The :class:`~repro.dslog.DSLog` to serve (any backend).  The server
        only reads; a colocated writer keeps ingesting through the same log
        object and the result cache invalidates per touched shard.
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`url`).
    executor:
        A pre-built :class:`QueryExecutor` to share; by default the server
        owns one (and closes it on :meth:`close`).
    max_workers / cache_entries:
        Forwarded to the owned executor.
    coalesce_ms:
        Opt-in request coalescing (see :class:`~repro.service.api.ServiceCore`).
    core:
        A pre-built :class:`~repro.service.api.ServiceCore` to serve —
        how ``DSLog.serve(transport="both")`` makes HTTP and RPC share one
        executor and cache.  Mutually exclusive with *executor* /
        *max_workers* / *cache_entries* / *coalesce_ms*; the core is not
        closed by this server.
    """

    def __init__(
        self,
        log,
        host: str = "127.0.0.1",
        port: int = 0,
        executor: Optional[QueryExecutor] = None,
        max_workers: Optional[int] = None,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        coalesce_ms: Optional[float] = None,
        core: Optional[ServiceCore] = None,
    ) -> None:
        self._owns_core = core is None
        self.core = core or ServiceCore(
            log,
            executor=executor,
            max_workers=max_workers,
            cache_entries=cache_entries,
            coalesce_ms=coalesce_ms,
        )
        handler = type("LineageHandler", (_Handler,), {"lineage": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # the pre-core attribute surface, kept for callers and tests
    @property
    def log(self):
        return self.core.log

    @property
    def executor(self) -> QueryExecutor:
        return self.core.executor

    @property
    def coalescer(self) -> Optional[QueryCoalescer]:
        return self.core.coalescer

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "LineageServer":
        """Serve on a daemon thread; returns self (``server = log.serve()``)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="lineage-http",
                kwargs={"poll_interval": 0.05},
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (blocks; for dedicated processes)."""
        self._httpd.serve_forever(poll_interval=0.05)

    def close(self) -> None:
        """Stop accepting, join the serving thread, release the executor."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self._owns_core:
            self.core.close()

    def __enter__(self) -> "LineageServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
# transport-level failures worth a retry: the server restarting, a listen
# backlog reset, a half-closed keep-alive connection (RemoteDisconnected
# is exactly the keep-alive case: the server hung up between requests)
_RETRYABLE = (
    ConnectionResetError,
    ConnectionRefusedError,
    ConnectionAbortedError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    http.client.ResponseNotReady,
    socket.timeout,
)


class LineageClient:
    """Stdlib HTTP client for a :class:`LineageServer` with **persistent
    connections**: each calling thread keeps one ``http.client.
    HTTPConnection`` alive across requests (HTTP/1.1 keep-alive), so the
    steady-state round trip pays no TCP connect/teardown — the connection
    is re-dialed transparently when the server restarts or the idle socket
    is reset (``RemoteDisconnected``).

    All requests are read-only (and therefore idempotent), so transport
    failures are retried with decorrelated-jitter backoff bounded by both
    an attempt count and a total *retry_budget* of sleep seconds
    (:class:`~repro.service.retry.RetryPolicy`) before
    :class:`LineageConnectionError` is raised.  HTTP-level errors are
    parsed back into :class:`LineageServerError` with the server's
    structured ``type`` and ``message``.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.05,
        jitter: float = 0.5,
        retry_budget: Optional[float] = 10.0,
    ) -> None:
        self.url = url.rstrip("/")
        parsed = urllib.parse.urlsplit(self.url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"LineageClient speaks http:// only, got {url!r}")
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self.timeout = float(timeout)
        self.retry = RetryPolicy(
            retries=retries, backoff=backoff, jitter=jitter, retry_budget=retry_budget
        )
        self.requests_sent = 0
        self.retries_used = 0
        # one keep-alive connection per calling thread: threads fan out in
        # parallel (the old one-connection-per-request behavior, minus the
        # per-request dial), and every opened connection is registered so
        # close() can drop them all
        self._local = threading.local()
        self._conns_lock = threading.Lock()
        self._conns: List[http.client.HTTPConnection] = []

    # retry/backoff knobs kept as (assignable) attributes for callers that
    # tune an existing client
    @property
    def retries(self) -> int:
        return self.retry.retries

    @retries.setter
    def retries(self, value: int) -> None:
        self.retry.retries = int(value)

    @property
    def backoff(self) -> float:
        return self.retry.backoff

    @backoff.setter
    def backoff(self, value: float) -> None:
        self.retry.backoff = float(value)

    @property
    def retry_budget(self) -> Optional[float]:
        return self.retry.retry_budget

    @retry_budget.setter
    def retry_budget(self, value: Optional[float]) -> None:
        self.retry.retry_budget = None if value is None else float(value)

    @classmethod
    def connect(cls, url: str, timeout: float = 10.0, **kwargs) -> "LineageClient":
        """Build a client and wait (up to *timeout* seconds) for the server
        to answer ``/healthz`` — the rendezvous for freshly spawned server
        processes."""
        client = cls(url, **kwargs)
        deadline = time.monotonic() + float(timeout)
        while True:
            try:
                client.healthz()
                return client
            except (LineageConnectionError, LineageServerError):
                if time.monotonic() >= deadline:
                    raise LineageConnectionError(
                        f"no lineage server answered at {client.url} within {timeout}s"
                    ) from None
                time.sleep(min(0.05, client.backoff))

    # -- transport ------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            conn.connect()
            # request frames are small; ship them without Nagle batching
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            return
        self._local.conn = None
        with self._conns_lock:
            try:
                self._conns.remove(conn)
            except ValueError:
                pass
        try:
            conn.close()
        except OSError:
            pass

    def close(self) -> None:
        """Close every keep-alive connection this client has opened (any
        thread's).  The client remains usable — the next request re-dials."""
        with self._conns_lock:
            conns, self._conns = self._conns, []
        self._local = threading.local()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "LineageClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request_raw(self, method: str, route: str, body: Optional[dict] = None):
        """One request over the thread's persistent connection; returns
        ``(status, raw bytes)``.  Transport failures are retried (the
        connection is re-dialed); HTTP error statuses are returned to the
        caller for structured parsing."""
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if data is not None else {}
        schedule = self.retry.schedule()
        last_error: Optional[BaseException] = None
        while True:
            self.requests_sent += 1
            try:
                # dial errors are retryable too: the connection is opened
                # eagerly (to set TCP_NODELAY), inside the retry loop
                conn = self._connection()
                conn.request(method, route, body=data, headers=headers)
                response = conn.getresponse()
                # read fully so the connection is reusable for the next call
                payload = response.read()
                return response.status, payload
            except _RETRYABLE as error:
                last_error = error
            except (http.client.HTTPException, OSError) as error:
                # unexpected transport state (half-written request, DNS
                # failure): not retryable-by-policy, but the connection is
                # poisoned either way
                self._drop_connection()
                raise LineageConnectionError(str(error)) from error
            self._drop_connection()
            if not schedule.sleep():
                raise LineageConnectionError(
                    f"{method} {route} failed after {schedule.describe()}: {last_error}"
                ) from last_error
            self.retries_used += 1

    def _request(self, method: str, route: str, body: Optional[dict] = None) -> dict:
        status, payload = self._request_raw(method, route, body)
        if status >= 400:
            raise self._server_error(status, payload)
        return json.loads(payload.decode("utf-8"))

    @staticmethod
    def _server_error(status: int, payload: bytes) -> LineageServerError:
        try:
            detail = json.loads(payload.decode("utf-8"))["error"]
            return LineageServerError(status, detail["type"], detail["message"])
        except Exception:  # noqa: BLE001 - non-JSON error body
            return LineageServerError(status, "http-error", payload.decode("utf-8", "replace"))

    # -- API ------------------------------------------------------------
    def prov_query(
        self,
        path: Sequence[str],
        cells: Optional[Sequence] = None,
        slices: Optional[Sequence] = None,
        merge: bool = True,
        include_boxes: bool = True,
        include_cells: bool = False,
        deadline: Optional[float] = None,
    ) -> dict:
        """Run a lineage query; returns the server's result payload
        (``boxes``, exact ``count``, per-hop stats, ``cached`` and
        ``degraded`` flags).  *deadline* bounds the server-side fan-out —
        a slow shard turns into a structured 504, never a hang."""
        body: Dict[str, Any] = {"path": list(path), "merge": merge}
        if cells is not None:
            body["cells"] = [list(cell) for cell in cells]
        if slices is not None:
            body["slices"] = [list(pair) if pair is not None else None for pair in slices]
        body["include_boxes"] = include_boxes
        body["include_cells"] = include_cells
        if deadline is not None:
            body["deadline"] = deadline
        return self._request("POST", "/query", body)

    def prov_query_batch(
        self,
        queries: Sequence[Any],
        merge: bool = True,
        include_boxes: bool = True,
        include_cells: bool = False,
        deadline: Optional[float] = None,
    ) -> List[dict]:
        """Run many lineage queries in one ``POST /query_batch`` round trip
        — the server executes them as one θ-join pass per resolved path.

        Each entry of *queries* is either a full request dict (the same
        shape :meth:`prov_query` builds: ``path`` plus ``cells`` or
        ``slices``, optionally overriding ``merge`` etc.) or a shorthand
        ``(path, cells)`` pair.  Returns one entry per query, in order:
        a result payload, or ``{"error": {...}}`` for queries that failed
        individually (a bad query never fails its batch-mates).
        """
        body_queries: List[dict] = []
        for item in queries:
            if isinstance(item, dict):
                entry = dict(item)
            else:
                path, cells = item
                entry = {
                    "path": list(path),
                    "cells": [
                        list(cell) if isinstance(cell, (list, tuple)) else cell
                        for cell in cells
                    ],
                }
            entry.setdefault("merge", merge)
            entry.setdefault("include_boxes", include_boxes)
            entry.setdefault("include_cells", include_cells)
            body_queries.append(entry)
        body: Dict[str, Any] = {"queries": body_queries}
        if deadline is not None:
            body["deadline"] = deadline
        return self._request("POST", "/query_batch", body)["results"]

    def impact(self, name: str) -> Dict[str, int]:
        payload = self._request(
            "GET", "/graph/impact?" + urllib.parse.urlencode({"array": name})
        )
        return payload["impact"]

    def dependencies(self, name: str) -> Dict[str, int]:
        payload = self._request(
            "GET", "/graph/dependencies?" + urllib.parse.urlencode({"array": name})
        )
        return payload["dependencies"]

    def lineage_summary(self) -> dict:
        return self._request("GET", "/graph/summary")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def scrub(self, repair: bool = False) -> dict:
        """Run the server-side fsck (``POST /admin/scrub``); returns the
        scrub report.  ``repair=True`` heals the catalog in place."""
        return self._request("POST", "/admin/scrub", {"repair": repair})["scrub"]

    def metrics_text(self) -> str:
        """Fetch ``GET /metrics`` as raw Prometheus exposition text (the
        one endpoint whose payload is not JSON)."""
        status, payload = self._request_raw("GET", "/metrics")
        if status >= 400:
            raise self._server_error(status, payload)
        return payload.decode("utf-8")

    def traces(self, limit: Optional[int] = None) -> list:
        """Fetch recently finished traces (``GET /debug/traces``),
        newest first."""
        route = "/debug/traces"
        if limit is not None:
            route += "?" + urllib.parse.urlencode({"limit": limit})
        return self._request("GET", route)["traces"]
