"""Snapshot-isolated read-only catalog views (``SnapshotDSLog``).

``DSLog.snapshot()`` / ``LineageService.snapshot()`` hand out a
:class:`SnapshotDSLog`: a frozen, point-in-time view of the catalog that
answers the full read API — ``prov_query`` (including graph-planned
two-array paths), ``impact`` / ``dependencies`` / ``lineage_summary``,
``storage_bytes`` — while writers, group commits and background compaction
keep running on the live log.

Isolation protocol
------------------
* The catalog metadata (array dict, entry dict, operation list) is copied
  under the store's mutation lock, so the view is a *consistent cut*:
  every entry it holds was fully installed, and nothing installed later is
  visible.  Entry objects themselves are immutable once installed
  (a ``replace=True`` re-ingest installs a *new* object), so sharing them
  with the live catalog is safe.
* Table bytes are still read lazily through the live stores' LRU caches.
  Each backing store is **pinned** (:meth:`LineageStore.pin`) for the
  snapshot's lifetime: a compaction that runs while the snapshot is open
  retires its old segment files instead of deleting them, so refs the
  snapshot resolved before the compaction stay readable until the last
  pin is released.  Closing the snapshot releases the pins (and with them
  any retired files).  Tables the snapshot hydrated before that point are
  mmap-backed views into the retired segments; they remain valid even
  after the files are unlinked, because each table pins its mapping
  through the columns' buffer chain until the last view is dropped.
* ``generation_vector`` records the published per-shard manifest
  generations at snapshot time (a single-element vector for the segment
  backend) — two snapshots with equal vectors and equal catalog versions
  saw the same durable state.

Any mutating call on the view raises :class:`SnapshotReadOnlyError`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Optional, Tuple

from ..dslog import DSLog
from ..reuse.signatures import ReuseManager
from ..storage.catalog import Catalog

__all__ = ["SnapshotReadOnlyError", "SnapshotDSLog", "take_snapshot"]


class SnapshotReadOnlyError(RuntimeError):
    """A mutating DSLog call was made on a snapshot view."""


def _read_only(name: str):
    def method(self, *args, **kwargs):
        raise SnapshotReadOnlyError(
            f"{name}() is not available on a snapshot: this is a read-only "
            "view pinned at a point in time; mutate the live DSLog instead"
        )

    method.__name__ = name
    return method


class SnapshotDSLog(DSLog):
    """A read-only DSLog over a frozen copy of another log's catalog.

    Constructed by :func:`take_snapshot`; shares the source's stores for
    lazy table reads (pinned against compaction) but never mutates them.
    """

    def __init__(
        self,
        catalog: Catalog,
        source: DSLog,
        generation_vector: Tuple[int, ...],
    ) -> None:
        # deliberately does NOT call DSLog.__init__: a snapshot opens no
        # stores and owns no directory — it borrows the source's
        self.backend = "snapshot"
        self.root = source.root
        self.gzip = source.gzip
        self.reuse_confirmations = source.reuse_confirmations
        self.autosync = False
        self.store = source.store
        self.catalog = catalog
        self.generation_vector = generation_vector
        self.catalog_version = catalog.version
        self._reuse = ReuseManager(confirmations_required=source.reuse_confirmations)
        self._reuse_init_lock = threading.Lock()
        self._reuse_synced_count = None
        self._pending_reuse_state = None
        self._graph = None
        self._graph_lock = threading.Lock()
        self._path_cache = {}
        self._query_box_cache = {}
        self._closed = False
        self._pin_release = None

    # ------------------------------------------------------------------
    # the read API (prov_query, impact, dependencies, lineage_summary,
    # storage_bytes, graph) is inherited unchanged — it only reads
    # self.catalog, which is frozen
    # ------------------------------------------------------------------
    define_array = _read_only("define_array")
    add_lineage = _read_only("add_lineage")
    register_operation = _read_only("register_operation")
    sync = _read_only("sync")
    compact = _read_only("compact")

    def snapshot(self) -> "SnapshotDSLog":
        """Snapshotting a snapshot returns itself (it is already frozen)."""
        return self

    def close(self) -> None:
        """Release the snapshot's store pins (idempotent).  Retired segment
        files a compaction deferred for this snapshot are deleted once the
        last pin drops."""
        if self._closed:
            return
        self._closed = True
        if self._pin_release is not None:
            self._pin_release()
            self._pin_release = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SnapshotDSLog(entries={len(self.catalog)}, "
            f"generations={self.generation_vector})"
        )


def take_snapshot(log: DSLog) -> SnapshotDSLog:
    """Build a :class:`SnapshotDSLog` of *log*'s current catalog state.

    The copy happens under the catalog's mutation lock (sharded backend)
    so concurrent writers cannot produce a torn cut; the memory and
    segment backends are single-writer, where a plain copy is already
    consistent.
    """
    lock = getattr(getattr(log, "store", None), "meta_lock", None)
    with lock if lock is not None else contextlib.nullcontext():
        frozen = Catalog()
        frozen.arrays = dict(log.catalog.arrays)
        frozen._entries = dict(log.catalog._entries)
        frozen.operations = list(log.catalog.operations)
        frozen.version = log.catalog.version
        generations = _generation_vector(log)
        release = _pin_stores(log)
    view = SnapshotDSLog(frozen, log, generations)
    view._pin_release = release
    return view


def _generation_vector(log: DSLog) -> Tuple[int, ...]:
    store = log.store
    if store is None:
        return ()
    vector = getattr(store, "generation_vector", None)
    if vector is not None:
        return vector()
    return (store.manifest.generation,)


def _pin_stores(log: DSLog) -> Optional[callable]:
    store = log.store
    if store is None:
        return None
    store.pin()
    return store.release_pin
