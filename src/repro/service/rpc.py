"""The binary RPC transport: persistent-connection server and pooled client.

The HTTP tier (:mod:`repro.service.server`) optimizes for reach — curl,
browsers, load balancers.  This tier optimizes for the common production
shape instead: a handful of long-lived clients hammering the catalog with
small queries, where the per-request costs HTTP cannot shed (request-line
and header parsing, JSON-encoding every box coordinate) dominate the
round trip.  Both are thin shells over the same
:class:`~repro.service.api.ServiceCore`, so they answer identically and
share one executor, result cache and coalescer — ``DSLog.serve(
transport="both")`` runs them side by side on one catalog.

* :class:`RPCServer` — a ``socketserver.ThreadingTCPServer`` speaking the
  framed protocol of :mod:`repro.service.wire`: one daemon thread per
  connection reading length-prefixed frames in a loop (the connection
  persists across requests; request ids let a client pipeline), dispatching
  by opcode to the shared core, answering queries with binary result
  payloads.  Failures become ``OP_ERROR`` frames carrying the same
  structured ``(status, type, message)`` taxonomy as the HTTP tier — a
  broken request never hangs or silently drops the connection.
* :class:`RPCClient` — a pool of persistent connections (created on
  demand up to *pool_size*, returned to the pool after each round trip)
  with the same bounded retry machinery as the HTTP client
  (:class:`~repro.service.retry.RetryPolicy`): a reset connection, a
  server restart or a mid-frame close is re-dialed and the (idempotent)
  request re-sent until the attempt count or retry budget runs out.
  Query results come back as zero-copy :class:`~repro.service.wire.
  RPCResult` views.

Fault injection: pass a :class:`~repro.faults.FaultPlan` to the server
and the response path consults site ``"rpc.send"`` — ``stall`` rules
delay the response, ``error`` rules drop the connection before answering,
``short_write`` rules transmit a partial frame and then drop it.  The
soak tests drive these to prove the client degrades to retry, never to a
hang.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..obs import REGISTRY, log_event, tracing
from .api import ServiceCore, error_info
from .query import DEFAULT_CACHE_ENTRIES, QueryExecutor
from .retry import RetryPolicy
from .server import LineageConnectionError, LineageServer, LineageServerError
from .wire import (
    OP_DEPENDENCIES,
    OP_ERROR,
    OP_HEALTHZ,
    OP_IMPACT,
    OP_METRICS,
    OP_PING,
    OP_QUERY,
    OP_QUERY_BATCH,
    OP_SCRUB,
    OP_SUMMARY,
    OP_TRACES,
    OPCODES,
    RPCResult,
    ShortRead,
    decode_batch,
    decode_json,
    decode_result,
    encode_batch,
    encode_frame,
    encode_json,
    encode_result,
    read_frame,
)

__all__ = ["RPCServer", "RPCClient", "DualServer"]

_RPC_REQUESTS = REGISTRY.counter(
    "dslog_rpc_requests_total",
    "RPC requests served, by opcode and outcome status",
    labelnames=("op", "status"),
)
_RPC_SECONDS = REGISTRY.histogram(
    "dslog_rpc_request_seconds",
    "Wall time per RPC request, by opcode",
    labelnames=("op",),
)
_RPC_CONNECTIONS = REGISTRY.gauge(
    "dslog_rpc_connections",
    "Currently open RPC client connections",
)

# opcodes that open a per-request trace (mirrors the HTTP tier's list —
# the observability endpoints themselves would only self-spam)
_TRACED_OPS = {OP_QUERY, OP_QUERY_BATCH, OP_IMPACT, OP_DEPENDENCIES, OP_SUMMARY, OP_SCRUB}


class _ConnectionDropped(Exception):
    """Internal: a fault rule (or peer) killed this connection mid-response."""


# ----------------------------------------------------------------------
# per-opcode handlers (body already JSON-decoded; return the payload bytes)
# ----------------------------------------------------------------------
def _op_query(core: ServiceCore, body: dict) -> bytes:
    started = time.monotonic()
    outcome, spec = core.execute_query(body)
    return encode_result(
        outcome.result,
        include_boxes=spec.include_boxes,
        include_cells=spec.include_cells,
        cached=outcome.cached,
        degraded=outcome.degraded,
        elapsed_ms=(time.monotonic() - started) * 1000.0,
    )


def _op_query_batch(core: ServiceCore, body: dict) -> bytes:
    started = time.monotonic()
    specs, outcomes = core.execute_query_batch(body)
    entries: List[Union[bytes, dict]] = []
    for spec, outcome in zip(specs, outcomes):
        if isinstance(outcome, BaseException):
            status, kind, message = error_info(outcome)
            entries.append({"error": {"type": kind, "message": message, "status": status}})
        else:
            entries.append(
                encode_result(
                    outcome.result,
                    include_boxes=spec.include_boxes,
                    include_cells=spec.include_cells,
                    cached=outcome.cached,
                    degraded=outcome.degraded,
                )
            )
    return encode_batch(entries, elapsed_ms=(time.monotonic() - started) * 1000.0)


def _array_arg(body: dict) -> str:
    name = body.get("array")
    if not isinstance(name, str) or not name:
        raise ValueError("the 'array' field is required")
    return name


def _op_impact(core: ServiceCore, body: dict) -> bytes:
    return encode_json(core.impact_payload(_array_arg(body)))


def _op_dependencies(core: ServiceCore, body: dict) -> bytes:
    return encode_json(core.dependencies_payload(_array_arg(body)))


def _op_summary(core: ServiceCore, body: dict) -> bytes:
    return encode_json(core.summary_payload())


def _op_healthz(core: ServiceCore, body: dict) -> bytes:
    return encode_json(core.healthz_payload())


def _op_metrics(core: ServiceCore, body: dict) -> bytes:
    return core.metrics_text().encode("utf-8")


def _op_traces(core: ServiceCore, body: dict) -> bytes:
    limit = body.get("limit")
    if limit is not None and (not isinstance(limit, int) or isinstance(limit, bool)):
        raise ValueError("'limit' must be an integer")
    return encode_json(core.traces_payload(limit))


def _op_scrub(core: ServiceCore, body: dict) -> bytes:
    return encode_json(core.scrub_payload(repair=bool(body.get("repair", False))))


def _op_ping(core: ServiceCore, body: dict) -> bytes:
    return b""


_HANDLERS = {
    OP_QUERY: _op_query,
    OP_QUERY_BATCH: _op_query_batch,
    OP_IMPACT: _op_impact,
    OP_DEPENDENCIES: _op_dependencies,
    OP_SUMMARY: _op_summary,
    OP_HEALTHZ: _op_healthz,
    OP_METRICS: _op_metrics,
    OP_TRACES: _op_traces,
    OP_SCRUB: _op_scrub,
    OP_PING: _op_ping,
}


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One thread per connection: read frames in a loop until the peer
    hangs up, answering each on the same socket."""

    def handle(self) -> None:
        rpc: "RPCServer" = self.server.lineage_rpc
        sock: socket.socket = self.request
        # small frames dominate; never trade latency for Nagle batching
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        _RPC_CONNECTIONS.inc()
        log_event(
            "rpc_connect", level="debug", component="rpc", client=self.client_address[0]
        )
        try:
            while not rpc._closing:
                try:
                    opcode, request_id, payload = read_frame(sock)
                except ShortRead:
                    return  # peer closed; between frames this is graceful
                except ValueError as error:
                    # corrupt header: the stream is unparseable from here on
                    log_event(
                        "rpc_bad_frame",
                        level="warning",
                        component="rpc",
                        client=self.client_address[0],
                        error=str(error),
                    )
                    return
                except OSError:
                    return
                try:
                    rpc._serve_one(sock, opcode, request_id, payload, self.client_address)
                except (_ConnectionDropped, OSError):
                    return
        finally:
            _RPC_CONNECTIONS.dec()


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    # the RPCServer installs itself here
    lineage_rpc: "RPCServer" = None


class RPCServer:
    """Serve a DSLog catalog over the binary framed protocol.

    The constructor mirrors :class:`~repro.service.server.LineageServer`
    (same *executor* / *max_workers* / *cache_entries* / *coalesce_ms*
    knobs, same optional pre-built *core* for transport sharing) plus
    *fault_plan*, the injection hook used by the soak tests.
    """

    def __init__(
        self,
        log,
        host: str = "127.0.0.1",
        port: int = 0,
        executor: Optional[QueryExecutor] = None,
        max_workers: Optional[int] = None,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        coalesce_ms: Optional[float] = None,
        core: Optional[ServiceCore] = None,
        fault_plan=None,
    ) -> None:
        self._owns_core = core is None
        self.core = core or ServiceCore(
            log,
            executor=executor,
            max_workers=max_workers,
            cache_entries=cache_entries,
            coalesce_ms=coalesce_ms,
        )
        self.fault_plan = fault_plan
        self._closing = False
        self._tcp = _ThreadingTCPServer((host, port), _ConnectionHandler)
        self._tcp.lineage_rpc = self
        self.host, self.port = self._tcp.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def log(self):
        return self.core.log

    @property
    def executor(self) -> QueryExecutor:
        return self.core.executor

    @property
    def coalescer(self):
        return self.core.coalescer

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def url(self) -> str:
        return f"rpc://{self.host}:{self.port}"

    # -- request cycle ---------------------------------------------------
    def _serve_one(
        self, sock: socket.socket, opcode: int, request_id: int, payload: bytes, peer
    ) -> None:
        started = time.monotonic()
        op_name = OPCODES.get(opcode, f"op{opcode}")
        trace: Optional[tracing.Trace] = None
        if opcode in _TRACED_OPS and tracing.tracing_enabled():
            trace = tracing.Trace("rpc", op=op_name)
        status = "ok"
        try:
            handler = _HANDLERS.get(opcode)
            if handler is None:
                raise ValueError(f"unknown RPC opcode {opcode}")
            body = decode_json(payload) if payload else {}
            if not isinstance(body, dict):
                raise ValueError("the request payload must be a JSON object")
            if trace is not None:
                with trace.activate():
                    response_payload = handler(self.core, body)
            else:
                response_payload = handler(self.core, body)
            response_op = opcode
        except Exception as error:  # noqa: BLE001 - must answer, never hang
            http_status, kind, message = error_info(error)
            status = str(http_status)
            response_op = OP_ERROR
            response_payload = encode_json(
                {"status": http_status, "type": kind, "message": message}
            )
        elapsed = time.monotonic() - started
        if trace is not None:
            trace.set_tag("status", status)
            trace.finish()
        _RPC_REQUESTS.labels(op=op_name, status=status).inc()
        _RPC_SECONDS.labels(op=op_name).observe(elapsed)
        log_event(
            "rpc_request",
            component="rpc",
            op=op_name,
            status=status,
            ms=round(elapsed * 1000.0, 3),
            client=peer[0],
            trace_id=trace.trace_id if trace is not None else None,
        )
        self._send_frame(sock, response_op, request_id, response_payload)

    def _send_frame(
        self, sock: socket.socket, opcode: int, request_id: int, payload: bytes
    ) -> None:
        frame = encode_frame(opcode, request_id, payload)
        plan = self.fault_plan
        if plan is not None:
            # one consultation covers every rule kind at this site: stall
            # rules sleep in place, error/enospc rules raise, short_write
            # rules return how much of the frame reaches the wire
            try:
                truncated = plan.short_write("rpc.send", None, len(frame))
            except OSError as fault:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                raise _ConnectionDropped() from fault
            if truncated is not None:
                # transmit a partial frame, then kill the connection — the
                # client must see a short read and retry elsewhere
                try:
                    sock.sendall(frame[:truncated])
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                raise _ConnectionDropped()
        sock.sendall(frame)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "RPCServer":
        """Serve on a daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._tcp.serve_forever,
                name="lineage-rpc",
                kwargs={"poll_interval": 0.05},
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (blocks; for dedicated processes)."""
        self._tcp.serve_forever(poll_interval=0.05)

    def close(self) -> None:
        """Stop accepting, drop the serving thread, release the core."""
        if self._closed:
            return
        self._closed = True
        self._closing = True
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self._owns_core:
            self.core.close()

    def __enter__(self) -> "RPCServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
class _PooledConnection:
    """One persistent socket plus its monotonically increasing request id."""

    __slots__ = ("sock", "next_request_id")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.next_request_id = 0

    def take_request_id(self) -> int:
        rid = self.next_request_id
        self.next_request_id = (rid + 1) & 0xFFFFFFFF
        return rid

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class RPCClient:
    """Pooled persistent-connection client for an :class:`RPCServer`.

    Connections are created on demand up to *pool_size*, parked in an idle
    pool between requests (LIFO, so the hottest socket stays hot) and
    re-dialed transparently when the server restarts or a frame is cut
    short.  All requests are read-only, so transport failures re-send with
    decorrelated-jitter backoff bounded by the attempt count and the retry
    budget (:class:`~repro.service.retry.RetryPolicy`), then raise
    :class:`~repro.service.server.LineageConnectionError`.  Structured
    server failures (``OP_ERROR`` frames) raise
    :class:`~repro.service.server.LineageServerError` immediately — the
    same exception surface as the HTTP client.

    Accepts ``"host:port"``, ``"rpc://host:port"`` or a ``(host, port)``
    tuple as *address*.
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.05,
        jitter: float = 0.5,
        retry_budget: Optional[float] = 10.0,
        pool_size: int = 4,
    ) -> None:
        if isinstance(address, str):
            trimmed = address
            if "//" in trimmed:
                scheme, _, rest = trimmed.partition("//")
                if scheme not in ("rpc:", ""):
                    raise ValueError(f"RPCClient speaks rpc:// only, got {address!r}")
                trimmed = rest
            host, _, port_text = trimmed.rstrip("/").rpartition(":")
            if not host or not port_text.isdigit():
                raise ValueError(f"need 'host:port', got {address!r}")
            self.host, self.port = host, int(port_text)
        else:
            self.host, self.port = address[0], int(address[1])
        self.timeout = float(timeout)
        self.retry = RetryPolicy(
            retries=retries, backoff=backoff, jitter=jitter, retry_budget=retry_budget
        )
        self.pool_size = max(1, int(pool_size))
        self._lock = threading.Lock()
        self._idle: List[_PooledConnection] = []
        self._closed = False
        self.requests_sent = 0
        self.retries_used = 0
        self.dials = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @classmethod
    def connect(
        cls, address: Union[str, Tuple[str, int]], timeout: float = 10.0, **kwargs
    ) -> "RPCClient":
        """Build a client and wait (up to *timeout* seconds) for the server
        to answer a ping — the rendezvous for freshly spawned servers."""
        client = cls(address, **kwargs)
        deadline = time.monotonic() + float(timeout)
        while True:
            try:
                client.ping()
                return client
            except (LineageConnectionError, LineageServerError):
                if time.monotonic() >= deadline:
                    raise LineageConnectionError(
                        f"no RPC server answered at {client.address} within {timeout}s"
                    ) from None
                time.sleep(min(0.05, client.retry.backoff))

    # -- connection pool -------------------------------------------------
    def _acquire(self) -> _PooledConnection:
        with self._lock:
            if self._closed:
                raise RuntimeError("the RPC client is closed")
            if self._idle:
                return self._idle.pop()
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.dials += 1
        return _PooledConnection(sock)

    def _release(self, conn: _PooledConnection) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.pool_size:
                self._idle.append(conn)
                return
        conn.close()

    def close(self) -> None:
        """Close every pooled connection and refuse further requests."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()

    def __enter__(self) -> "RPCClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- transport -------------------------------------------------------
    def _request(self, opcode: int, body: Optional[dict] = None) -> Tuple[int, bytes]:
        """One round trip; returns ``(response opcode, payload)``.

        Transport failures (reset, refused, short read, timeout) discard
        the connection and retry on a fresh one; a corrupt frame is not
        retried (the stream is broken, not the transport)."""
        payload = encode_json(body) if body is not None else b""
        schedule = self.retry.schedule()
        last_error: Optional[BaseException] = None
        while True:
            try:
                conn = self._acquire()
            except OSError as error:
                last_error = error
            else:
                rid = conn.take_request_id()
                self.requests_sent += 1
                try:
                    conn.sock.sendall(encode_frame(opcode, rid, payload))
                    while True:
                        response_op, response_id, response_payload = read_frame(conn.sock)
                        if response_id == rid:
                            break
                        # stale response from an abandoned request on a
                        # recycled connection: drop and keep reading
                except (ConnectionError, socket.timeout, TimeoutError) as error:
                    conn.close()
                    last_error = error
                except ValueError:
                    conn.close()
                    raise
                except OSError as error:
                    conn.close()
                    last_error = error
                else:
                    self._release(conn)
                    if response_op == OP_ERROR:
                        raise self._server_error(response_payload)
                    return response_op, response_payload
            if not schedule.sleep():
                raise LineageConnectionError(
                    f"RPC {OPCODES.get(opcode, opcode)} to {self.address} failed "
                    f"after {schedule.describe()}: {last_error}"
                ) from last_error
            self.retries_used += 1

    @staticmethod
    def _server_error(payload: bytes) -> LineageServerError:
        try:
            info = decode_json(payload)
            return LineageServerError(info["status"], info["type"], info["message"])
        except Exception:  # noqa: BLE001 - malformed error frame
            return LineageServerError(
                500, "internal", payload.decode("utf-8", "replace")
            )

    # -- API -------------------------------------------------------------
    def ping(self) -> None:
        self._request(OP_PING)

    def prov_query(
        self,
        path: Sequence[str],
        cells: Optional[Sequence] = None,
        slices: Optional[Sequence] = None,
        merge: bool = True,
        include_boxes: bool = True,
        include_cells: bool = False,
        deadline: Optional[float] = None,
    ) -> RPCResult:
        """Run a lineage query; returns a zero-copy
        :class:`~repro.service.wire.RPCResult` (mapping-compatible with
        the HTTP client's result dict)."""
        body: Dict[str, Any] = {"path": list(path), "merge": merge}
        if cells is not None:
            body["cells"] = [list(cell) for cell in cells]
        if slices is not None:
            body["slices"] = [list(pair) if pair is not None else None for pair in slices]
        body["include_boxes"] = include_boxes
        body["include_cells"] = include_cells
        if deadline is not None:
            body["deadline"] = deadline
        _, payload = self._request(OP_QUERY, body)
        return decode_result(payload)

    @staticmethod
    def _normalize_queries(
        queries: Sequence[Any],
        merge: bool,
        include_boxes: bool,
        include_cells: bool,
    ) -> List[dict]:
        """``(path, cells)`` tuples / raw body dicts → query body dicts."""
        bodies: List[dict] = []
        for item in queries:
            if isinstance(item, dict):
                entry = dict(item)
            else:
                path, cells = item
                entry = {
                    "path": list(path),
                    "cells": [
                        list(cell) if isinstance(cell, (list, tuple)) else cell
                        for cell in cells
                    ],
                }
            entry.setdefault("merge", merge)
            entry.setdefault("include_boxes", include_boxes)
            entry.setdefault("include_cells", include_cells)
            bodies.append(entry)
        return bodies

    def prov_query_batch(
        self,
        queries: Sequence[Any],
        merge: bool = True,
        include_boxes: bool = True,
        include_cells: bool = False,
        deadline: Optional[float] = None,
    ) -> List[Union[RPCResult, dict]]:
        """Run many queries in one round trip; one entry per query, in
        order — an :class:`~repro.service.wire.RPCResult`, or the
        ``{"error": {...}}`` dict for queries that failed individually."""
        body: Dict[str, Any] = {
            "queries": self._normalize_queries(
                queries, merge, include_boxes, include_cells
            )
        }
        if deadline is not None:
            body["deadline"] = deadline
        _, payload = self._request(OP_QUERY_BATCH, body)
        results, _ = decode_batch(payload)
        return results

    def prov_query_pipelined(
        self,
        queries: Sequence[Any],
        merge: bool = True,
        include_boxes: bool = True,
        include_cells: bool = False,
        window: int = 8,
    ) -> List[Union[RPCResult, dict]]:
        """Run many queries over one connection with up to *window*
        request frames in flight — the frame header's request id is what
        makes this safe, every response names the request it answers.

        Unlike :meth:`prov_query_batch` (one ``OP_QUERY_BATCH`` frame the
        server executes as one batch), each query here is an ordinary
        ``OP_QUERY`` the server answers in arrival order; pipelining just
        stops the client from idling out a full round trip per request.
        Returns one entry per query, in order — an
        :class:`~repro.service.wire.RPCResult`, or the ``{"error": {...}}``
        dict for queries that failed individually.  Transport failures
        re-run the whole pipeline on a fresh connection (queries are
        idempotent reads), bounded by the retry budget.
        """
        payloads = [
            encode_json(body)
            for body in self._normalize_queries(
                queries, merge, include_boxes, include_cells
            )
        ]
        window = max(1, int(window))
        schedule = self.retry.schedule()
        last_error: Optional[BaseException] = None
        while True:
            try:
                conn = self._acquire()
            except OSError as error:
                last_error = error
            else:
                try:
                    results = self._pipeline_once(conn, payloads, window)
                except (ConnectionError, socket.timeout, TimeoutError) as error:
                    conn.close()
                    last_error = error
                except ValueError:
                    conn.close()
                    raise
                except OSError as error:
                    conn.close()
                    last_error = error
                else:
                    self._release(conn)
                    return results
            if not schedule.sleep():
                raise LineageConnectionError(
                    f"pipelined RPC query to {self.address} failed after "
                    f"{schedule.describe()}: {last_error}"
                ) from last_error
            self.retries_used += 1

    def _pipeline_once(
        self, conn: _PooledConnection, payloads: Sequence[bytes], window: int
    ) -> List[Union[RPCResult, dict]]:
        results: List[Union[RPCResult, dict]] = [None] * len(payloads)
        pending: deque = deque()  # (payload index, request id), send order
        sent = 0
        while sent < len(payloads) or pending:
            if sent < len(payloads) and len(pending) < window:
                burst: List[bytes] = []
                while sent < len(payloads) and len(pending) < window:
                    rid = conn.take_request_id()
                    self.requests_sent += 1
                    burst.append(encode_frame(OP_QUERY, rid, payloads[sent]))
                    pending.append((sent, rid))
                    sent += 1
                conn.sock.sendall(b"".join(burst))
            index, rid = pending.popleft()
            while True:
                op, response_id, payload = read_frame(conn.sock)
                if response_id == rid:
                    break
                # stale response from an abandoned request on a recycled
                # connection: drop and keep reading
            if op == OP_ERROR:
                try:
                    results[index] = {"error": decode_json(payload)}
                except ValueError:
                    results[index] = {
                        "error": {
                            "status": 500,
                            "type": "internal",
                            "message": payload.decode("utf-8", "replace"),
                        }
                    }
            else:
                results[index] = decode_result(payload)
        return results

    def impact(self, name: str) -> Dict[str, int]:
        _, payload = self._request(OP_IMPACT, {"array": name})
        return decode_json(payload)["impact"]

    def dependencies(self, name: str) -> Dict[str, int]:
        _, payload = self._request(OP_DEPENDENCIES, {"array": name})
        return decode_json(payload)["dependencies"]

    def lineage_summary(self) -> dict:
        _, payload = self._request(OP_SUMMARY)
        return decode_json(payload)

    def healthz(self) -> dict:
        _, payload = self._request(OP_HEALTHZ)
        return decode_json(payload)

    def scrub(self, repair: bool = False) -> dict:
        _, payload = self._request(OP_SCRUB, {"repair": repair})
        return decode_json(payload)["scrub"]

    def metrics_text(self) -> str:
        _, payload = self._request(OP_METRICS)
        return payload.decode("utf-8")

    def traces(self, limit: Optional[int] = None) -> list:
        body = {"limit": limit} if limit is not None else None
        _, payload = self._request(OP_TRACES, body)
        return decode_json(payload)["traces"]


# ----------------------------------------------------------------------
# both transports over one core
# ----------------------------------------------------------------------
class DualServer:
    """One catalog served over HTTP *and* RPC simultaneously — what
    ``DSLog.serve(transport="both")`` returns.

    Both servers wrap one shared :class:`~repro.service.api.ServiceCore`,
    so they answer identically and share the executor, the result cache
    (a query cached via HTTP is a cache hit via RPC and vice versa) and
    the optional coalescer.  The core is owned here and released once,
    after both transports stop.
    """

    def __init__(
        self,
        log,
        host: str = "127.0.0.1",
        http_port: int = 0,
        rpc_port: int = 0,
        executor: Optional[QueryExecutor] = None,
        max_workers: Optional[int] = None,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        coalesce_ms: Optional[float] = None,
        fault_plan=None,
    ) -> None:
        self.core = ServiceCore(
            log,
            executor=executor,
            max_workers=max_workers,
            cache_entries=cache_entries,
            coalesce_ms=coalesce_ms,
        )
        self.http = LineageServer(log, host=host, port=http_port, core=self.core)
        self.rpc = RPCServer(
            log, host=host, port=rpc_port, core=self.core, fault_plan=fault_plan
        )
        self._closed = False

    @property
    def log(self):
        return self.core.log

    @property
    def executor(self) -> QueryExecutor:
        return self.core.executor

    @property
    def coalescer(self):
        return self.core.coalescer

    @property
    def url(self) -> str:
        """The HTTP URL (the RPC address is :attr:`rpc_address`)."""
        return self.http.url

    @property
    def rpc_address(self) -> str:
        return self.rpc.address

    def start(self) -> "DualServer":
        self.http.start()
        self.rpc.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.http.close()
        self.rpc.close()
        self.core.close()

    def __enter__(self) -> "DualServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
