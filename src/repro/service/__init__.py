"""The concurrent lineage service: sharded multi-writer storage, async
ingest and snapshot-isolated readers.

* :mod:`repro.service.shards` — the sharded store: entries partitioned
  over N single-writer segment stores by a stable hash of the
  ``(input, output)`` pair, one manifest per shard, one root
  ``SHARDS.json``.
* :mod:`repro.service.pipeline` — :class:`LineageService`: bounded ingest
  queue, worker threads running ProvRC compression off the caller's path,
  and a group-commit committer that amortizes manifest publishes across
  concurrent writers.
* :mod:`repro.service.snapshot` — :class:`SnapshotDSLog`: read-only
  catalog views pinned at a per-shard generation vector, isolated from
  concurrent ingest and compaction.
* :mod:`repro.service.query` — :class:`QueryExecutor`: the scale-out read
  path — parallel per-shard fan-out over a thread pool behind a
  generation-keyed :class:`ResultCache` (writers invalidate exactly the
  shards they touched).
* :mod:`repro.service.server` — :class:`LineageServer` /
  :class:`LineageClient`: the catalog over a stdlib HTTP JSON API
  (``/query``, ``/graph/impact``, ``/graph/dependencies``,
  ``/graph/summary``, ``/healthz``).
"""

from .api import ServiceCore
from .pipeline import IngestTicket, LineageService, ServiceClosedError
from .query import QueryExecutor, QueryOutcome, ResultCache
from .rpc import DualServer, RPCClient, RPCServer
from .server import (
    LineageClient,
    LineageConnectionError,
    LineageServer,
    LineageServerError,
)
from .shards import (
    DEFAULT_NUM_SHARDS,
    ShardedCatalog,
    ShardedLineageStore,
    shard_index,
)
from .snapshot import SnapshotDSLog, SnapshotReadOnlyError, take_snapshot

__all__ = [
    "LineageService",
    "IngestTicket",
    "ServiceClosedError",
    "ShardedLineageStore",
    "ShardedCatalog",
    "shard_index",
    "DEFAULT_NUM_SHARDS",
    "SnapshotDSLog",
    "SnapshotReadOnlyError",
    "take_snapshot",
    "QueryExecutor",
    "QueryOutcome",
    "ResultCache",
    "LineageServer",
    "LineageClient",
    "LineageServerError",
    "LineageConnectionError",
    "ServiceCore",
    "RPCServer",
    "RPCClient",
    "DualServer",
]
