"""The concurrent lineage service (``LineageService``): async ingest with
bounded queues, worker threads and group commit.

The single-threaded ``DSLog.register_operation`` runs ProvRC compression,
segment appends and (with ``autosync``) a full manifest publish on the
caller's thread — in-situ capture stalls the host pipeline for the whole
round trip.  The service decouples the three:

    submit() ──► bounded queue ──► worker pool ──► sharded store ──► committer
    (caller,       (backpressure)   (compression     (per-shard        (group
     returns                         + appends,       appends)          commit:
     a ticket)                       off-path)                          one publish
                                                                        per batch)

* :meth:`LineageService.submit` enqueues a raw operation — relations or
  capture callables, exactly the ``register_operation`` surface — and
  returns an :class:`IngestTicket` immediately.  When the queue is full the
  call blocks: backpressure, so an ingest storm cannot grow memory without
  bound.  The wait is *bounded*: after ``submit_timeout`` seconds the call
  raises a structured :class:`repro.faults.IngestOverloaded` (carrying the
  queue depth) instead of blocking indefinitely, so a stalled committer
  cannot wedge every producer thread.
* **Workers** pop operations and run the expensive part — signature
  fingerprinting, reuse lookup, ProvRC compression, table serialization —
  with no lock held; only the per-shard segment append and the catalog
  dict insert are serialized (:mod:`repro.service.shards`).
* The **committer** publishes manifests in *group commits*: every pending
  applied operation rides the same per-shard fsync + manifest swap.  A
  ticket resolves only once a publish covers it, so ``ticket.result()``
  means *durable*, and N concurrent writers share one publish instead of
  paying one each — the commit window (``commit_interval``) trades a few
  milliseconds of single-op latency for multi-writer throughput, exactly
  like a database's group commit delay.  At the storage layer the batch is
  *physically* coalesced too: worker appends only extend each dirty
  shard's pending write buffer, and the commit hands that buffer to the
  OS as one preassembled write + one fsync per shard
  (:class:`repro.storage.segments.SegmentWriter`), so syscall cost scales
  with dirty shards, not with batch size.  ``stats()["write_coalescing"]``
  reports the records-per-write actually achieved.
* :meth:`LineageService.flush` drains the queue and forces a commit;
  :meth:`LineageService.snapshot` hands out a snapshot-isolated read view
  (:mod:`repro.service.snapshot`) that concurrent ingest never perturbs;
  :meth:`LineageService.compact` reclaims one shard (or all) while the
  others keep ingesting.
"""

from __future__ import annotations

import errno
import queue
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..dslog import DSLog
from ..faults import DeadlineExceeded, IngestOverloaded
from ..obs import REGISTRY, tracing
from ..obs.metrics import DEFAULT_SIZE_BUCKETS
from ..storage.store import DEFAULT_CACHE_BYTES, DEFAULT_SEGMENT_MAX_BYTES
from .shards import DEFAULT_NUM_SHARDS

__all__ = ["IngestTicket", "LineageService", "ServiceClosedError"]

_SUBMITTED = REGISTRY.counter(
    "dslog_ingest_submitted_total", "Operations accepted by submit()"
)
_FAILED = REGISTRY.counter(
    "dslog_ingest_failed_total", "Tickets resolved with an error"
)
_OVERLOADED = REGISTRY.counter(
    "dslog_ingest_overloaded_total", "submit() calls shed by backpressure timeout"
)
_COMMITS = REGISTRY.counter(
    "dslog_ingest_commits_total", "Group-commit manifest publishes"
)
_QUEUE_DEPTH = REGISTRY.gauge(
    "dslog_ingest_queue_depth", "Operations waiting in the ingest queue"
)
_SUBMIT_WAIT = REGISTRY.histogram(
    "dslog_ingest_submit_wait_seconds",
    "Time submit() blocked on a full queue (backpressure)",
)
_COMMIT_BATCH = REGISTRY.histogram(
    "dslog_ingest_commit_batch_size",
    "Tickets covered per group commit",
    buckets=DEFAULT_SIZE_BUCKETS,
)
_TICKET_SECONDS = REGISTRY.histogram(
    "dslog_ingest_ticket_seconds", "Submit-to-durable latency per ticket"
)

_SENTINEL = object()
_DEFAULT_TIMEOUT = object()  # submit(timeout=...) not given: use the service default


class ServiceClosedError(RuntimeError):
    """submit() was called on a closed (or closing) service."""


class IngestTicket:
    """Handle for one submitted operation.

    Resolves when the operation is *durable* — applied to the catalog and
    covered by a published manifest generation — or failed.  Timestamps are
    kept at each stage so callers (and the ingest benchmark) can separate
    queueing, apply and commit latency.
    """

    __slots__ = (
        "spec",
        "submitted_at",
        "applied_at",
        "durable_at",
        "_record",
        "_error",
        "_event",
        "_applied_epoch",
        "_trace",
    )

    def __init__(self, spec: Dict[str, Any]) -> None:
        self.spec = spec
        self.submitted_at = time.monotonic()
        self.applied_at: Optional[float] = None
        self.durable_at: Optional[float] = None
        self._record: Any = None
        self._error: Optional[BaseException] = None
        self._event = threading.Event()
        self._applied_epoch = 0  # store torn-write epoch when the op applied
        # per-ticket trace (queued → apply → commit spans recorded by the
        # worker and committer threads); None when tracing is disabled
        self._trace: Optional[tracing.Trace] = None

    # -- service-side transitions --------------------------------------
    def _mark_applied(self, record: Any) -> None:
        self._record = record
        self.applied_at = time.monotonic()
        # the spec holds relations/captures/input_data — potentially large
        # arrays; once applied, nothing reads it again, so don't let a
        # long-held ticket pin those objects in memory
        self.spec = None

    def _mark_durable(self, when: float) -> None:
        self.durable_at = when
        if self._trace is not None:
            self._trace.set_tag("outcome", "durable")
            self._trace.finish()
        self._event.set()

    def _mark_failed(self, error: BaseException) -> None:
        self._error = error
        self.spec = None
        if self._trace is not None:
            self._trace.set_tag("outcome", "failed")
            self._trace.set_tag("error", type(error).__name__)
            site = getattr(error, "site", None)
            if site is not None:
                self._trace.set_tag("fault_site", site)
            self._trace.finish()
        self._event.set()

    # -- caller API ----------------------------------------------------
    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def failed(self) -> bool:
        return self._error is not None

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the ticket resolves; returns whether it did."""
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Any:
        """The ingested :class:`OperationRecord` (or the lineage entry for
        ``submit_lineage``), once durable.  Re-raises the worker's
        exception for a failed operation.  An expired *timeout* raises
        :class:`repro.faults.DeadlineExceeded` (a ``TimeoutError``
        subclass, so existing ``except TimeoutError`` handlers keep
        working)."""
        if not self._event.wait(timeout):
            raise DeadlineExceeded(
                f"operation not durable within {timeout}s (ticket still pending)"
            )
        if self._error is not None:
            raise self._error
        return self._record

    @property
    def durable_latency(self) -> Optional[float]:
        """Seconds from submit to durable publish (None until resolved)."""
        if self.durable_at is None:
            return None
        return self.durable_at - self.submitted_at


class LineageService:
    """Concurrent, durable lineage ingest over a sharded DSLog.

    Parameters
    ----------
    root:
        Directory of the sharded catalog (created if absent).  Ignored when
        *log* is given.
    log:
        An existing ``backend="sharded"`` DSLog to serve instead of opening
        one.  The service takes ownership: ``close()`` closes it.
    workers:
        Ingest worker threads.  Compression and serialization run here with
        no lock held, overlapping each other and the committer's fsyncs.
    queue_size:
        Bound of the ingest queue; a full queue blocks ``submit``
        (backpressure).
    submit_timeout:
        Default bound, in seconds, on how long ``submit`` may block on a
        full queue before raising :class:`repro.faults.IngestOverloaded`.
        ``None`` restores the old block-forever behaviour; a per-call
        ``timeout=`` overrides it.
    commit_interval:
        Group-commit window in seconds.  The committer publishes at most
        once per window (a ``flush()`` overrides it), so concurrent writers
        amortize the per-shard fsync + manifest swap across the batch.
        Single-op durable latency is at least one window — the group-commit
        trade.
    num_shards / gzip / cache_bytes / segment_max_bytes / reuse_confirmations:
        Forwarded to :class:`DSLog` when the service opens the catalog.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        *,
        log: Optional[DSLog] = None,
        workers: int = 2,
        queue_size: int = 256,
        submit_timeout: Optional[float] = 30.0,
        commit_interval: float = 0.002,
        num_shards: int = DEFAULT_NUM_SHARDS,
        gzip: bool = True,
        reuse_confirmations: int = 1,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
    ) -> None:
        if log is None:
            if root is None:
                raise ValueError("LineageService needs a root directory or a log")
            log = DSLog(
                root,
                backend="sharded",
                num_shards=num_shards,
                gzip=gzip,
                reuse_confirmations=reuse_confirmations,
                cache_bytes=cache_bytes,
                segment_max_bytes=segment_max_bytes,
                autosync=False,
            )
        if log.backend != "sharded":
            raise ValueError(
                f"LineageService needs a sharded DSLog, got backend={log.backend!r}"
            )
        log.autosync = False  # the committer owns publishing
        self.log = log
        self.faults = getattr(log, "faults", None)
        self.submit_timeout = submit_timeout
        self.commit_interval = float(commit_interval)
        self._queue: "queue.Queue" = queue.Queue(maxsize=int(queue_size))
        self._cv = threading.Condition()
        self._applied: List[IngestTicket] = []
        self._inflight = 0  # submitted, not yet applied or failed
        self._committing = False  # a popped batch is mid-publish
        self._stop = False
        self._closed = False
        self._flush_requested = False
        self._last_commit = time.monotonic() - self.commit_interval
        # counters (read under _cv)
        self.submitted = 0
        self.failed = 0
        self.overloaded = 0
        self.commits = 0
        self.committed_ops = 0
        self.largest_commit = 0

        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"lineage-worker-{i}", daemon=True)
            for i in range(max(1, int(workers)))
        ]
        self._committer = threading.Thread(
            target=self._committer_loop, name="lineage-committer", daemon=True
        )
        for thread in self._workers:
            thread.start()
        self._committer.start()

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def define_array(self, name: str, shape: Sequence[int]):
        """Declare a tracked array (synchronous: metadata only, and every
        subsequently submitted operation may reference it)."""
        self._check_open()
        return self.log.define_array(name, shape)

    def submit(
        self,
        op_name: str,
        in_arrs: Sequence[str],
        out_arrs: Sequence[str],
        relations: Optional[Mapping[Tuple[str, str], Any]] = None,
        captures: Optional[Mapping[Tuple[str, str], Any]] = None,
        input_data: Optional[Mapping[str, Any]] = None,
        op_args: Optional[Mapping[str, Any]] = None,
        reuse: bool = True,
        replace: bool = False,
        timeout: Any = _DEFAULT_TIMEOUT,
    ) -> IngestTicket:
        """Enqueue one operation for async ingest; returns immediately.

        Mirrors :meth:`DSLog.register_operation`.  Blocks only when the
        ingest queue is full (backpressure).  The wait is bounded by
        *timeout* (default: the service's ``submit_timeout``); on expiry a
        structured :class:`repro.faults.IngestOverloaded` carrying the
        queue depth is raised.  ``timeout=None`` blocks indefinitely.
        """
        spec = dict(
            kind="operation",
            op_name=op_name,
            in_arrs=tuple(in_arrs),
            out_arrs=tuple(out_arrs),
            relations=relations,
            captures=captures,
            input_data=input_data,
            op_args=op_args,
            reuse=reuse,
            replace=replace,
        )
        return self._enqueue(spec, timeout)

    def submit_lineage(
        self,
        in_arr: str,
        out_arr: str,
        relation=None,
        capture=None,
        op_name: Optional[str] = None,
        replace: bool = False,
        timeout: Any = _DEFAULT_TIMEOUT,
    ) -> IngestTicket:
        """Enqueue a single lineage pair (mirrors :meth:`DSLog.add_lineage`)."""
        spec = dict(
            kind="lineage",
            in_arr=in_arr,
            out_arr=out_arr,
            relation=relation,
            capture=capture,
            op_name=op_name,
            replace=replace,
        )
        return self._enqueue(spec, timeout)

    def _enqueue(self, spec: Dict[str, Any], timeout: Any) -> IngestTicket:
        self._check_open()
        if timeout is _DEFAULT_TIMEOUT:
            timeout = self.submit_timeout
        ticket = IngestTicket(spec)
        if tracing.tracing_enabled():
            ticket._trace = tracing.Trace("ingest", kind=spec["kind"])
        with self._cv:
            self._inflight += 1
            self.submitted += 1
        waited = time.monotonic()
        try:
            self._queue.put(ticket, timeout=timeout)
        except BaseException as error:
            with self._cv:
                self._inflight -= 1
                self.submitted -= 1
                self.overloaded += isinstance(error, queue.Full)
            if isinstance(error, queue.Full):
                _OVERLOADED.inc()
                _SUBMIT_WAIT.observe(time.monotonic() - waited)
                raise IngestOverloaded(
                    f"ingest queue full ({self._queue.maxsize} deep) for "
                    f"{timeout}s; the service is overloaded or its committer "
                    f"is stalled",
                    queue_depth=self._queue.qsize(),
                ) from None
            raise
        _SUBMITTED.inc()
        _SUBMIT_WAIT.observe(time.monotonic() - waited)
        _QUEUE_DEPTH.set(self._queue.qsize())
        return ticket

    def _check_open(self) -> None:
        if self._closed or self._stop:
            raise ServiceClosedError("the lineage service is closed")

    # ------------------------------------------------------------------
    # worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _SENTINEL:
                    return
                self._apply(item)
            finally:
                self._queue.task_done()

    def _torn_epoch(self) -> int:
        """The backing store's torn-write count (0 for backends that cannot
        tear, e.g. memory)."""
        epoch_fn = getattr(getattr(self.log, "store", None), "torn_epoch", None)
        return 0 if epoch_fn is None else epoch_fn()

    def _apply_spec(self, spec: Dict[str, Any]) -> Any:
        if self.faults is not None:
            self.faults.check("service.worker", "pipeline")
        if spec["kind"] == "operation":
            return self.log.register_operation(
                spec["op_name"],
                spec["in_arrs"],
                spec["out_arrs"],
                relations=spec["relations"],
                captures=spec["captures"],
                input_data=spec["input_data"],
                op_args=spec["op_args"],
                reuse=spec["reuse"],
                replace=spec["replace"],
            )
        return self.log.add_lineage(
            spec["in_arr"],
            spec["out_arr"],
            relation=spec["relation"],
            capture=spec["capture"],
            op_name=spec["op_name"],
            replace=spec["replace"],
        )

    def _apply(self, ticket: IngestTicket) -> None:
        spec = ticket.spec
        # snapshot the torn-write epoch before touching the catalog: if a
        # torn flush destroys pending bytes while this op is mid-apply, its
        # record may be among them — the commit-time epoch check will
        # refuse to acknowledge it
        epoch = self._torn_epoch()
        trace = ticket._trace
        if trace is not None:
            trace.add_span("queued", time.monotonic() - ticket.submitted_at)
        try:
            if trace is not None:
                # re-enter the ticket's trace on this worker thread so the
                # apply span (and anything opened beneath it) nests there
                with trace.activate(), trace.span("apply", kind=spec["kind"]):
                    record = self._apply_spec(spec)
            else:
                record = self._apply_spec(spec)
        except BaseException as error:
            _FAILED.inc()
            with self._cv:
                self._inflight -= 1
                self.failed += 1
                ticket._mark_failed(error)
                self._cv.notify_all()
        else:
            ticket._mark_applied(record)
            ticket._applied_epoch = epoch
            with self._cv:
                self._inflight -= 1
                self._applied.append(ticket)
                self._cv.notify_all()

    # ------------------------------------------------------------------
    # group commit
    # ------------------------------------------------------------------
    def _committer_loop(self) -> None:
        while True:
            with self._cv:
                now = time.monotonic()
                due = bool(self._applied) and (
                    self._flush_requested
                    or self._stop
                    or now - self._last_commit >= self.commit_interval
                )
                if not due:
                    if self._stop and not self._applied and self._inflight == 0:
                        return
                    if self._applied:
                        wait = max(0.0005, self.commit_interval - (now - self._last_commit))
                    else:
                        wait = 0.1  # idle: re-check stop periodically
                    self._cv.wait(wait)
                    continue
                batch = self._applied
                self._applied = []
                self._committing = True
            self._last_commit = time.monotonic()
            try:
                self._commit(batch)
            finally:
                with self._cv:
                    self._committing = False
                    self._cv.notify_all()

    def _commit(self, batch: List[IngestTicket]) -> None:
        commit_started = time.monotonic()
        try:
            if self.faults is not None:
                # "stall" rules model a slow committer (fsync on a sick
                # disk); "error" rules fail the whole batch — all-or-nothing
                self.faults.check("service.commit", "pipeline")
            self.log.sync()
        except BaseException as error:
            commit_seconds = time.monotonic() - commit_started
            _FAILED.inc(len(batch))
            with self._cv:
                for ticket in batch:
                    self.failed += 1
                    if ticket._trace is not None:
                        ticket._trace.add_span(
                            "commit", commit_seconds, batch=len(batch)
                        )
                    ticket._mark_failed(error)
                self._cv.notify_all()
        else:
            # the sync published a manifest, but durability is per ticket:
            # a torn write since a ticket applied may have destroyed its
            # record bytes (the op raced the failing flush), so only
            # tickets applied at the current epoch are acknowledged — the
            # rest fail, their dangling rows are scrub's to reconcile
            epoch = self._torn_epoch()
            now = time.monotonic()
            commit_seconds = now - commit_started
            _COMMITS.inc()
            _COMMIT_BATCH.observe(len(batch))
            failed_tickets = 0
            with self._cv:
                self.commits += 1
                for ticket in batch:
                    if ticket._trace is not None:
                        ticket._trace.add_span(
                            "commit", commit_seconds, batch=len(batch)
                        )
                    if ticket._applied_epoch != epoch:
                        self.failed += 1
                        failed_tickets += 1
                        ticket._mark_failed(
                            OSError(
                                errno.EIO,
                                "a torn segment write overlapped this "
                                "operation; its record bytes may be lost",
                            )
                        )
                        continue
                    self.committed_ops += 1
                    _TICKET_SECONDS.observe(now - ticket.submitted_at)
                    ticket._mark_durable(now)
                self.largest_commit = max(self.largest_commit, len(batch))
                self._cv.notify_all()
            if failed_tickets:
                _FAILED.inc(failed_tickets)

    # ------------------------------------------------------------------
    # flush / close / maintenance
    # ------------------------------------------------------------------
    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every operation submitted so far is durable (or
        failed).  Overrides the commit window: the committer publishes as
        soon as the queue drains."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while self._inflight > 0 or self._applied or self._committing:
                self._flush_requested = True
                self._cv.notify_all()
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("flush() timed out")
                self._cv.wait(0.05 if remaining is None else min(0.05, remaining))
            self._flush_requested = False

    def snapshot(self):
        """A snapshot-isolated, read-only DSLog view of the catalog *as
        applied* right now (durability may lag by one commit window)."""
        return self.log.snapshot()

    def serve(self, port: int = 0, host: str = "127.0.0.1", **kwargs):
        """Expose this service's catalog over the HTTP JSON API
        (:mod:`repro.service.server`) on a background thread.  Readers see
        *applied* state — the same cut snapshots see — and the result
        cache invalidates per shard as the workers land writes."""
        return self.log.serve(port=port, host=host, **kwargs)

    def executor(self, **kwargs):
        """A :class:`~repro.service.query.QueryExecutor` over this
        service's catalog (for in-process scale-out reads)."""
        return self.log.executor(**kwargs)

    def compact(self, shard: Optional[int] = None) -> dict:
        """Publish pending state, then compact one shard (or all) while
        ingest into other shards proceeds."""
        return self.log.compact(shard=shard)

    def stats(self) -> dict:
        with self._cv:
            return {
                "submitted": self.submitted,
                "failed": self.failed,
                "overloaded": self.overloaded,
                "inflight": self._inflight,
                "applied_pending_commit": len(self._applied),
                "commits": self.commits,
                "committed_ops": self.committed_ops,
                "largest_commit": self.largest_commit,
                "avg_commit_batch": (
                    self.committed_ops / self.commits if self.commits else 0.0
                ),
                "queue_depth": self._queue.qsize(),
                "generation_vector": list(self.log.store.generation_vector()),
                # storage-level coalescing: each group commit hands a dirty
                # shard's whole batch to the OS as ONE write + ONE fsync, so
                # records-per-write ≈ the commit batching actually achieved
                "write_coalescing": self.log.store.write_stats(),
            }

    def close(self) -> None:
        """Flush, stop the worker pool and the committer, close the log."""
        if self._closed:
            return
        self.flush()
        with self._cv:
            self._stop = True
            self._cv.notify_all()
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for thread in self._workers:
            thread.join()
        # a submit() racing this close can land its ticket behind the
        # sentinels, where no worker will ever pop it; fail those tickets
        # (releasing their waiters) so the committer's exit condition —
        # zero inflight — can be met
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                with self._cv:
                    if self._inflight == 0:
                        break
                # a racing submit has incremented _inflight but not yet
                # finished its queue.put — give it a beat and re-drain
                time.sleep(0.001)
                continue
            if item is _SENTINEL:
                continue
            with self._cv:
                self._inflight -= 1
                self.failed += 1
                item._mark_failed(ServiceClosedError("the lineage service is closed"))
                self._cv.notify_all()
        with self._cv:
            self._cv.notify_all()
        self._committer.join()
        self._closed = True
        self.log.close()

    def __enter__(self) -> "LineageService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
