"""The binary wire protocol of the RPC tier (framing + result payloads).

The HTTP transport pays for its interoperability twice per round trip:
every request re-parses headers, and every result box is JSON-encoded
integer by integer on the server and re-parsed integer by integer in the
client.  This module defines the wire format that removes both costs —
pure encoding/decoding, no sockets (the server and client live in
:mod:`repro.service.rpc`).

Frame anatomy
-------------
Every message in either direction is one *frame*::

    offset  size  field
    0       4     magic  b"DRPC"
    4       2     u16    protocol version (currently 1)
    6       4     u32    payload length in bytes
    10      2     u16    opcode (requests: the operation; responses: the
                         request's opcode, or OP_ERROR for failures)
    12      4     u32    request id (echoed verbatim in the response so a
                         client may pipeline many requests per connection)
    16      -     payload

All integers little-endian; the header is built and checked by the shared
:func:`~repro.core.serialize.frame_header` / :func:`~repro.core.serialize.
parse_header` helpers (the same pair behind the ProvRC, segment and
baseline-store formats).  Request payloads are UTF-8 JSON — exactly the
HTTP body shapes, so both transports share one request parser.  Response
payloads are JSON for the small endpoints and *binary result payloads*
(below) for queries, where the savings live.

Binary result payloads
----------------------
A query result is one inner :func:`~repro.core.serialize.json_frame`
(magic ``b"DRES"``): a compact JSON header carrying the scalar fields
(array, shape, count, per-hop stats, cached/degraded flags) plus the
dtype/length manifest of the binary section, followed by the raw
little-endian ndarray buffers — box lows, box highs, optionally the
exact cell coordinates — downcast to the smallest integer dtype that
holds their values (:func:`~repro.core.serialize.smallest_int_dtype`,
the ProvRC trick applied to the wire).  The client hydrates each buffer
with one ``np.frombuffer`` view over the received bytes: zero copies,
no per-integer work, and ``boxes_lo`` / ``boxes_hi`` arrive as ready
``(n, ndim)`` ndarrays instead of nested lists.

:class:`RPCResult` wraps a decoded payload.  It is mapping-compatible
with the HTTP result dict (``result["count"]``, ``result["boxes"]`` …)
so callers can switch transports without rewriting, and exposes the
ndarray views directly for callers that want them.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..core.serialize import (
    frame_header,
    json_frame,
    parse_header,
    parse_json_frame,
    smallest_int_dtype,
)

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "FRAME_HEADER_SIZE",
    "MAX_FRAME_BYTES",
    "OPCODES",
    "OP_QUERY",
    "OP_QUERY_BATCH",
    "OP_IMPACT",
    "OP_DEPENDENCIES",
    "OP_SUMMARY",
    "OP_HEALTHZ",
    "OP_METRICS",
    "OP_TRACES",
    "OP_SCRUB",
    "OP_PING",
    "OP_ERROR",
    "ShortRead",
    "encode_frame",
    "parse_frame_header",
    "recv_exact",
    "read_frame",
    "encode_json",
    "decode_json",
    "encode_result",
    "decode_result",
    "encode_batch",
    "decode_batch",
    "RPCResult",
]

WIRE_MAGIC = b"DRPC"
WIRE_VERSION = 1
_HEADER_LAYOUT = "HIHI"  # version, payload length, opcode, request id
FRAME_HEADER_SIZE = len(WIRE_MAGIC) + struct.calcsize("<" + _HEADER_LAYOUT)

# a malformed or hostile length field must not allocate the machine away;
# far above any real catalog response, far below an allocation bomb
MAX_FRAME_BYTES = 1 << 30

OP_QUERY = 1
OP_QUERY_BATCH = 2
OP_IMPACT = 3
OP_DEPENDENCIES = 4
OP_SUMMARY = 5
OP_HEALTHZ = 6
OP_METRICS = 7
OP_TRACES = 8
OP_SCRUB = 9
OP_PING = 10
OP_ERROR = 255  # response-only: payload is the structured error JSON

OPCODES: Dict[int, str] = {
    OP_QUERY: "query",
    OP_QUERY_BATCH: "query_batch",
    OP_IMPACT: "impact",
    OP_DEPENDENCIES: "dependencies",
    OP_SUMMARY: "summary",
    OP_HEALTHZ: "healthz",
    OP_METRICS: "metrics",
    OP_TRACES: "traces",
    OP_SCRUB: "scrub",
    OP_PING: "ping",
    OP_ERROR: "error",
}

_RESULT_MAGIC = b"DRES"


class ShortRead(ConnectionError):
    """The peer closed (or a fault truncated) the stream mid-frame."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(opcode: int, request_id: int, payload: bytes = b"") -> bytes:
    """One complete wire frame: header + payload."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return (
        frame_header(
            WIRE_MAGIC, _HEADER_LAYOUT, WIRE_VERSION, len(payload), opcode, request_id
        )
        + payload
    )


def parse_frame_header(data: bytes) -> Tuple[int, int, int]:
    """Validate one frame header; returns ``(opcode, request_id, length)``.

    Raises ``ValueError`` on bad magic, a truncated header, an unsupported
    protocol version, or an implausible length — the connection is beyond
    saving in every case.
    """
    (version, length, opcode, request_id), _ = parse_header(
        data, WIRE_MAGIC, _HEADER_LAYOUT, "RPC frame"
    )
    if version != WIRE_VERSION:
        raise ValueError(
            f"unsupported RPC protocol version {version} (this build speaks "
            f"{WIRE_VERSION})"
        )
    if length > MAX_FRAME_BYTES:
        raise ValueError(
            f"RPC frame claims {length} bytes, above the {MAX_FRAME_BYTES}-byte limit"
        )
    return opcode, request_id, length


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly *n* bytes from a stream socket.

    Raises :class:`ShortRead` if the peer closes first — a clean EOF at a
    frame boundary is the caller's case (*n* bytes expected means we are
    mid-message, so any EOF here is abnormal).
    """
    if n == 0:
        return b""
    chunks: List[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ShortRead(
                f"connection closed mid-frame: wanted {n} bytes, got {n - remaining}"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)


def read_frame(sock: socket.socket) -> Tuple[int, int, bytes]:
    """Read one complete frame; returns ``(opcode, request_id, payload)``.

    Raises :class:`ShortRead` on EOF inside the frame and ``ValueError``
    on a corrupt header.  An EOF *before any byte* of the header is also a
    :class:`ShortRead` — the caller decides whether that was a graceful
    close (no request in flight) or a failure.
    """
    header = recv_exact(sock, FRAME_HEADER_SIZE)
    opcode, request_id, length = parse_frame_header(header)
    return opcode, request_id, recv_exact(sock, length)


def encode_json(obj: Any) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def decode_json(payload: bytes) -> Any:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"corrupt JSON frame payload: {error}") from None


# ----------------------------------------------------------------------
# binary result payloads
# ----------------------------------------------------------------------
def _buffer_spec(array: np.ndarray) -> Tuple[dict, bytes]:
    """Downcast an ``(n, ndim)`` int64 array to its narrowest dtype and
    return the manifest entry + raw little-endian bytes."""
    n = int(array.shape[0])
    dtype = smallest_int_dtype(array)
    packed = np.ascontiguousarray(array.astype(dtype.newbyteorder("<"), copy=False))
    spec = {"dtype": packed.dtype.str, "n": n, "ndim": int(array.shape[1])}
    return spec, packed.tobytes()


def _hydrate(view: memoryview, spec: dict, offset: int) -> Tuple[np.ndarray, int]:
    """One ``np.frombuffer`` view over the wire bytes — zero-copy."""
    dtype = np.dtype(spec["dtype"])
    n, ndim = int(spec["n"]), int(spec["ndim"])
    size = n * ndim * dtype.itemsize
    if offset + size > len(view):
        raise ValueError(
            f"truncated result payload: buffer needs {size} bytes at offset "
            f"{offset}, frame has {len(view)}"
        )
    array = np.frombuffer(view, dtype=dtype, count=n * ndim, offset=offset)
    return array.reshape(n, ndim), offset + size


def encode_result(
    result,
    include_boxes: bool = True,
    include_cells: bool = False,
    cached: bool = False,
    degraded: bool = False,
    elapsed_ms: float = 0.0,
) -> bytes:
    """Binary form of a :class:`~repro.core.query.QueryResult` — the same
    fields as :func:`~repro.service.api.result_payload`, with the box (and
    optional cell) coordinates as raw ndarray buffers instead of JSON."""
    cells = result.cells
    header: Dict[str, Any] = {
        "array": cells.array_name,
        "shape": list(cells.shape),
        "boxes_merged": int(len(cells)),
        "count": int(result.count_cells()),
        "hops": [
            {
                "from": hop.array_from,
                "to": hop.array_to,
                "rows_scanned": hop.rows_scanned,
                "boxes_in": hop.boxes_in,
                "boxes_out_raw": hop.boxes_out_raw,
                "boxes_out_merged": hop.boxes_out_merged,
                "seconds": hop.seconds,
            }
            for hop in result.hops
        ],
        "cached": bool(cached),
        "degraded": bool(degraded),
        "elapsed_ms": float(elapsed_ms),
    }
    buffers: List[bytes] = []
    if include_boxes:
        lo_spec, lo_bytes = _buffer_spec(cells.lo)
        hi_spec, hi_bytes = _buffer_spec(cells.hi)
        header["boxes_lo"] = lo_spec
        header["boxes_hi"] = hi_spec
        buffers += [lo_bytes, hi_bytes]
    if include_cells:
        cell_spec, cell_bytes = _buffer_spec(result.to_cells_array())
        header["cells"] = cell_spec
        buffers.append(cell_bytes)
    return json_frame(_RESULT_MAGIC, header, b"".join(buffers))


def decode_result(payload: bytes) -> "RPCResult":
    """Hydrate one binary result payload into an :class:`RPCResult`.

    The box/cell arrays are ``np.frombuffer`` views over *payload* — no
    copies are made, so the bytes object backs the result's lifetime.
    """
    header, offset = parse_json_frame(payload, _RESULT_MAGIC, "RPC result")
    view = memoryview(payload)
    boxes_lo = boxes_hi = cells = None
    if "boxes_lo" in header:
        boxes_lo, offset = _hydrate(view, header["boxes_lo"], offset)
        boxes_hi, offset = _hydrate(view, header["boxes_hi"], offset)
    if "cells" in header:
        cells, offset = _hydrate(view, header["cells"], offset)
    return RPCResult(header, boxes_lo, boxes_hi, cells)


class RPCResult:
    """A decoded binary query result.

    Exposes the coordinate data as ndarrays (:attr:`boxes_lo` /
    :attr:`boxes_hi` / :attr:`cells_array`, each ``(n, ndim)`` and possibly
    a narrow dtype) and is **mapping-compatible with the HTTP result
    payload**: ``result["count"]``, ``result["boxes"]``, ``result["hops"]``
    … all answer exactly as the JSON dict does, the list-shaped views being
    materialized lazily on first access.  :meth:`to_payload` produces the
    full HTTP-shaped dict (the transport-equivalence contract both test
    suites pin down).
    """

    __slots__ = ("_header", "boxes_lo", "boxes_hi", "cells_array", "_boxes", "_cells")

    def __init__(
        self,
        header: dict,
        boxes_lo: Optional[np.ndarray],
        boxes_hi: Optional[np.ndarray],
        cells: Optional[np.ndarray],
    ) -> None:
        self._header = header
        self.boxes_lo = boxes_lo
        self.boxes_hi = boxes_hi
        self.cells_array = cells
        self._boxes: Optional[list] = None
        self._cells: Optional[list] = None

    # -- scalar fields --------------------------------------------------
    @property
    def array(self) -> str:
        return self._header["array"]

    @property
    def shape(self) -> List[int]:
        return self._header["shape"]

    @property
    def count(self) -> int:
        return self._header["count"]

    @property
    def boxes_merged(self) -> int:
        return self._header["boxes_merged"]

    @property
    def hops(self) -> List[dict]:
        return self._header["hops"]

    @property
    def cached(self) -> bool:
        return self._header["cached"]

    @property
    def degraded(self) -> bool:
        return self._header["degraded"]

    @property
    def elapsed_ms(self) -> float:
        return self._header["elapsed_ms"]

    # -- mapping compatibility with the HTTP payload --------------------
    def _materialize_boxes(self) -> Optional[list]:
        if self._boxes is None and self.boxes_lo is not None:
            self._boxes = [
                [self.boxes_lo[i].tolist(), self.boxes_hi[i].tolist()]
                for i in range(self.boxes_lo.shape[0])
            ]
        return self._boxes

    def _materialize_cells(self) -> Optional[list]:
        if self._cells is None and self.cells_array is not None:
            self._cells = self.cells_array.tolist()
        return self._cells

    def __getitem__(self, key: str):
        if key == "boxes":
            boxes = self._materialize_boxes()
            if boxes is None:
                raise KeyError("boxes")
            return boxes
        if key == "cells":
            cells = self._materialize_cells()
            if cells is None:
                raise KeyError("cells")
            return cells
        return self._header[key]

    def get(self, key: str, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: str) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def keys(self) -> Iterator[str]:
        keys = [k for k in self._header if k not in ("boxes_lo", "boxes_hi", "cells")]
        if self.boxes_lo is not None:
            keys.append("boxes")
        if self.cells_array is not None:
            keys.append("cells")
        return iter(keys)

    def to_payload(self) -> dict:
        """The HTTP-shaped result dict (what ``POST /query`` would have
        returned for the same request) — byte-identical modulo timing."""
        payload = {
            k: v for k, v in self._header.items() if k not in ("boxes_lo", "boxes_hi", "cells")
        }
        boxes = self._materialize_boxes()
        if boxes is not None:
            payload["boxes"] = boxes
        cells = self._materialize_cells()
        if cells is not None:
            payload["cells"] = cells
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RPCResult(array={self.array!r}, count={self.count}, "
            f"boxes_merged={self.boxes_merged}, cached={self.cached})"
        )


_MISSING = object()


# ----------------------------------------------------------------------
# batched results
# ----------------------------------------------------------------------
def encode_batch(
    entries: List[Union[bytes, dict]], elapsed_ms: float = 0.0
) -> bytes:
    """One ``OP_QUERY_BATCH`` response payload.

    Each entry is either an encoded binary result (``bytes``, from
    :func:`encode_result`) or a per-item structured error dict
    ``{"error": {"type", "message", "status"}}``; the manifest records
    which, item payloads are concatenated after the header in order.
    """
    manifest: List[dict] = []
    blobs: List[bytes] = []
    for entry in entries:
        if isinstance(entry, (bytes, bytearray)):
            manifest.append({"length": len(entry)})
            blobs.append(bytes(entry))
        else:
            manifest.append(entry)
    header = {
        "items": manifest,
        "batch_size": len(entries),
        "elapsed_ms": float(elapsed_ms),
    }
    return json_frame(_RESULT_MAGIC, header, b"".join(blobs))


def decode_batch(payload: bytes) -> Tuple[List[Union["RPCResult", dict]], dict]:
    """Decode an ``OP_QUERY_BATCH`` response; returns ``(results, meta)``
    where each result is an :class:`RPCResult` or the per-item error dict,
    and *meta* carries ``batch_size`` / ``elapsed_ms``."""
    header, offset = parse_json_frame(payload, _RESULT_MAGIC, "RPC batch result")
    results: List[Union[RPCResult, dict]] = []
    for item in header["items"]:
        if "length" in item:
            blob = payload[offset : offset + item["length"]]
            offset += item["length"]
            results.append(decode_result(blob))
        else:
            results.append(item)
    meta = {"batch_size": header["batch_size"], "elapsed_ms": header["elapsed_ms"]}
    return results, meta
