"""The scale-out query executor (``QueryExecutor``) and its result cache.

PR 3 made the *write* path concurrent; this module is the read-side
counterpart: one executor object that plans a ``prov_query`` / ``impact`` /
``dependencies`` request against the catalog, fans the per-shard work out
over a thread pool, and fronts everything with a generation-keyed LRU so a
hot query never re-runs the θ-join chain at all.

Execution pipeline
------------------
1. **Plan** — an explicit multi-hop path resolves hop-by-hop through
   ``entry_between``; a two-array path with no direct entry is planned by
   the lineage graph (shortest stored path(s), diamond paths unioned).
2. **Fan out** — every backing store is snapshot-pinned (compaction retires
   rather than deletes segments while the query reads), then the hop
   tables are prefetched *per shard* on the thread pool: shards are
   independent single-writer stores, so their segment reads, gunzips and
   deserializations overlap instead of queueing behind one another.  With
   several planned paths, the θ-join chains themselves also run in
   parallel, one task per path.
3. **Merge** — per-path :class:`~repro.core.query.QueryResult`\\ s are
   combined with the existing ``QueryResult.union``.

Result cache
------------
:class:`ResultCache` is an LRU keyed on the *query-box digest* — a stable
hash of the path, the query boxes and the merge flag — whose entries are
validated against a *dependency vector*: the ``(shard, version)`` pairs the
result was computed from.  The sharded catalog keeps one applied-mutation
counter per shard (:attr:`ShardedCatalog.shard_version_vector`), so

* a **direct path query** depends only on the home shards of its hop
  entries: writers invalidate exactly the shards they touched, and ingest
  into any other shard leaves the cached result valid;
* a **graph-planned query** (and ``impact`` / ``dependencies`` /
  ``lineage_summary``) depends on the whole edge set, so it is keyed on
  the full vector — any shard's write invalidates it, which is the only
  correct answer when a new entry can create a shorter path.

The memory and segment backends have no shards; their dependency vector is
the catalog's single generation counter, i.e. any write invalidates.

The dependency vector is read *before* entries are resolved (the same
read-version-first protocol as ``DSLog.prov_query``): a writer landing
mid-execution makes the cached entry validate as stale on the next lookup
rather than ever serving a result fresher than its key claims.

Degraded serving
----------------
Invalidated cache entries are kept (marked stale by their dependency
vector) rather than deleted, because they are the *degraded* answer: each
shard is wrapped in a :class:`~repro.faults.CircuitBreaker`, and when a
query's home shard has a tripped breaker, the executor serves the last
known result for that exact query — flagged ``degraded=True`` in the
returned :class:`QueryOutcome` — instead of touching the failing disk.
With no stale result to fall back on it raises the structured
:class:`~repro.faults.ShardUnavailable`, never a hang or a bare
``OSError``.  A half-open breaker lets exactly one query probe recovery:
the shard is reopened-with-scrub
(:meth:`~repro.service.shards.ShardedLineageStore.reopen_shard`), and the
breaker closes only when that heal succeeds.

Deadlines: ``query(..., deadline=seconds)`` (or the constructor-wide
``default_deadline``) bounds the pooled per-shard prefetch and per-path
execution; a shard that stalls past the budget raises
:class:`~repro.faults.DeadlineExceeded` (and counts against its breaker)
instead of wedging the request.  The sequential executor (``max_workers=1``)
runs everything inline and cannot enforce deadlines.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from ..core.query import QueryResult, execute_path, execute_path_batch
from ..faults import CircuitBreaker, DeadlineExceeded, ShardUnavailable
from ..obs import DEFAULT_SIZE_BUCKETS, REGISTRY, tracing
from ..storage.segments import CorruptRecordError

__all__ = [
    "ResultCache",
    "QueryExecutor",
    "QueryOutcome",
    "DEFAULT_CACHE_ENTRIES",
]

DEFAULT_CACHE_ENTRIES = 256

_QUERIES = REGISTRY.counter(
    "dslog_queries_total", "Queries planned and executed (cache misses included)"
)
_RESULT_HITS = REGISTRY.counter(
    "dslog_result_cache_hits_total", "Result-cache lookups served fresh"
)
_RESULT_MISSES = REGISTRY.counter(
    "dslog_result_cache_misses_total", "Result-cache lookups that re-ran the query"
)
_RESULT_INVALIDATIONS = REGISTRY.counter(
    "dslog_result_cache_invalidations_total",
    "Cached results found stale against the shard version vector",
)
_RESULT_STALE_SERVES = REGISTRY.counter(
    "dslog_result_cache_stale_serves_total",
    "Stale cached results served degraded behind a tripped breaker",
)
_DEADLINE_MISSES = REGISTRY.counter(
    "dslog_query_deadline_misses_total", "Queries that ran out of deadline budget"
)
_PREFETCH_SECONDS = REGISTRY.histogram(
    "dslog_prefetch_seconds",
    "Per-shard hop-table hydration latency during query fan-out",
    labelnames=("shard",),
)
_BATCH_SIZE = REGISTRY.histogram(
    "dslog_query_batch_size",
    "Queries per executor batch (query_batch calls, coalesced or explicit)",
    buckets=DEFAULT_SIZE_BUCKETS,
)


class QueryOutcome(NamedTuple):
    """What :meth:`QueryExecutor.query` returns.

    ``result`` is the :class:`~repro.core.query.QueryResult`; ``cached``
    says whether it came from the result cache; ``degraded`` marks a
    stale cache entry served because the query's home shard is behind a
    tripped circuit breaker (the freshness contract is then "last known
    answer", not "current generation").
    """

    result: Any
    cached: bool
    degraded: bool

# (shard index, applied-version) pairs a cached result was computed from
DepVector = Tuple[Tuple[int, int], ...]


class ResultCache:
    """LRU of query results keyed on digest, validated by shard versions.

    Thread-safe: the HTTP server's handler threads and the executor's own
    pool all go through here.  An entry *hits* only when every shard it
    depends on still has the version it was computed at; a stale entry is
    counted as an invalidation but **kept** — it is the degraded answer
    :meth:`lookup_stale` serves while the shard that could refresh it is
    behind a tripped breaker.  (A recompute overwrites it in place; LRU
    eviction reclaims it like any other entry.)
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        self.max_entries = int(max_entries)
        self._items: "OrderedDict[bytes, Tuple[DepVector, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.stale_hits = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def __len__(self) -> int:
        return len(self._items)

    def lookup(self, key: bytes, live_versions: Dict[int, int]) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; *live_versions* maps shard → current
        applied version (shards absent from the map never invalidate)."""
        if not self.enabled:
            return False, None
        with self._lock:
            item = self._items.get(key)
            if item is None:
                self.misses += 1
                _RESULT_MISSES.inc()
                return False, None
            deps, value = item
            for shard, version in deps:
                if live_versions.get(shard, version) != version:
                    # stale: miss, but keep the entry — it is the degraded
                    # fallback should this query's shard become unavailable
                    self.invalidations += 1
                    self.misses += 1
                    _RESULT_INVALIDATIONS.inc()
                    _RESULT_MISSES.inc()
                    return False, None
            self._items.move_to_end(key)
            self.hits += 1
            _RESULT_HITS.inc()
            return True, value

    def lookup_stale(self, key: bytes) -> Tuple[bool, Any]:
        """Return the entry under *key* regardless of dependency freshness
        — the degraded-serving path.  ``(False, None)`` when the query was
        never cached (or already evicted)."""
        if not self.enabled:
            return False, None
        with self._lock:
            item = self._items.get(key)
            if item is None:
                return False, None
            self._items.move_to_end(key)
            self.stale_hits += 1
            _RESULT_STALE_SERVES.inc()
            return True, item[1]

    def store(self, key: bytes, deps: DepVector, value: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._items[key] = (deps, value)
            self._items.move_to_end(key)
            while len(self._items) > self.max_entries:
                self._items.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._items.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._items),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "stale_hits": self.stale_hits,
            }


class QueryExecutor:
    """Plan, fan out and cache read queries over a DSLog catalog.

    Parameters
    ----------
    log:
        Any :class:`~repro.dslog.DSLog` (memory, segment or sharded
        backend; a snapshot view works too).  The executor only reads.
    max_workers:
        Thread-pool width for per-shard prefetch, per-path execution and
        :meth:`map_queries`.  ``1`` disables parallelism (the sequential
        baseline the serving benchmark compares against).  Defaults to
        ``min(8, max(2, os.cpu_count()))``.
    cache_entries:
        Capacity of the :class:`ResultCache`; ``0`` disables caching.
    default_deadline:
        Seconds each query may spend in pooled prefetch/execution before
        :class:`~repro.faults.DeadlineExceeded`; ``None`` (default) means
        unbounded.  Per-call ``deadline`` overrides it.
    breaker_failures / breaker_reset_after:
        Per-shard circuit-breaker tuning: consecutive faults before a
        shard is declared unavailable, and seconds before a half-open
        recovery probe is allowed.
    """

    def __init__(
        self,
        log,
        max_workers: Optional[int] = None,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        default_deadline: Optional[float] = None,
        breaker_failures: int = 3,
        breaker_reset_after: float = 30.0,
    ) -> None:
        if max_workers is None:
            max_workers = min(8, max(2, os.cpu_count() or 1))
        self.log = log
        self.max_workers = max(1, int(max_workers))
        self.cache = ResultCache(cache_entries)
        self.default_deadline = default_deadline
        self.breaker_failures = int(breaker_failures)
        self.breaker_reset_after = float(breaker_reset_after)
        # per-shard breakers, created on a shard's first recorded fault
        # (pseudo-shard 0 covers the unsharded backends)
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._pool = (
            ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="lineage-query"
            )
            if self.max_workers > 1
            else None
        )
        self._closed = False
        self._stats_lock = threading.Lock()
        self.queries = 0
        self.parallel_loads = 0
        self.parallel_paths = 0
        self.degraded_serves = 0
        self.deadline_misses = 0
        self.shard_reopens = 0
        self.batches = 0
        self.batched_queries = 0

    # ------------------------------------------------------------------
    # circuit breakers
    # ------------------------------------------------------------------
    def _breaker(self, shard: int) -> CircuitBreaker:
        with self._breaker_lock:
            breaker = self._breakers.get(shard)
            if breaker is None:
                breaker = CircuitBreaker(
                    failures=self.breaker_failures,
                    reset_after=self.breaker_reset_after,
                    scope=f"shard-{shard:02d}",
                )
                self._breakers[shard] = breaker
            return breaker

    def breaker_stats(self) -> Dict[int, dict]:
        """Per-shard breaker state (shards with no recorded fault and no
        gate check yet are simply absent) — surfaced by ``/healthz``."""
        with self._breaker_lock:
            return {shard: br.stats() for shard, br in self._breakers.items()}

    def _home_shards(self, paths: Sequence[Sequence[str]]) -> Set[int]:
        """The shards a planned query will read from (``{0}`` on the
        unsharded backends, which have a single failure domain)."""
        catalog = self.log.catalog
        entry_shard = getattr(catalog, "entry_shard", None)
        if entry_shard is None:
            return {0}
        shards: Set[int] = set()
        for path in paths:
            for first, second in zip(path, path[1:]):
                entry, _ = catalog.entry_between(first, second)
                shards.add(entry_shard((entry.in_name, entry.out_name)))
        return shards

    def _fault_shard(self, exc: BaseException, shards: Set[int]) -> int:
        """Attribute a fault to the shard it came from: the exception's
        own scope/shard/path metadata when present, else the query's only
        home shard, else the lowest (deterministic) candidate."""
        shard = getattr(exc, "shard", None)
        if isinstance(shard, int):
            return shard
        for hint in (getattr(exc, "scope", None), getattr(exc, "path", None)):
            if hint is None:
                continue
            name = hint if isinstance(hint, str) else hint.parent.name
            if isinstance(name, str) and name.startswith("shard-"):
                try:
                    return int(name.split("-", 1)[1])
                except ValueError:
                    pass
        return min(shards) if shards else 0

    def _maybe_probe(self, shard: int) -> None:
        """Claim a half-open breaker's single recovery probe and attempt
        reopen-with-scrub; success closes the breaker, failure re-opens it
        (restarting the reset clock)."""
        breaker = self._breakers.get(shard)
        if breaker is None or not breaker.try_probe():
            return
        store = getattr(self.log, "store", None)
        try:
            if hasattr(store, "reopen_shard"):
                store.reopen_shard(shard)
            elif hasattr(store, "reset_io"):
                store.reset_io()
                store.scrub(repair=True)
            # the repair may have rebuilt records at addresses the remap
            # chain cannot reach (misdirected refs alias valid records);
            # re-point the in-memory entries at the healed manifest rows
            refresh = getattr(self.log, "refresh_entry_refs", None)
            if refresh is not None:
                refresh()
            breaker.record_success()
            with self._stats_lock:
                self.shard_reopens += 1
        except Exception:
            breaker.record_failure()

    # ------------------------------------------------------------------
    # dependency vectors
    # ------------------------------------------------------------------
    def _live_versions(self) -> Dict[int, int]:
        """Current applied version of every shard (pseudo-shard 0 holds the
        catalog generation counter on unsharded backends)."""
        catalog = self.log.catalog
        vector = getattr(catalog, "shard_version_vector", None)
        if vector is not None:
            return dict(enumerate(vector()))
        return {0: catalog.version}

    def _full_deps(self, live: Dict[int, int]) -> DepVector:
        return tuple(sorted(live.items()))

    def _path_deps(self, live: Dict[int, int], path: Sequence[str]) -> DepVector:
        """Dependency vector of a direct path: the home shards of its hop
        entries only — the precision that lets writers invalidate exactly
        the shards they touched.  Each hop is resolved to its *stored*
        orientation first: shard routing hashes the ``(input, output)``
        pair, so a backward hop queried as ``(out, in)`` would otherwise
        key on the wrong shard and survive a replace of its entry."""
        catalog = self.log.catalog
        entry_shard = getattr(catalog, "entry_shard", None)
        if entry_shard is None:
            return self._full_deps(live)
        shards = set()
        for first, second in zip(path, path[1:]):
            entry, _ = catalog.entry_between(first, second)
            shards.add(entry_shard((entry.in_name, entry.out_name)))
        return tuple((shard, live[shard]) for shard in sorted(shards))

    # ------------------------------------------------------------------
    # digests
    # ------------------------------------------------------------------
    @staticmethod
    def _digest(kind: str, *parts: bytes) -> bytes:
        h = hashlib.blake2b(digest_size=16)
        h.update(kind.encode("utf-8"))
        for part in parts:
            h.update(b"\x1f")
            h.update(part)
        return h.digest()

    def _query_digest(self, path: Sequence[str], box_set, merge: bool) -> bytes:
        return self._digest(
            "prov_query",
            "\x00".join(path).encode("utf-8"),
            repr(box_set.shape).encode("utf-8"),
            box_set.lo.tobytes(),
            box_set.hi.tobytes(),
            b"1" if merge else b"0",
        )

    # ------------------------------------------------------------------
    # the read API
    # ------------------------------------------------------------------
    def query(
        self,
        path: Sequence[str],
        query_cells,
        merge: bool = True,
        deadline: Optional[float] = None,
    ) -> QueryOutcome:
        """Run one lineage query; returns a :class:`QueryOutcome`
        (``result, cached, degraded`` — index ``[0]``/``[1]`` keeps the
        old 2-tuple call sites working).

        Semantics match :meth:`DSLog.prov_query` exactly (including graph
        planning of two-array paths); the differences are the cache in
        front, the parallel fan-out behind, and the failure envelope: a
        *deadline* (seconds; ``default_deadline`` when omitted) bounds the
        pooled fan-out with :class:`~repro.faults.DeadlineExceeded`, and a
        query whose home shard is faulting serves its last cached answer
        flagged degraded (or raises the structured
        :class:`~repro.faults.ShardUnavailable`) instead of hanging.
        """
        return self._query(path, query_cells, merge, parallel=True, deadline=deadline)

    def prov_query(self, path: Sequence[str], query_cells, merge: bool = True) -> QueryResult:
        """:meth:`query` without the outcome flags — drop-in for ``DSLog.prov_query``."""
        return self.query(path, query_cells, merge=merge)[0]

    def map_queries(self, requests: Sequence[Tuple[Sequence[str], Any]]):
        """Run a batch of ``(path, query_cells)`` requests, fanned out over
        the pool (one task per query, each executed sequentially inside its
        task so batch tasks never wait on nested pool slots).  Returns
        results in order."""
        self._check_open()
        if self._pool is None or len(requests) <= 1:
            return [self._query(path, cells, True, parallel=True)[0] for path, cells in requests]
        futures = [
            self._pool.submit(self._query, path, cells, True, False)
            for path, cells in requests
        ]
        return [future.result()[0] for future in futures]

    # ------------------------------------------------------------------
    # batched execution
    # ------------------------------------------------------------------
    def query_batch(
        self,
        requests: Sequence[Tuple[Sequence[str], Any]],
        merge: bool = True,
        deadline: Optional[float] = None,
    ) -> List[Any]:
        """Run a batch of ``(path, query_cells)`` requests through shared
        kernel passes; returns one entry per request, in order — a
        :class:`QueryOutcome` on success, or the exception that request
        alone raised (unknown array, planning failure, unavailable shard
        with nothing cached).  One bad request never fails the batch.

        The batch pipeline amortizes everything the per-request path pays
        per query: the dependency-version read and snapshot pin happen
        once, cache hits peel off before any kernel work, the remaining
        misses are grouped by resolved hop path, each path group's tables
        are prefetched once, and each group executes as a *single* blocked
        θ-join pass per hop (:func:`~repro.core.query.execute_path_batch`)
        with per-query result segmentation — results are bit-identical to
        running the requests one at a time.  Fresh results are installed in
        the result cache per query, exactly as single execution would.
        """
        self._check_open()
        requests = list(requests)
        if not requests:
            return []
        _BATCH_SIZE.observe(len(requests))
        with self._stats_lock:
            self.batches += 1
            self.batched_queries += len(requests)
        trace = tracing.current_trace()
        if trace is not None:
            trace.set_tag("batch_size", len(requests))
        if deadline is None:
            deadline = self.default_deadline
        deadline_at = time.monotonic() + deadline if deadline is not None else None

        outcomes: List[Any] = [None] * len(requests)
        live = self._live_versions()
        # phase 1: validate, digest and peel cache hits off the batch
        pending: List[Tuple[int, List[str], Any, bytes]] = []
        for i, request in enumerate(requests):
            try:
                path, query_cells = request
                path = list(path)
                if len(path) < 2:
                    raise ValueError("a query path needs at least two arrays")
                for name in path:
                    self.log.catalog.array(name)  # KeyError for unknown arrays
                box_set = self.log._as_box_set(path[0], query_cells)
                key = self._query_digest(path, box_set, merge)
            except Exception as error:  # noqa: BLE001 - per-item containment
                outcomes[i] = error
                continue
            hit, value = self.cache.lookup(key, live)
            if hit:
                outcomes[i] = QueryOutcome(value, True, False)
            else:
                pending.append((i, path, box_set, key))
        if trace is not None:
            trace.set_tag("batch_misses", len(pending))
        if not pending:
            return outcomes

        _QUERIES.inc(len(pending))
        with self._stats_lock:
            self.queries += len(pending)

        # phase 2: group the misses by resolved hop path(s)
        groups: Dict[Any, Tuple[List[List[str]], bool, List[Tuple[int, Any, bytes]]]] = {}
        for i, path, box_set, key in pending:
            try:
                paths, direct = self._plan(path)
            except Exception as error:  # noqa: BLE001 - per-item containment
                outcomes[i] = error
                continue
            group_key = (tuple(tuple(p) for p in paths), direct)
            group = groups.get(group_key)
            if group is None:
                group = (paths, direct, [])
                groups[group_key] = group
            group[2].append((i, box_set, key))

        # phase 3: one snapshot pin, one prefetch, one kernel pass per group
        pin = self._pin_stores()
        try:
            all_paths = [p for paths, _, _ in groups.values() for p in paths]
            try:
                with tracing.span("batch-prefetch", groups=len(groups)):
                    self._prefetch_tables(all_paths, deadline_at=deadline_at)
            except (DeadlineExceeded, OSError, CorruptRecordError) as error:
                self._fail_groups(groups, outcomes, error)
                return outcomes
            for paths, direct, items in groups.values():
                self._execute_group(
                    paths, direct, items, merge, live, deadline_at, outcomes
                )
        finally:
            if pin is not None:
                pin()
        return outcomes

    def prov_query_batch(
        self, requests: Sequence[Tuple[Sequence[str], Any]], merge: bool = True
    ) -> List[QueryResult]:
        """:meth:`query_batch` without the outcome flags: one
        :class:`~repro.core.query.QueryResult` per request, in order.
        Unlike the containment semantics of :meth:`query_batch`, a failed
        request raises (the first failure, after the batch ran)."""
        outcomes = self.query_batch(requests, merge=merge)
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
        return [outcome.result for outcome in outcomes]

    def _execute_group(
        self,
        paths: List[List[str]],
        direct: bool,
        items: List[Tuple[int, Any, bytes]],
        merge: bool,
        live: Dict[int, int],
        deadline_at: Optional[float],
        outcomes: List[Any],
    ) -> None:
        """Execute one path group of a batch: breaker-gate its home shards,
        run the batched θ-join chain(s), install per-query cache entries.
        Failures degrade each of the group's queries individually."""
        try:
            shards = self._home_shards(paths)
        except Exception as error:  # noqa: BLE001 - per-item containment
            for i, _box_set, key in items:
                outcomes[i] = error
            return
        blocked = {s for s in shards if not self._breaker_allows(s)}
        if blocked:
            for i, _box_set, key in items:
                outcomes[i] = self._degrade_item(key, blocked)
            return
        deps = self._path_deps(live, paths[0]) if direct else self._full_deps(live)
        box_sets = [box_set for _, box_set, _ in items]
        try:
            self._remaining(deadline_at, None)  # refuse doomed kernel work
            with tracing.span(
                "batch-join", paths=len(paths), queries=len(items)
            ):
                per_path = [
                    execute_path_batch(self._resolve_tables(p), box_sets, merge=merge)
                    for p in paths
                ]
                if len(per_path) == 1:
                    results = per_path[0]
                else:
                    results = [
                        QueryResult.union([r[j] for r in per_path], merge=merge)
                        for j in range(len(items))
                    ]
        except DeadlineExceeded as exc:
            _DEADLINE_MISSES.inc()
            with self._stats_lock:
                self.deadline_misses += 1
            shard = exc.shard if exc.shard is not None else self._fault_shard(exc, shards)
            self._breaker(shard).record_failure()
            for i, _box_set, key in items:
                outcomes[i] = self._degrade_item(key, {shard}, cause=exc)
            return
        except (OSError, CorruptRecordError) as exc:
            shard = self._fault_shard(exc, shards)
            self._breaker(shard).record_failure()
            for i, _box_set, key in items:
                outcomes[i] = self._degrade_item(key, {shard}, cause=exc)
            return
        for shard in shards:
            breaker = self._breakers.get(shard)
            if breaker is not None:
                breaker.record_success()
        for (i, _box_set, key), result in zip(items, results):
            self.cache.store(key, deps, result)
            outcomes[i] = QueryOutcome(result, False, False)

    def _fail_groups(self, groups, outcomes: List[Any], error: BaseException) -> None:
        """A batch-wide prefetch failure: degrade every grouped query
        individually against the faulted shard."""
        shard = self._fault_shard(error, set())
        self._breaker(shard).record_failure()
        if isinstance(error, DeadlineExceeded):
            _DEADLINE_MISSES.inc()
            with self._stats_lock:
                self.deadline_misses += 1
        for _paths, _direct, items in groups.values():
            for i, _box_set, key in items:
                outcomes[i] = self._degrade_item(key, {shard}, cause=error)

    def _degrade_item(self, key: bytes, blocked: Set[int], cause=None):
        """Per-item :meth:`_degrade`: returns the degraded
        :class:`QueryOutcome`, or the exception (instead of raising) so a
        batch can carry per-item failures."""
        try:
            return self._degrade(key, blocked, cause=cause)
        except BaseException as error:  # noqa: BLE001 - per-item containment
            return error

    def _query(
        self,
        path: Sequence[str],
        query_cells,
        merge: bool,
        parallel: bool,
        deadline: Optional[float] = None,
    ) -> QueryOutcome:
        """The one cache + plan + fan-out pipeline behind every query entry
        point; *parallel* toggles the pool fan-out (False inside batch
        tasks, which already run on the pool)."""
        self._check_open()
        path = list(path)
        if len(path) < 2:
            raise ValueError("a query path needs at least two arrays")
        for name in path:
            self.log.catalog.array(name)  # raises KeyError for unknown arrays
        box_set = self.log._as_box_set(path[0], query_cells)
        key = self._query_digest(path, box_set, merge)

        # read the dependency versions BEFORE resolving entries (see the
        # module docstring: a mid-execution writer must make the cached
        # entry stale, never fresher than its key)
        live = self._live_versions()
        hit, value = self.cache.lookup(key, live)
        trace = tracing.current_trace()
        if hit:
            if trace is not None:
                trace.set_tag("cache", "hit")
            return QueryOutcome(value, True, False)
        if trace is not None:
            trace.set_tag("cache", "miss")
            trace.set_tag("path_len", len(path))

        _QUERIES.inc()
        with self._stats_lock:
            self.queries += 1
        if deadline is None:
            deadline = self.default_deadline
        deadline_at = time.monotonic() + deadline if deadline is not None else None

        pin = self._pin_stores()
        try:
            with tracing.span("plan") as plan_span:
                paths, direct = self._plan(path)
                shards = self._home_shards(paths)
                plan_span.set_tag("paths", len(paths))
                plan_span.set_tag("shards", sorted(shards))

            # breaker gate: a tripped home shard means the failing disk is
            # not touched at all — serve the stale answer or refuse cleanly
            blocked = {s for s in shards if not self._breaker_allows(s)}
            if blocked:
                return self._degrade(key, blocked)

            deps = self._path_deps(live, paths[0]) if direct else self._full_deps(live)
            try:
                result = self._execute_paths(
                    paths, box_set, merge, parallel=parallel, deadline_at=deadline_at
                )
            except DeadlineExceeded as exc:
                _DEADLINE_MISSES.inc()
                with self._stats_lock:
                    self.deadline_misses += 1
                shard = exc.shard if exc.shard is not None else self._fault_shard(exc, shards)
                self._breaker(shard).record_failure()
                return self._degrade(key, {shard}, cause=exc)
            except (OSError, CorruptRecordError) as exc:
                shard = self._fault_shard(exc, shards)
                self._breaker(shard).record_failure()
                return self._degrade(key, {shard}, cause=exc)
            for shard in shards:
                breaker = self._breakers.get(shard)
                if breaker is not None:
                    breaker.record_success()
        finally:
            if pin is not None:
                pin()
        with tracing.span("cache-install"):
            self.cache.store(key, deps, result)
        return QueryOutcome(result, False, False)

    def _breaker_allows(self, shard: int) -> bool:
        """Gate one home shard: closed passes; half-open triggers (at most)
        one reopen-with-scrub probe and passes only if it healed."""
        breaker = self._breakers.get(shard)
        if breaker is None or breaker.allows():
            return True
        self._maybe_probe(shard)
        breaker = self._breakers.get(shard)
        return breaker is None or breaker.allows()

    def _degrade(self, key: bytes, blocked: Set[int], cause=None) -> QueryOutcome:
        """Serve the stale cached answer for an unavailable-shard query,
        or raise structured :class:`~repro.faults.ShardUnavailable` /
        re-raise the underlying fault when there is nothing to serve."""
        stale_hit, stale = self.cache.lookup_stale(key)
        if stale_hit:
            trace = tracing.current_trace()
            if trace is not None:
                trace.set_tag("cache", "stale")
                trace.set_tag("degraded", True)
            with self._stats_lock:
                self.degraded_serves += 1
            return QueryOutcome(stale, True, True)
        if cause is not None:
            raise cause
        shard = min(blocked)
        raise ShardUnavailable(
            f"shard {shard} is unavailable (circuit breaker open) and this "
            f"query has no cached result to degrade to",
            shard=shard,
        )

    def impact(self, name: str) -> Dict[str, int]:
        """Cached :meth:`DSLog.impact` (keyed on the full shard vector —
        any new entry can extend the closure)."""
        return self._graph_cached("impact", name, lambda: self.log.impact(name))

    def dependencies(self, name: str) -> Dict[str, int]:
        """Cached :meth:`DSLog.dependencies`."""
        return self._graph_cached(
            "dependencies", name, lambda: self.log.dependencies(name)
        )

    def lineage_summary(self) -> dict:
        """Cached :meth:`DSLog.lineage_summary`."""
        return self._graph_cached("summary", "", self.log.lineage_summary)

    def graph_edges(self):
        """Cached edge list of the lineage DAG (sorted ``(in, out)`` pairs)."""
        return self._graph_cached("edges", "", lambda: self.log.graph.edges())

    def _graph_cached(self, kind: str, name: str, compute):
        self._check_open()
        key = self._digest(kind, name.encode("utf-8"))
        live = self._live_versions()
        hit, value = self.cache.lookup(key, live)
        if hit:
            return value
        value = compute()
        self.cache.store(key, self._full_deps(live), value)
        return value

    # ------------------------------------------------------------------
    # planning + fan-out
    # ------------------------------------------------------------------
    def _plan(self, path: List[str]) -> Tuple[List[List[str]], bool]:
        """Resolve the hop list(s): ``(paths, direct)`` where *direct* means
        the user's own path is executable as stored (its cache key may then
        depend on the hop entries' home shards only)."""
        if len(path) == 2:
            try:
                self.log.catalog.entry_between(path[0], path[1])
            except KeyError:
                planned = self.log.graph.shortest_paths(path[0], path[1])
                if not planned:
                    raise KeyError(
                        f"no lineage stored between {path[0]!r} and {path[1]!r}"
                    ) from None
                return planned, False
        return [path], True

    def _resolve_tables(self, path: Sequence[str]) -> list:
        catalog = self.log.catalog
        return [
            catalog.entry_between(first, second)[0].table_keyed_on(first)
            for first, second in zip(path, path[1:])
        ]

    @staticmethod
    def _remaining(deadline_at: Optional[float], shard: Optional[int]) -> Optional[float]:
        """Seconds left in the budget; raises when already exhausted."""
        if deadline_at is None:
            return None
        remaining = deadline_at - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceeded("query deadline exceeded", shard=shard)
        return remaining

    def _prefetch_tables(
        self, paths: Sequence[Sequence[str]], deadline_at: Optional[float] = None
    ) -> None:
        """Materialize every hop table, grouped by home shard on the pool.

        Lazy entries hydrate through their shard's segment reader and LRU
        cache; grouping by shard means two shards' reads + gunzips overlap
        while each shard's own reads stay sequential (one file cursor, one
        cache) — the per-shard fan-out of the serving tier.

        With a deadline, each shard's hydration is awaited against the
        remaining budget: one slow/stalled shard raises
        :class:`~repro.faults.DeadlineExceeded` naming it, instead of
        wedging the whole query.  (The unsharded backends hydrate as
        pseudo-shard 0 so the deadline applies there too.)
        """
        if self._pool is None:
            return  # sequential executor: loads happen in-line, unbounded
        catalog = self.log.catalog
        entry_shard = getattr(catalog, "entry_shard", None)
        by_shard: Dict[int, List[Tuple[Any, str]]] = {}
        for path in paths:
            for first, second in zip(path, path[1:]):
                entry, _ = catalog.entry_between(first, second)
                pair = (entry.in_name, entry.out_name)
                shard = entry_shard(pair) if entry_shard is not None else 0
                by_shard.setdefault(shard, []).append((entry, first))

        def load(shard: int, tasks: List[Tuple[Any, str]]) -> None:
            started = time.monotonic()
            with tracing.span("prefetch-shard", shard=shard, tables=len(tasks)):
                for entry, keyed_on in tasks:
                    entry.table_keyed_on(keyed_on)
            _PREFETCH_SECONDS.labels(shard=str(shard)).observe(
                time.monotonic() - started
            )

        if len(by_shard) <= 1 and deadline_at is None:
            # single failure domain, no budget: skip the pool hop.  With a
            # trace active, still record the per-shard prefetch span (the
            # trace contract: one prefetch-shard span per home shard) —
            # just inline, without paying the pool round trip.
            if tracing.current_trace() is not None:
                for shard, tasks in by_shard.items():
                    load(shard, tasks)
            return

        futures = {
            self._pool.submit(tracing.wrap_context(load), shard, tasks): shard
            for shard, tasks in by_shard.items()
        }
        with self._stats_lock:
            self.parallel_loads += len(futures)
        try:
            for future, shard in futures.items():
                try:
                    future.result(timeout=self._remaining(deadline_at, shard))
                except TimeoutError as exc:
                    if isinstance(exc, DeadlineExceeded):
                        raise
                    raise DeadlineExceeded(
                        f"shard {shard} did not hydrate within the deadline",
                        shard=shard,
                    ) from None
        finally:
            for future in futures:
                future.cancel()  # not-yet-started loads of a doomed query

    def _execute_paths(
        self,
        paths: List[List[str]],
        box_set,
        merge: bool,
        parallel: bool,
        deadline_at: Optional[float] = None,
    ) -> QueryResult:
        if parallel:
            with tracing.span("prefetch"):
                self._prefetch_tables(paths, deadline_at=deadline_at)
        with tracing.span("join", paths=len(paths)):
            if parallel and self._pool is not None and len(paths) > 1:
                futures = [
                    self._pool.submit(
                        tracing.wrap_context(self._execute_one), p, box_set, merge
                    )
                    for p in paths
                ]
                with self._stats_lock:
                    self.parallel_paths += len(futures)
                try:
                    results = [
                        future.result(timeout=self._remaining(deadline_at, None))
                        for future in futures
                    ]
                except TimeoutError as exc:
                    if isinstance(exc, DeadlineExceeded):
                        raise
                    raise DeadlineExceeded(
                        "query deadline exceeded", shard=None
                    ) from None
            else:
                results = [self._execute_one(p, box_set, merge) for p in paths]
            return QueryResult.union(results, merge=merge)

    def _execute_one(self, path: Sequence[str], box_set, merge: bool) -> QueryResult:
        return execute_path(self._resolve_tables(path), box_set, merge=merge)

    def _pin_stores(self):
        """Snapshot-pin the backing store(s) for the query's lifetime so a
        concurrent compaction retires (rather than deletes) segment files
        this query may still read.  Returns the release callable."""
        store = getattr(self.log, "store", None)
        if store is None:
            return None
        store.pin()
        return store.release_pin

    # ------------------------------------------------------------------
    # lifecycle + stats
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the query executor is closed")

    def stats(self) -> dict:
        with self._stats_lock:
            return {
                "queries": self.queries,
                "max_workers": self.max_workers,
                "parallel_loads": self.parallel_loads,
                "parallel_paths": self.parallel_paths,
                "degraded_serves": self.degraded_serves,
                "deadline_misses": self.deadline_misses,
                "shard_reopens": self.shard_reopens,
                "batches": self.batches,
                "batched_queries": self.batched_queries,
                "cache": self.cache.stats(),
                "breakers": self.breaker_stats(),
            }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self.cache.clear()

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
