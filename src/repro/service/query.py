"""The scale-out query executor (``QueryExecutor``) and its result cache.

PR 3 made the *write* path concurrent; this module is the read-side
counterpart: one executor object that plans a ``prov_query`` / ``impact`` /
``dependencies`` request against the catalog, fans the per-shard work out
over a thread pool, and fronts everything with a generation-keyed LRU so a
hot query never re-runs the θ-join chain at all.

Execution pipeline
------------------
1. **Plan** — an explicit multi-hop path resolves hop-by-hop through
   ``entry_between``; a two-array path with no direct entry is planned by
   the lineage graph (shortest stored path(s), diamond paths unioned).
2. **Fan out** — every backing store is snapshot-pinned (compaction retires
   rather than deletes segments while the query reads), then the hop
   tables are prefetched *per shard* on the thread pool: shards are
   independent single-writer stores, so their segment reads, gunzips and
   deserializations overlap instead of queueing behind one another.  With
   several planned paths, the θ-join chains themselves also run in
   parallel, one task per path.
3. **Merge** — per-path :class:`~repro.core.query.QueryResult`\\ s are
   combined with the existing ``QueryResult.union``.

Result cache
------------
:class:`ResultCache` is an LRU keyed on the *query-box digest* — a stable
hash of the path, the query boxes and the merge flag — whose entries are
validated against a *dependency vector*: the ``(shard, version)`` pairs the
result was computed from.  The sharded catalog keeps one applied-mutation
counter per shard (:attr:`ShardedCatalog.shard_version_vector`), so

* a **direct path query** depends only on the home shards of its hop
  entries: writers invalidate exactly the shards they touched, and ingest
  into any other shard leaves the cached result valid;
* a **graph-planned query** (and ``impact`` / ``dependencies`` /
  ``lineage_summary``) depends on the whole edge set, so it is keyed on
  the full vector — any shard's write invalidates it, which is the only
  correct answer when a new entry can create a shorter path.

The memory and segment backends have no shards; their dependency vector is
the catalog's single generation counter, i.e. any write invalidates.

The dependency vector is read *before* entries are resolved (the same
read-version-first protocol as ``DSLog.prov_query``): a writer landing
mid-execution makes the cached entry validate as stale on the next lookup
rather than ever serving a result fresher than its key claims.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.query import QueryResult, execute_path

__all__ = ["ResultCache", "QueryExecutor", "DEFAULT_CACHE_ENTRIES"]

DEFAULT_CACHE_ENTRIES = 256

# (shard index, applied-version) pairs a cached result was computed from
DepVector = Tuple[Tuple[int, int], ...]


class ResultCache:
    """LRU of query results keyed on digest, validated by shard versions.

    Thread-safe: the HTTP server's handler threads and the executor's own
    pool all go through here.  An entry *hits* only when every shard it
    depends on still has the version it was computed at; otherwise it is
    dropped (counted as an invalidation) and the caller recomputes.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        self.max_entries = int(max_entries)
        self._items: "OrderedDict[bytes, Tuple[DepVector, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def __len__(self) -> int:
        return len(self._items)

    def lookup(self, key: bytes, live_versions: Dict[int, int]) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; *live_versions* maps shard → current
        applied version (shards absent from the map never invalidate)."""
        if not self.enabled:
            return False, None
        with self._lock:
            item = self._items.get(key)
            if item is None:
                self.misses += 1
                return False, None
            deps, value = item
            for shard, version in deps:
                if live_versions.get(shard, version) != version:
                    del self._items[key]
                    self.invalidations += 1
                    self.misses += 1
                    return False, None
            self._items.move_to_end(key)
            self.hits += 1
            return True, value

    def store(self, key: bytes, deps: DepVector, value: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._items[key] = (deps, value)
            self._items.move_to_end(key)
            while len(self._items) > self.max_entries:
                self._items.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._items.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._items),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            }


class QueryExecutor:
    """Plan, fan out and cache read queries over a DSLog catalog.

    Parameters
    ----------
    log:
        Any :class:`~repro.dslog.DSLog` (memory, segment or sharded
        backend; a snapshot view works too).  The executor only reads.
    max_workers:
        Thread-pool width for per-shard prefetch, per-path execution and
        :meth:`map_queries`.  ``1`` disables parallelism (the sequential
        baseline the serving benchmark compares against).  Defaults to
        ``min(8, max(2, os.cpu_count()))``.
    cache_entries:
        Capacity of the :class:`ResultCache`; ``0`` disables caching.
    """

    def __init__(
        self,
        log,
        max_workers: Optional[int] = None,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
    ) -> None:
        if max_workers is None:
            max_workers = min(8, max(2, os.cpu_count() or 1))
        self.log = log
        self.max_workers = max(1, int(max_workers))
        self.cache = ResultCache(cache_entries)
        self._pool = (
            ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="lineage-query"
            )
            if self.max_workers > 1
            else None
        )
        self._closed = False
        self._stats_lock = threading.Lock()
        self.queries = 0
        self.parallel_loads = 0
        self.parallel_paths = 0

    # ------------------------------------------------------------------
    # dependency vectors
    # ------------------------------------------------------------------
    def _live_versions(self) -> Dict[int, int]:
        """Current applied version of every shard (pseudo-shard 0 holds the
        catalog generation counter on unsharded backends)."""
        catalog = self.log.catalog
        vector = getattr(catalog, "shard_version_vector", None)
        if vector is not None:
            return dict(enumerate(vector()))
        return {0: catalog.version}

    def _full_deps(self, live: Dict[int, int]) -> DepVector:
        return tuple(sorted(live.items()))

    def _path_deps(self, live: Dict[int, int], path: Sequence[str]) -> DepVector:
        """Dependency vector of a direct path: the home shards of its hop
        entries only — the precision that lets writers invalidate exactly
        the shards they touched.  Each hop is resolved to its *stored*
        orientation first: shard routing hashes the ``(input, output)``
        pair, so a backward hop queried as ``(out, in)`` would otherwise
        key on the wrong shard and survive a replace of its entry."""
        catalog = self.log.catalog
        entry_shard = getattr(catalog, "entry_shard", None)
        if entry_shard is None:
            return self._full_deps(live)
        shards = set()
        for first, second in zip(path, path[1:]):
            entry, _ = catalog.entry_between(first, second)
            shards.add(entry_shard((entry.in_name, entry.out_name)))
        return tuple((shard, live[shard]) for shard in sorted(shards))

    # ------------------------------------------------------------------
    # digests
    # ------------------------------------------------------------------
    @staticmethod
    def _digest(kind: str, *parts: bytes) -> bytes:
        h = hashlib.blake2b(digest_size=16)
        h.update(kind.encode("utf-8"))
        for part in parts:
            h.update(b"\x1f")
            h.update(part)
        return h.digest()

    def _query_digest(self, path: Sequence[str], box_set, merge: bool) -> bytes:
        return self._digest(
            "prov_query",
            "\x00".join(path).encode("utf-8"),
            repr(box_set.shape).encode("utf-8"),
            box_set.lo.tobytes(),
            box_set.hi.tobytes(),
            b"1" if merge else b"0",
        )

    # ------------------------------------------------------------------
    # the read API
    # ------------------------------------------------------------------
    def query(self, path: Sequence[str], query_cells, merge: bool = True):
        """Run one lineage query; returns ``(QueryResult, served_from_cache)``.

        Semantics match :meth:`DSLog.prov_query` exactly (including graph
        planning of two-array paths); the differences are the cache in
        front and the parallel fan-out behind.
        """
        return self._query(path, query_cells, merge, parallel=True)

    def prov_query(self, path: Sequence[str], query_cells, merge: bool = True) -> QueryResult:
        """:meth:`query` without the cache flag — drop-in for ``DSLog.prov_query``."""
        return self.query(path, query_cells, merge=merge)[0]

    def map_queries(self, requests: Sequence[Tuple[Sequence[str], Any]]):
        """Run a batch of ``(path, query_cells)`` requests, fanned out over
        the pool (one task per query, each executed sequentially inside its
        task so batch tasks never wait on nested pool slots).  Returns
        results in order."""
        self._check_open()
        if self._pool is None or len(requests) <= 1:
            return [self._query(path, cells, True, parallel=True)[0] for path, cells in requests]
        futures = [
            self._pool.submit(self._query, path, cells, True, False)
            for path, cells in requests
        ]
        return [future.result()[0] for future in futures]

    def _query(self, path: Sequence[str], query_cells, merge: bool, parallel: bool):
        """The one cache + plan + fan-out pipeline behind every query entry
        point; *parallel* toggles the pool fan-out (False inside batch
        tasks, which already run on the pool)."""
        self._check_open()
        path = list(path)
        if len(path) < 2:
            raise ValueError("a query path needs at least two arrays")
        for name in path:
            self.log.catalog.array(name)  # raises KeyError for unknown arrays
        box_set = self.log._as_box_set(path[0], query_cells)
        key = self._query_digest(path, box_set, merge)

        # read the dependency versions BEFORE resolving entries (see the
        # module docstring: a mid-execution writer must make the cached
        # entry stale, never fresher than its key)
        live = self._live_versions()
        hit, value = self.cache.lookup(key, live)
        if hit:
            return value, True

        with self._stats_lock:
            self.queries += 1
        pin = self._pin_stores()
        try:
            paths, direct = self._plan(path)
            deps = self._path_deps(live, paths[0]) if direct else self._full_deps(live)
            result = self._execute_paths(paths, box_set, merge, parallel=parallel)
        finally:
            if pin is not None:
                pin()
        self.cache.store(key, deps, result)
        return result, False

    def impact(self, name: str) -> Dict[str, int]:
        """Cached :meth:`DSLog.impact` (keyed on the full shard vector —
        any new entry can extend the closure)."""
        return self._graph_cached("impact", name, lambda: self.log.impact(name))

    def dependencies(self, name: str) -> Dict[str, int]:
        """Cached :meth:`DSLog.dependencies`."""
        return self._graph_cached(
            "dependencies", name, lambda: self.log.dependencies(name)
        )

    def lineage_summary(self) -> dict:
        """Cached :meth:`DSLog.lineage_summary`."""
        return self._graph_cached("summary", "", self.log.lineage_summary)

    def graph_edges(self):
        """Cached edge list of the lineage DAG (sorted ``(in, out)`` pairs)."""
        return self._graph_cached("edges", "", lambda: self.log.graph.edges())

    def _graph_cached(self, kind: str, name: str, compute):
        self._check_open()
        key = self._digest(kind, name.encode("utf-8"))
        live = self._live_versions()
        hit, value = self.cache.lookup(key, live)
        if hit:
            return value
        value = compute()
        self.cache.store(key, self._full_deps(live), value)
        return value

    # ------------------------------------------------------------------
    # planning + fan-out
    # ------------------------------------------------------------------
    def _plan(self, path: List[str]) -> Tuple[List[List[str]], bool]:
        """Resolve the hop list(s): ``(paths, direct)`` where *direct* means
        the user's own path is executable as stored (its cache key may then
        depend on the hop entries' home shards only)."""
        if len(path) == 2:
            try:
                self.log.catalog.entry_between(path[0], path[1])
            except KeyError:
                planned = self.log.graph.shortest_paths(path[0], path[1])
                if not planned:
                    raise KeyError(
                        f"no lineage stored between {path[0]!r} and {path[1]!r}"
                    ) from None
                return planned, False
        return [path], True

    def _resolve_tables(self, path: Sequence[str]) -> list:
        catalog = self.log.catalog
        return [
            catalog.entry_between(first, second)[0].table_keyed_on(first)
            for first, second in zip(path, path[1:])
        ]

    def _prefetch_tables(self, paths: Sequence[Sequence[str]]) -> None:
        """Materialize every hop table, grouped by home shard on the pool.

        Lazy entries hydrate through their shard's segment reader and LRU
        cache; grouping by shard means two shards' reads + gunzips overlap
        while each shard's own reads stay sequential (one file cursor, one
        cache) — the per-shard fan-out of the serving tier.
        """
        catalog = self.log.catalog
        entry_shard = getattr(catalog, "entry_shard", None)
        if self._pool is None or entry_shard is None:
            return  # sequential executor or unsharded: loads happen in-line
        by_shard: Dict[int, List[Tuple[Any, str]]] = {}
        for path in paths:
            for first, second in zip(path, path[1:]):
                entry, _ = catalog.entry_between(first, second)
                pair = (entry.in_name, entry.out_name)
                by_shard.setdefault(entry_shard(pair), []).append((entry, first))
        if len(by_shard) <= 1:
            return

        def load(tasks: List[Tuple[Any, str]]) -> None:
            for entry, keyed_on in tasks:
                entry.table_keyed_on(keyed_on)

        futures = [self._pool.submit(load, tasks) for tasks in by_shard.values()]
        with self._stats_lock:
            self.parallel_loads += len(futures)
        for future in futures:
            future.result()

    def _execute_paths(
        self, paths: List[List[str]], box_set, merge: bool, parallel: bool
    ) -> QueryResult:
        if parallel:
            self._prefetch_tables(paths)
        if parallel and self._pool is not None and len(paths) > 1:
            futures = [
                self._pool.submit(self._execute_one, p, box_set, merge) for p in paths
            ]
            with self._stats_lock:
                self.parallel_paths += len(futures)
            results = [future.result() for future in futures]
        else:
            results = [self._execute_one(p, box_set, merge) for p in paths]
        return QueryResult.union(results, merge=merge)

    def _execute_one(self, path: Sequence[str], box_set, merge: bool) -> QueryResult:
        return execute_path(self._resolve_tables(path), box_set, merge=merge)

    def _pin_stores(self):
        """Snapshot-pin the backing store(s) for the query's lifetime so a
        concurrent compaction retires (rather than deletes) segment files
        this query may still read.  Returns the release callable."""
        store = getattr(self.log, "store", None)
        if store is None:
            return None
        store.pin()
        return store.release_pin

    # ------------------------------------------------------------------
    # lifecycle + stats
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the query executor is closed")

    def stats(self) -> dict:
        with self._stats_lock:
            return {
                "queries": self.queries,
                "max_workers": self.max_workers,
                "parallel_loads": self.parallel_loads,
                "parallel_paths": self.parallel_paths,
                "cache": self.cache.stats(),
            }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self.cache.clear()

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
