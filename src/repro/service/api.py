"""The transport-agnostic service layer behind both lineage servers.

PR 4 built the HTTP server with its request handling inlined; the binary
RPC tier (:mod:`repro.service.rpc`) serves the *same* catalog operations
over a different wire, so everything that is about the **service** rather
than the **transport** lives here:

* :func:`parse_query_request` — validate a query body (shared request
  shape: ``path`` + ``cells``/``slices`` + flags) into a :class:`QuerySpec`;
* :class:`ServiceCore` — one object owning the
  :class:`~repro.service.query.QueryExecutor`, the optional
  :class:`QueryCoalescer` and the health/scrub/traces plumbing.  The HTTP
  server and the RPC server are both thin shells over one core — when
  ``DSLog.serve(transport="both")`` runs them side by side they share the
  executor, so a result cached through one transport is a cache hit
  through the other;
* :func:`error_info` — the one exception → ``(status, type, message)``
  taxonomy, used verbatim for HTTP status codes, per-item batch errors
  and RPC error frames;
* :func:`result_payload` — the JSON-encodable form of a query result
  (the HTTP wire format; the RPC transport encodes the same fields
  binary via :mod:`repro.service.wire`).

The coalescer also lives here: grouping single queries into one executor
batch is a service-level behavior, not an HTTP one, and the RPC server
funnels its ``OP_QUERY`` frames through the very same instance.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from ..faults import DeadlineExceeded, IngestOverloaded, ShardUnavailable
from ..obs import DEFAULT_SIZE_BUCKETS, REGISTRY, tracing
from ..storage.catalog import AmbiguousLineageError
from .query import DEFAULT_CACHE_ENTRIES, QueryExecutor, QueryOutcome

__all__ = [
    "QuerySpec",
    "parse_query_request",
    "result_payload",
    "error_info",
    "BadJson",
    "QueryCoalescer",
    "ServiceCore",
    "storage_stats",
]

_COALESCED_BATCH = REGISTRY.histogram(
    "dslog_coalesced_batch_size",
    "Single /query requests grouped into one executor batch per flush",
    buckets=DEFAULT_SIZE_BUCKETS,
)
_COALESCE_FLUSHES = REGISTRY.counter(
    "dslog_coalesce_flushes_total",
    "Coalescer flushes, by trigger (idle = lone request on an idle queue, "
    "window = the coalescing tick expired)",
    labelnames=("reason",),
)


class BadJson(ValueError):
    """A body was present but not valid JSON (distinct 400 type)."""


class QuerySpec(NamedTuple):
    """A validated ``/query`` request body."""

    path: list
    query: Any
    merge: bool
    include_boxes: bool
    include_cells: bool
    deadline: Optional[float]


def _parse_deadline(value) -> Optional[float]:
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
        raise ValueError("'deadline' must be a positive number of seconds")
    return float(value)


def parse_query_request(body: dict) -> QuerySpec:
    """Validate one query request body (shared by both transports)."""
    path = body.get("path")
    if not isinstance(path, list) or len(path) < 2 or not all(
        isinstance(name, str) for name in path
    ):
        raise ValueError("'path' must be a list of at least two array names")
    cells = body.get("cells")
    slices = body.get("slices")
    if (cells is None) == (slices is None):
        raise ValueError("exactly one of 'cells' or 'slices' is required")
    if cells is not None:
        if not isinstance(cells, list):
            raise ValueError("'cells' must be a list of cell coordinates")
        query: Any = []
        for cell in cells:
            if isinstance(cell, list) and all(isinstance(c, int) for c in cell):
                query.append(tuple(cell))
            elif isinstance(cell, int):
                query.append(cell)
            else:
                raise ValueError(
                    "'cells' entries must be integer coordinate lists (or bare "
                    f"integers for 1-D arrays), got {cell!r}"
                )
    else:
        if not isinstance(slices, list):
            raise ValueError("'slices' must be a list of [start, stop] pairs")
        query = []
        for pair in slices:
            if pair is None:
                query.append(slice(None, None))
            elif (
                isinstance(pair, list)
                and len(pair) == 2
                and all(p is None or isinstance(p, int) for p in pair)
            ):
                query.append(slice(pair[0], pair[1]))
            else:
                raise ValueError(
                    f"'slices' entries must be [start, stop] pairs or null, got {pair!r}"
                )
    return QuerySpec(
        path=path,
        query=query,
        merge=bool(body.get("merge", True)),
        include_boxes=bool(body.get("include_boxes", True)),
        include_cells=bool(body.get("include_cells", False)),
        deadline=_parse_deadline(body.get("deadline")),
    )


def result_payload(
    result, include_boxes: bool = True, include_cells: bool = False
) -> dict:
    """JSON-encodable form of a :class:`~repro.core.query.QueryResult`."""
    cells = result.cells
    payload: Dict[str, Any] = {
        "array": cells.array_name,
        "shape": list(cells.shape),
        "boxes_merged": int(len(cells)),
        "count": int(result.count_cells()),
        "hops": [
            {
                "from": hop.array_from,
                "to": hop.array_to,
                "rows_scanned": hop.rows_scanned,
                "boxes_in": hop.boxes_in,
                "boxes_out_raw": hop.boxes_out_raw,
                "boxes_out_merged": hop.boxes_out_merged,
                "seconds": hop.seconds,
            }
            for hop in result.hops
        ],
    }
    if include_boxes:
        payload["boxes"] = [
            [cells.lo[i].tolist(), cells.hi[i].tolist()] for i in range(len(cells))
        ]
    if include_cells:
        payload["cells"] = result.to_cells_array().tolist()
    return payload


def error_info(error: BaseException) -> Tuple[int, str, str]:
    """Map an exception to its structured ``(status, type, message)``
    triple — the one taxonomy behind whole-request errors, the per-item
    errors of batched queries, and RPC error frames."""
    if isinstance(error, BadJson):
        return 400, "bad-json", f"malformed JSON body: {error}"
    if isinstance(error, (ValueError, AmbiguousLineageError)):
        return 400, "bad-request", str(error)
    if isinstance(error, KeyError):
        return 404, "not-found", str(error.args[0] if error.args else error)
    if isinstance(error, DeadlineExceeded):
        # before OSError: TimeoutError is an OSError subclass on 3.10+
        return 504, "deadline-exceeded", str(error)
    if isinstance(error, ShardUnavailable):
        return 503, "shard-unavailable", str(error)
    if isinstance(error, IngestOverloaded):
        return 503, "overloaded", str(error)
    if isinstance(error, OSError):
        return 503, "io-error", f"{type(error).__name__}: {error}"
    return 500, "internal", f"{type(error).__name__}: {error}"


def storage_stats(store) -> dict:
    """One shape for both backends: write coalescing, table cache, and mmap
    reader stats, pulled from the same objects the metrics registry meters."""
    if store is None:
        return {}
    stats: Dict[str, Any] = {}
    if hasattr(store, "write_stats"):
        stats["writes"] = store.write_stats()
    if hasattr(store, "cache_stats"):  # sharded: one entry per shard
        stats["table_cache"] = store.cache_stats()
    elif hasattr(store, "cache"):
        stats["table_cache"] = store.cache.stats()
    if hasattr(store, "reader_stats"):
        stats["readers"] = store.reader_stats()
    return stats


class _PendingQuery:
    """One query parked in the coalescer, waiting for a flush."""

    __slots__ = ("path", "query", "merge", "deadline", "arrival", "event", "outcome", "error")

    def __init__(self, path, query, merge: bool, deadline: Optional[float]) -> None:
        self.path = path
        self.query = query
        self.merge = merge
        self.deadline = deadline
        self.arrival = time.monotonic()
        self.event = threading.Event()
        self.outcome: Optional[QueryOutcome] = None
        self.error: Optional[BaseException] = None


class QueryCoalescer:
    """Group single queries arriving within a window into one executor
    batch — the read-path mirror of the ingest committer's group commit.

    A background flusher owns the pending queue.  The flush rule keeps
    single-threaded clients deadlock- and latency-free: woken with exactly
    one pending request and nothing else inbound, the flusher flushes it
    *immediately* (counted as reason ``idle``); with two or more pending it
    waits out the coalescing tick from the *earliest* arrival, letting more
    requests pile on, then flushes them as one batch (reason ``window``).
    Requests arriving while a batch executes accumulate for the next flush,
    so batches form under sustained load without ever parking a lone caller.

    Transport-agnostic: the HTTP server's ``/query`` handlers and the RPC
    server's ``OP_QUERY`` handlers submit into the same instance, so
    cross-transport traffic coalesces into shared batches.
    """

    def __init__(self, executor: QueryExecutor, window_ms: float) -> None:
        self.executor = executor
        self.window = max(0.0, float(window_ms)) / 1000.0
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: List[_PendingQuery] = []
        self._closed = False
        self.flushes = {"idle": 0, "window": 0}
        self.queries = 0
        self.largest_batch = 0
        self._thread = threading.Thread(
            target=self._run, name="query-coalescer", daemon=True
        )
        self._thread.start()

    def submit(
        self,
        path,
        query,
        merge: bool = True,
        deadline: Optional[float] = None,
    ) -> QueryOutcome:
        """Park the query until the next flush; returns its outcome (or
        re-raises its per-item error) once the batch it joined executes."""
        item = _PendingQuery(path, query, merge, deadline)
        with self._wakeup:
            if self._closed:
                raise RuntimeError("the query coalescer is closed")
            self._pending.append(item)
            self._wakeup.notify()
        item.event.wait()
        if item.error is not None:
            raise item.error
        assert item.outcome is not None
        return item.outcome

    def _run(self) -> None:
        while True:
            with self._wakeup:
                while not self._pending and not self._closed:
                    self._wakeup.wait()
                if not self._pending:
                    return  # closed and drained
                if len(self._pending) > 1 and not self._closed:
                    # several waiters: let the tick fill the batch
                    expires = self._pending[0].arrival + self.window
                    while not self._closed:
                        remaining = expires - time.monotonic()
                        if remaining <= 0:
                            break
                        self._wakeup.wait(timeout=remaining)
                batch, self._pending = self._pending, []
            self._flush(batch)

    def _flush(self, batch: List[_PendingQuery]) -> None:
        reason = "idle" if len(batch) == 1 else "window"
        self.flushes[reason] += 1
        self.queries += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))
        _COALESCE_FLUSHES.labels(reason=reason).inc()
        _COALESCED_BATCH.observe(len(batch))
        # executor batches share one merge flag and one deadline; flush
        # each distinct combination as its own sub-batch
        groups: Dict[Tuple[bool, Optional[float]], List[_PendingQuery]] = {}
        for item in batch:
            groups.setdefault((item.merge, item.deadline), []).append(item)
        for (merge, deadline), items in groups.items():
            try:
                outcomes = self.executor.query_batch(
                    [(item.path, item.query) for item in items],
                    merge=merge,
                    deadline=deadline,
                )
            except BaseException as error:  # noqa: BLE001 - waiters must wake
                outcomes = [error] * len(items)
            for item, outcome in zip(items, outcomes):
                if isinstance(outcome, BaseException):
                    item.error = outcome
                else:
                    item.outcome = outcome
                item.event.set()

    def stats(self) -> dict:
        with self._lock:
            pending = len(self._pending)
        return {
            "window_ms": self.window * 1000.0,
            "pending": pending,
            "flushes": dict(self.flushes),
            "queries": self.queries,
            "largest_batch": self.largest_batch,
        }

    def close(self) -> None:
        """Stop the flusher; pending requests are flushed before it exits."""
        with self._wakeup:
            if self._closed:
                return
            self._closed = True
            self._wakeup.notify_all()
        self._thread.join(timeout=5)


class ServiceCore:
    """Everything both transports share: the executor, the optional
    coalescer, and the catalog-level request handlers.

    Parameters
    ----------
    log:
        The :class:`~repro.dslog.DSLog` to serve (any backend).  The core
        only reads; a colocated writer keeps ingesting through the same
        log object and the result cache invalidates per touched shard.
    executor:
        A pre-built :class:`QueryExecutor` to share; by default the core
        owns one (and closes it on :meth:`close`).
    max_workers / cache_entries:
        Forwarded to the owned executor.
    coalesce_ms:
        Opt-in request coalescing: single queries arriving within this
        window are grouped into one executor batch
        (:class:`QueryCoalescer`).  ``None`` reads the
        ``DSLOG_COALESCE_MS`` environment variable; ``0`` (the default
        when the variable is unset) disables coalescing.
    """

    def __init__(
        self,
        log,
        executor: Optional[QueryExecutor] = None,
        max_workers: Optional[int] = None,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        coalesce_ms: Optional[float] = None,
    ) -> None:
        self.log = log
        self._owns_executor = executor is None
        self.executor = executor or QueryExecutor(
            log, max_workers=max_workers, cache_entries=cache_entries
        )
        if coalesce_ms is None:
            raw = os.environ.get("DSLOG_COALESCE_MS", "").strip()
            if raw:
                try:
                    coalesce_ms = float(raw)
                except ValueError:
                    raise ValueError(
                        f"DSLOG_COALESCE_MS must be a number of milliseconds, got {raw!r}"
                    ) from None
        self.coalescer: Optional[QueryCoalescer] = (
            QueryCoalescer(self.executor, coalesce_ms)
            if coalesce_ms is not None and coalesce_ms > 0
            else None
        )
        self._closed = False

    # -- queries --------------------------------------------------------
    def execute_query(self, body: dict) -> Tuple[QueryOutcome, QuerySpec]:
        """Validate and run one query body; the transport encodes the
        outcome (JSON or binary)."""
        spec = parse_query_request(body)
        if self.coalescer is not None:
            outcome = self.coalescer.submit(
                spec.path, spec.query, merge=spec.merge, deadline=spec.deadline
            )
        else:
            outcome = self.executor.query(
                spec.path, spec.query, merge=spec.merge, deadline=spec.deadline
            )
        return outcome, spec

    def execute_query_batch(self, body: dict) -> Tuple[List[Any], List[Any]]:
        """Validate and run a batched query body.

        Returns ``(specs, outcomes)``, one entry per input query and in
        order: ``specs[i]`` is a :class:`QuerySpec` or the ``ValueError``
        that rejected it, ``outcomes[i]`` the :class:`QueryOutcome` or the
        per-item exception.  One malformed or failing entry never fails
        its batch-mates.
        """
        items = body.get("queries")
        if not isinstance(items, list) or not items:
            raise ValueError("'queries' must be a non-empty list of query objects")
        deadline = _parse_deadline(body.get("deadline"))
        specs: List[Any] = []
        for item in items:
            try:
                if not isinstance(item, dict):
                    raise ValueError("each 'queries' entry must be a JSON object")
                specs.append(parse_query_request(item))
            except ValueError as error:
                specs.append(error)
        outcomes: List[Any] = [None] * len(items)
        # one executor batch per merge flavor (batches share a merge flag);
        # almost all real batches are homogeneous, so this is one call
        for merge_value in (True, False):
            idxs = [
                i
                for i, spec in enumerate(specs)
                if not isinstance(spec, BaseException) and spec.merge is merge_value
            ]
            if not idxs:
                continue
            group = self.executor.query_batch(
                [(specs[i].path, specs[i].query) for i in idxs],
                merge=merge_value,
                deadline=deadline,
            )
            for i, outcome in zip(idxs, group):
                outcomes[i] = outcome
        for i, spec in enumerate(specs):
            if isinstance(spec, BaseException):
                outcomes[i] = spec
        return specs, outcomes

    # -- graph ----------------------------------------------------------
    def impact_payload(self, name: str) -> dict:
        return {"array": name, "impact": self.executor.impact(name)}

    def dependencies_payload(self, name: str) -> dict:
        return {"array": name, "dependencies": self.executor.dependencies(name)}

    def summary_payload(self) -> dict:
        # copy before annotating: the summary dict is shared with the cache
        payload = dict(self.executor.lineage_summary())
        payload["edges"] = [list(pair) for pair in self.executor.graph_edges()]
        return payload

    # -- health / admin -------------------------------------------------
    def healthz_payload(self) -> dict:
        log = self.log
        store = getattr(log, "store", None)
        generations = (
            list(store.generation_vector()) if store is not None else [log.catalog.version]
        )
        breakers = self.executor.breaker_stats()
        degraded = any(b["state"] != "closed" for b in breakers.values())
        return {
            "status": "degraded" if degraded else "ok",
            "backend": log.backend,
            "arrays": len(log.catalog.arrays),
            "entries": len(log.catalog),
            "operations": len(log.catalog.operations),
            "generations": generations,
            "breakers": {str(shard): stats for shard, stats in breakers.items()},
            "executor": self.executor.stats(),
            "coalescer": self.coalescer.stats() if self.coalescer is not None else None,
            "storage": storage_stats(store),
            "metrics": REGISTRY.snapshot(),
        }

    def traces_payload(self, limit: Optional[int] = None) -> dict:
        if limit is not None and limit <= 0:
            raise ValueError("the trace limit must be positive")
        return {"traces": tracing.recent_traces(limit)}

    def scrub_payload(self, repair: bool = False) -> dict:
        try:
            report = self.log.scrub(repair=repair)
        except RuntimeError as error:  # e.g. the memory backend has no segments
            raise ValueError(str(error)) from None
        # reports may carry Paths / int shard keys; normalize to pure JSON
        return {"scrub": json.loads(json.dumps(report, default=str))}

    def metrics_text(self) -> str:
        return REGISTRY.render()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release the coalescer and (when owned) the executor.  Safe to
        call once per transport: only the first call acts."""
        if self._closed:
            return
        self._closed = True
        if self.coalescer is not None:
            self.coalescer.close()
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "ServiceCore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def annotate_outcome(payload: dict, outcome: QueryOutcome, elapsed_ms: float) -> dict:
    """Attach the transport-shared outcome flags to a result payload."""
    payload["cached"] = outcome.cached
    payload["degraded"] = outcome.degraded
    payload["elapsed_ms"] = elapsed_ms
    return payload
