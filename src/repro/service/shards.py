"""The sharded multi-writer lineage store (``ShardedLineageStore``).

A sharded catalog directory fans the entry set out over *N* shard
subdirectories, each a complete single-writer store of its own —
append-only segment files plus an atomic per-shard ``MANIFEST.json``
(:mod:`repro.storage.store`) — indexed by one root ``SHARDS.json``:

    root/
      SHARDS.json            # shard count + on-disk format (immutable)
      shard-00/              # the *meta shard*: entries hashed here, plus
        MANIFEST.json        # arrays, operation records and reuse state
        segment-000001.seg
      shard-01/
        MANIFEST.json        # entries hashed to shard 1, nothing else
        segment-000001.seg
      ...

An entry's home shard is the stable hash of its ``(input, output)`` pair,
so two writers touching different pairs usually append to different
segment files and publish different manifests — the write path is
partitioned, not merely locked.  ``compact()`` and the LRU table-cache
byte budget are per shard: one shard can be compacted (or evicted) while
the others keep serving.

Global catalog metadata — tracked arrays, operation records, the reuse
predictor's state — is not per-pair and lives in the manifest of shard 0,
the *meta shard*.  Reuse-state tables are always appended to the meta
shard (even when an identical table already sits in another shard's
segments) so every ref inside a shard's manifest is shard-local and
per-shard compaction never has to rewrite another shard's files.

Concurrency model
-----------------
* ``meta_lock`` — guards the in-memory catalog dicts and every manifest
  row list.  Held briefly: never across table serialization, segment
  appends, fsyncs or manifest file writes.
* one append lock per shard — serializes segment appends and manifest
  publishes of that shard.  Writers to different shards do not contend.
* Lock order is ``reuse-manager lock → shard lock → meta_lock``; no code
  path acquires them in the opposite direction.

:class:`ShardedCatalog` maintains each shard's manifest rows *incrementally*
at apply time (one row dict appended or updated per ingested entry), so a
manifest publish is serialize + fsync + rename — O(shard), with none of the
full-catalog row rebuilding the single-store backend does on every sync.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from ..core.compressed import CompressedLineage
from ..core.serialize import serialize_table
from ..faults import FaultPlan
from ..obs import REGISTRY, log_event
from ..storage.catalog import Catalog, LineageConflictError, LineageEntry, OperationRecord
from ..storage.store import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_SEGMENT_MAX_BYTES,
    LineageStore,
    StoredLineageEntry,
    TableRef,
)

__all__ = [
    "SHARDS_NAME",
    "SHARDS_FORMAT",
    "DEFAULT_NUM_SHARDS",
    "shard_index",
    "ShardedLineageStore",
    "ShardedCatalog",
]

SHARDS_NAME = "SHARDS.json"
SHARDS_FORMAT = "dslog-sharded-store"
SHARDS_FORMAT_VERSION = 1

_SHARD_REOPENS = REGISTRY.counter(
    "dslog_shard_reopens_total",
    "Shard recovery probes (reset + scrub-and-repair) by outcome",
    labelnames=("outcome",),
)
DEFAULT_NUM_SHARDS = 4
META_SHARD = 0


def shard_index(in_name: str, out_name: str, num_shards: int) -> int:
    """Stable home shard of an entry pair — crc32 of the two names.

    Deterministic across processes and sessions (unlike ``hash()``, which
    is salted per interpreter), so a reopened catalog routes every pair to
    the shard that already holds it.
    """
    key = f"{in_name}\x00{out_name}".encode("utf-8")
    return zlib.crc32(key) % num_shards


def load_shards_file(root: Union[str, Path]) -> Optional[dict]:
    """Read ``SHARDS.json``, or ``None`` when the directory is not sharded."""
    path = Path(root) / SHARDS_NAME
    if not path.exists():
        return None
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("format") != SHARDS_FORMAT:
        raise ValueError(f"not a {SHARDS_FORMAT} directory")
    if int(data.get("format_version", 0)) > SHARDS_FORMAT_VERSION:
        raise ValueError(
            f"shards format version {data['format_version']} is newer "
            f"than this build supports ({SHARDS_FORMAT_VERSION})"
        )
    return data


class ShardedLineageStore:
    """N single-writer :class:`LineageStore` shards behind one root."""

    def __init__(
        self,
        root: Union[str, Path],
        num_shards: int = DEFAULT_NUM_SHARDS,
        gzip: bool = True,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.faults = faults
        existing = load_shards_file(self.root)
        if existing is not None:
            # the on-disk layout is authoritative, like the manifest's gzip
            self.num_shards = int(existing["num_shards"])
            self.gzip = bool(existing["gzip"])
        else:
            if num_shards < 1:
                raise ValueError("a sharded store needs at least one shard")
            self.num_shards = int(num_shards)
            self.gzip = gzip
            self._write_shards_file()
        per_shard_budget = max(1, int(cache_bytes) // self.num_shards)
        self.shards: List[LineageStore] = [
            LineageStore(
                self.root / f"shard-{idx:02d}",
                gzip=self.gzip,
                cache_bytes=per_shard_budget,
                segment_max_bytes=segment_max_bytes,
                faults=faults,
                scope=f"shard-{idx:02d}",
            )
            for idx in range(self.num_shards)
        ]
        self.meta_lock = threading.RLock()
        self._shard_locks = [threading.RLock() for _ in range(self.num_shards)]
        self._dirty: Set[int] = set()
        # serializes whole-store maintenance — manifest publishes, reuse
        # export, compaction — against each other (writers never take it);
        # lock order: maintenance → reuse-manager → shard → meta
        self.maintenance_lock = threading.RLock()

    def _write_shards_file(self) -> None:
        """Create ``SHARDS.json`` atomically (written once, never updated)."""
        path = self.root / SHARDS_NAME
        tmp = path.with_suffix(".json.tmp")
        data = json.dumps(
            {
                "format": SHARDS_FORMAT,
                "format_version": SHARDS_FORMAT_VERSION,
                "num_shards": self.num_shards,
                "gzip": self.gzip,
            },
            separators=(",", ":"),
        )
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_for(self, in_name: str, out_name: str) -> int:
        return shard_index(in_name, out_name, self.num_shards)

    def shard(self, idx: int) -> LineageStore:
        return self.shards[idx]

    @property
    def meta(self) -> LineageStore:
        """The meta shard: arrays, operation records and reuse state."""
        return self.shards[META_SHARD]

    @contextmanager
    def shard_lock(self, idx: int) -> Iterator[None]:
        with self._shard_locks[idx]:
            yield

    # ------------------------------------------------------------------
    # dirty tracking + group publish
    # ------------------------------------------------------------------
    def mark_dirty(self, idx: int) -> None:
        """Record that shard *idx* has unpublished appends or rows.  The
        caller must hold ``meta_lock`` (every mutation path already does)."""
        self._dirty.add(idx)

    def sync_dirty(self) -> Dict[int, int]:
        """Publish every dirty shard's manifest; the group-commit step.

        Returns ``{shard: new generation}``.  Each shard is synced under
        its own append lock (no record may land between the segment fsync
        and the manifest serialization), with ``meta_lock`` held only for
        the in-memory JSON dump.
        """
        with self.maintenance_lock:
            with self.meta_lock:
                dirty = sorted(self._dirty)
                self._dirty.clear()
            published: Dict[int, int] = {}
            for idx in dirty:
                with self._shard_locks[idx]:
                    try:
                        published[idx] = self.shards[idx].sync(serialize_lock=self.meta_lock)
                    except BaseException:
                        # the dirty mark must survive a failed publish, or
                        # this shard (and any not yet reached) would never
                        # republish after a transient fsync/write fault
                        with self.meta_lock:
                            self._dirty.update(d for d in dirty if d not in published)
                        raise
            return published

    def sync_all(self) -> Dict[int, int]:
        """Publish every shard regardless of dirtiness (close/checkpoint)."""
        with self.maintenance_lock:
            with self.meta_lock:
                self._dirty.clear()
            published = {}
            for idx in range(self.num_shards):
                with self._shard_locks[idx]:
                    published[idx] = self.shards[idx].sync(serialize_lock=self.meta_lock)
            return published

    def generation_vector(self) -> Tuple[int, ...]:
        """The published manifest generation of every shard, in shard order.
        Snapshot readers pin this vector; two equal vectors denote the same
        durable catalog state."""
        return tuple(shard.manifest.generation for shard in self.shards)

    # ------------------------------------------------------------------
    # snapshot pins
    # ------------------------------------------------------------------
    def pin(self) -> None:
        for shard in self.shards:
            shard.pin()

    def release_pin(self) -> None:
        for shard in self.shards:
            shard.release_pin()

    # ------------------------------------------------------------------
    # meta-shard delegation (reuse-state tables)
    # ------------------------------------------------------------------
    def append_table(self, table: CompressedLineage) -> TableRef:
        """Append a reuse-state table to the meta shard.  Always meta-local
        (even when the table's bytes exist in another shard) so no manifest
        ever holds a cross-shard ref."""
        payload = serialize_table(table, gzip=self.gzip)
        with self._shard_locks[META_SHARD]:
            return self.meta.append_payload(payload, table=table)

    def ref_for(self, table: CompressedLineage) -> Optional[TableRef]:
        return self.meta.ref_for(table)

    def load_table(self, ref: TableRef) -> CompressedLineage:
        return self.meta.load_table(ref)

    # ------------------------------------------------------------------
    # accounting + maintenance
    # ------------------------------------------------------------------
    @property
    def tables_deserialized(self) -> int:
        return sum(shard.tables_deserialized for shard in self.shards)

    def segment_bytes(self) -> int:
        return sum(shard.segment_bytes() for shard in self.shards)

    def live_bytes(self) -> int:
        return sum(shard.live_bytes() for shard in self.shards)

    def cache_stats(self) -> List[dict]:
        return [shard.cache.stats() for shard in self.shards]

    def write_stats(self) -> dict:
        """Aggregate group-commit write coalescing over every shard: how
        many OS writes carried how many appended records."""
        totals = {"coalesced_writes": 0, "coalesced_records": 0}
        for shard in self.shards:
            stats = shard.write_stats()
            totals["coalesced_writes"] += stats["coalesced_writes"]
            totals["coalesced_records"] += stats["coalesced_records"]
        return totals

    def torn_epoch(self) -> int:
        """Monotonic count of torn (short) writes across every shard; see
        :meth:`LineageStore.torn_epoch`."""
        return sum(shard.torn_epoch() for shard in self.shards)

    def reader_stats(self) -> dict:
        """Aggregate mmap reader-handle stats over every shard."""
        totals = {"open_readers": 0, "mapped_bytes": 0}
        for shard in self.shards:
            stats = shard.reader_stats()
            totals["open_readers"] += stats["open_readers"]
            totals["mapped_bytes"] += stats["mapped_bytes"]
        return totals

    def compact(self, shard: Optional[int] = None) -> Dict[int, dict]:
        """Compact one shard (or all), each under its own append lock, so
        ingest into *other* shards proceeds while dead bytes are reclaimed.
        The maintenance lock keeps compaction and manifest publishes from
        interleaving (a publish mid-copy could reference moved records)."""
        indices = range(self.num_shards) if shard is None else [shard]
        stats: Dict[int, dict] = {}
        with self.maintenance_lock:
            for idx in indices:
                with self._shard_locks[idx]:
                    stats[idx] = self.shards[idx].compact(serialize_lock=self.meta_lock)
        return stats

    def scrub(self, repair: bool = False, shard: Optional[int] = None) -> dict:
        """fsck every shard (or one): verify manifest-referenced records,
        find torn tails and orphans, and — with ``repair=True`` —
        quarantine and heal (see :mod:`repro.storage.scrub`).  Each shard
        is scrubbed under its own append lock; the maintenance lock keeps
        compaction and manifest publishes out of the way."""
        from ..storage.scrub import scrub_store

        indices = range(self.num_shards) if shard is None else [shard]
        reports: Dict[int, dict] = {}
        with self.maintenance_lock:
            for idx in indices:
                with self._shard_locks[idx]:
                    reports[idx] = scrub_store(
                        self.shards[idx], repair=repair, serialize_lock=self.meta_lock
                    )
        return {
            "clean": all(rep["clean"] for rep in reports.values()),
            "shards": reports,
        }

    def reopen_shard(self, idx: int) -> dict:
        """Recovery probe for one shard: drop its file handles and cached
        tables (as a restart would), then scrub-and-repair its directory.
        The shard's :class:`LineageStore` object survives — lazy entries
        hold references to it — with relocated records resolving through
        the remap chain.  Returns the scrub report; raises when the
        shard's I/O is still failing (the circuit breaker's cue to stay
        open)."""
        from ..storage.scrub import scrub_store

        with self.maintenance_lock:
            with self._shard_locks[idx]:
                shard = self.shards[idx]
                shard.reset_io()
                try:
                    report = scrub_store(
                        shard, repair=True, serialize_lock=self.meta_lock
                    )
                    # prove the shard serves reads again before declaring it
                    # healthy: hydrate one referenced record end to end
                    for row in shard.manifest.entries:
                        shard.load_table(
                            shard.resolve(TableRef.from_json(row["backward"]))
                        )
                        break
                except Exception as exc:
                    _SHARD_REOPENS.labels(outcome="failed").inc()
                    log_event(
                        "shard_reopen",
                        level="error",
                        component="shards",
                        shard=idx,
                        outcome="failed",
                        error=str(exc),
                    )
                    raise
                _SHARD_REOPENS.labels(outcome="ok").inc()
                log_event(
                    "shard_reopen",
                    level="info",
                    component="shards",
                    shard=idx,
                    outcome="ok",
                    clean=report["clean"],
                    repaired=report["repaired"],
                )
                return report

    def close(self) -> None:
        for idx, shard in enumerate(self.shards):
            with self._shard_locks[idx]:
                shard.close()


class ShardedCatalog(Catalog):
    """A thread-safe :class:`Catalog` partitioned over a sharded store.

    Every mutation keeps the owning shard's manifest rows in step (the row
    dicts appended here are the very objects the manifest serializes), so
    publishing a shard never rebuilds anything.  Reads — ``array``,
    ``entry_between``, ``entries`` — stay lock-free: the dicts only ever
    grow or replace whole values, which is safe under concurrent readers.
    """

    def __init__(self, store: ShardedLineageStore) -> None:
        super().__init__()
        self.store = store
        self._meta_lock = store.meta_lock
        # pair -> manifest row dict (updated in place on replace)
        self._rows: Dict[Tuple[str, str], dict] = {}
        # pairs mid-append: reserved so two writers cannot both pass the
        # conflict check, append, and silently overwrite each other
        self._pending: Set[Tuple[str, str]] = set()
        # per-shard applied-mutation counters: bumped the moment a mutation
        # lands in memory (not when it is published), one counter per home
        # shard — the serving tier's result cache keys on this vector so a
        # writer invalidates exactly the shards it touched, and an applied-
        # but-uncommitted entry is already visible as a version bump
        self._shard_versions: List[int] = [0] * store.num_shards

    def shard_version_vector(self) -> Tuple[int, ...]:
        """The applied-mutation counter of every shard, in shard order."""
        with self._meta_lock:
            return tuple(self._shard_versions)

    # ------------------------------------------------------------------
    # arrays + operations (meta shard)
    # ------------------------------------------------------------------
    def define_array(self, name, shape):
        with self._meta_lock:
            info = super().define_array(name, shape)
            manifest = self.store.meta.manifest
            if manifest.arrays.get(name) != list(info.shape):
                manifest.arrays[name] = list(info.shape)
                self._shard_versions[META_SHARD] += 1
                self.store.mark_dirty(META_SHARD)
            return info

    def add_operation(self, record: OperationRecord) -> None:
        with self._meta_lock:
            super().add_operation(record)
            self._shard_versions[META_SHARD] += 1
            self.store.meta.manifest.operations.append(
                {
                    "op_name": record.op_name,
                    "in_arrs": list(record.in_arrs),
                    "out_arrs": list(record.out_arrs),
                    "op_args": record.op_args,
                    "reuse_level": record.reuse_level,
                    "entries": [list(pair) for pair in record.entries],
                }
            )
            self.store.mark_dirty(META_SHARD)

    # ------------------------------------------------------------------
    # entries
    # ------------------------------------------------------------------
    def add_compressed(
        self,
        backward: CompressedLineage,
        forward: CompressedLineage,
        op_name: Optional[str] = None,
        reused: bool = False,
        replace: bool = False,
    ) -> LineageEntry:
        if backward.key_side != "output" or forward.key_side != "input":
            raise ValueError("backward/forward tables have the wrong orientation")
        pair = (backward.in_name, backward.out_name)
        shard_idx = self.store.shard_for(*pair)
        # serialize (and gzip) outside every lock: this is the CPU-heavy
        # part of an append and must overlap across writer threads
        payload_b = serialize_table(backward, gzip=self.store.gzip)
        payload_f = serialize_table(forward, gzip=self.store.gzip)

        with self._meta_lock:
            existing = self._entries.get(pair)
            if (existing is not None or pair in self._pending) and not replace:
                held_by = existing.op_name if existing is not None else "an in-flight ingest"
                raise LineageConflictError(
                    f"lineage between {pair[0]!r} and {pair[1]!r} already stored "
                    f"(op {held_by!r}); pass replace=True to version it"
                )
            self._pending.add(pair)
        try:
            shard = self.store.shard(shard_idx)
            # the shard lock is held across append AND install: were it
            # released in between, a compaction of this shard could slip
            # into the gap and delete the just-written segment before the
            # catalog row referencing it exists
            with self.store.shard_lock(shard_idx):
                backward_ref = shard.append_payload(payload_b, table=backward)
                forward_ref = shard.append_payload(payload_f, table=forward)
                with self._meta_lock:
                    # the reservation is released only together with the
                    # install, so no second writer can slip between the two
                    self._pending.discard(pair)
                    existing = self._entries.get(pair)
                    entry = StoredLineageEntry(
                        shard,
                        in_name=pair[0],
                        out_name=pair[1],
                        backward_ref=backward_ref,
                        forward_ref=forward_ref,
                        op_name=op_name,
                        reused=reused,
                        version=existing.version + 1 if existing is not None else 1,
                    )
                    self._entries[pair] = entry
                    row = {
                        "in": entry.in_name,
                        "out": entry.out_name,
                        "op_name": entry.op_name,
                        "reused": entry.reused,
                        "version": entry.version,
                        "backward": backward_ref.to_json(),
                        "forward": forward_ref.to_json(),
                    }
                    old_row = self._rows.get(pair)
                    if old_row is not None:
                        # same dict object the shard manifest's entry list holds
                        old_row.clear()
                        old_row.update(row)
                    else:
                        shard.manifest.entries.append(row)
                        self._rows[pair] = row
                    self.version += 1
                    self._shard_versions[shard_idx] += 1
                    self.store.mark_dirty(shard_idx)
        except BaseException:
            # on append failure the reservation must not wedge the pair
            with self._meta_lock:
                self._pending.discard(pair)
            raise
        return entry

    def install_lazy_entry(self, entry: StoredLineageEntry, row: dict) -> None:
        """Register a manifest-hydrated entry without touching its tables.
        *row* must be the manifest's own row dict so replaces update it."""
        pair = (entry.in_name, entry.out_name)
        with self._meta_lock:
            self._entries[pair] = entry
            self._rows[pair] = row
            self.version += 1
            self._shard_versions[self.store.shard_for(*pair)] += 1

    def entry_shard(self, pair: Tuple[str, str]) -> int:
        return self.store.shard_for(*pair)

    def materialize_all(self) -> int:
        """Force-load every entry's tables; returns tables materialized."""
        count = 0
        for entry in self.entries():
            entry.backward
            entry.forward
            count += 2
        return count
