"""Client-side retry machinery shared by the HTTP and RPC transports.

Both lineage clients make **read-only (idempotent) requests**, so any
transport failure — a reset keep-alive connection, a server restart, a
short read mid-frame — is safe to retry.  The policy here is the one that
landed with the fault-injection PR: exponential backoff with *decorrelated
jitter* (each delay scaled by a random factor in ``[1, 1 + jitter]`` so a
fleet of clients bounced off the same restart does not retry in lockstep),
bounded by both an attempt count and a total *retry budget* of sleep
seconds — whichever runs out first ends the loop.

One :class:`RetryPolicy` lives on the client; each request draws a fresh
:class:`RetrySchedule` from it and calls :meth:`RetrySchedule.sleep`
between attempts until it returns ``False``.
"""

from __future__ import annotations

import random
import time
from typing import Optional

__all__ = ["RetryPolicy", "RetrySchedule"]


class RetryPolicy:
    """How a client retries idempotent requests after transport failures.

    Parameters
    ----------
    retries:
        Attempts beyond the first (``retries=3`` means up to 4 sends).
    backoff:
        Base delay in seconds; attempt *n* waits ``backoff * 2**(n-1)``
        before jitter.
    jitter:
        Upper bound of the random scale factor: each delay is multiplied
        by a uniform draw from ``[1, 1 + jitter]``.
    retry_budget:
        Total seconds the schedule may spend sleeping across all retries
        of one request; ``None`` means unbounded.
    """

    __slots__ = ("retries", "backoff", "jitter", "retry_budget")

    def __init__(
        self,
        retries: int = 3,
        backoff: float = 0.05,
        jitter: float = 0.5,
        retry_budget: Optional[float] = 10.0,
    ) -> None:
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.jitter = max(0.0, float(jitter))
        self.retry_budget = None if retry_budget is None else float(retry_budget)

    def schedule(self) -> "RetrySchedule":
        """A fresh per-request schedule."""
        return RetrySchedule(self)


class RetrySchedule:
    """The mutable state of one request's retry loop."""

    __slots__ = ("policy", "attempts", "slept", "budget_exhausted")

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self.attempts = 1  # the initial send
        self.slept = 0.0
        self.budget_exhausted = False

    def sleep(self) -> bool:
        """Back off before the next attempt.

        Returns ``True`` after sleeping the (jittered, budget-clamped)
        delay, or ``False`` — without sleeping — when the attempt count or
        the retry budget is exhausted and the caller should give up.
        """
        policy = self.policy
        if self.attempts > policy.retries:
            return False
        budget = policy.retry_budget
        if budget is not None and self.slept >= budget:
            self.budget_exhausted = True
            return False
        delay = policy.backoff * (2 ** (self.attempts - 1))
        delay *= 1.0 + policy.jitter * random.random()
        if budget is not None:
            delay = min(delay, budget - self.slept)
        self.attempts += 1
        self.slept += delay
        time.sleep(delay)
        return True

    def describe(self) -> str:
        """``"N attempts"`` plus the budget note when that is what ended
        the loop — for the client's terminal error message."""
        if self.budget_exhausted:
            return (
                f"{self.attempts} attempts "
                f"(retry budget of {self.policy.retry_budget}s exhausted)"
            )
        return f"{self.attempts} attempts"
