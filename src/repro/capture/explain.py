"""Explainable-AI lineage capture (LIME- and D-RISE-style attribution).

The paper captures lineage between an input image and a detector output by
running a model-explanation algorithm (LIME or D-RISE over YOLOv4 on a
VIRAT surveillance frame) and thresholding the resulting contribution
weights into a bipartite lineage relation.

The proprietary model and dataset are not available offline, so this module
substitutes a small synthetic numpy detector (local average pooling over a
region of interest followed by a score head) and a synthetic frame.  The
*capture mechanism* is the faithful part: both algorithms perturb the input
with random masks, fit contribution weights from the observed score
changes, and keep only contributions above a significance threshold — which
yields the same kind of partially structured lineage (contiguous patches /
scattered pixels) whose compression the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.relation import LineageRelation

__all__ = ["SyntheticDetector", "lime_capture", "drise_capture", "synthetic_frame"]


def synthetic_frame(height: int = 64, width: int = 64, seed: int = 0) -> np.ndarray:
    """A synthetic grayscale surveillance frame with a bright 'object' blob."""
    rng = np.random.default_rng(seed)
    frame = rng.uniform(0.0, 0.3, size=(height, width))
    oh, ow = height // 4, width // 4
    top, left = height // 3, width // 3
    frame[top : top + oh, left : left + ow] += 0.7
    return np.clip(frame, 0.0, 1.0)


@dataclass
class SyntheticDetector:
    """A tiny stand-in for an object detector.

    The "detection" output is a 1-D vector ``(score, cy, cx, h, w)`` whose
    score is the mean intensity inside a fixed region of interest.  Only the
    input pixels inside that region influence the output, which gives the
    explanation algorithms a ground-truth structure to recover.
    """

    roi: Tuple[int, int, int, int]  # top, left, height, width

    def __call__(self, image: np.ndarray) -> np.ndarray:
        top, left, height, width = self.roi
        patch = image[top : top + height, left : left + width]
        score = float(patch.mean())
        return np.array([score, top + height / 2, left + width / 2, height, width], dtype=np.float64)

    @classmethod
    def around_blob(cls, frame: np.ndarray) -> "SyntheticDetector":
        """Place the region of interest over the brightest area of the frame."""
        h, w = frame.shape
        idx = np.argmax(frame)
        cy, cx = np.unravel_index(idx, frame.shape)
        size_y, size_x = max(h // 4, 4), max(w // 4, 4)
        top = int(np.clip(cy - size_y // 2, 0, h - size_y))
        left = int(np.clip(cx - size_x // 2, 0, w - size_x))
        return cls(roi=(top, left, size_y, size_x))


def _bipartite_relation(
    pixel_mask: np.ndarray, out_dim: int, image_shape: Tuple[int, int]
) -> LineageRelation:
    """Lineage between every significant pixel and every output cell."""
    ys, xs = np.nonzero(pixel_mask)
    n = ys.size
    out_idx = np.repeat(np.arange(out_dim), n)
    in_y = np.tile(ys, out_dim)
    in_x = np.tile(xs, out_dim)
    rows = np.stack([out_idx, in_y, in_x], axis=1)
    return LineageRelation((out_dim,), image_shape, rows)


def lime_capture(
    image: np.ndarray,
    model,
    patch: int = 8,
    samples: int = 200,
    threshold: float = 0.05,
    seed: int = 0,
) -> LineageRelation:
    """LIME-style capture: superpixel perturbation + linear surrogate weights.

    The image is divided into a grid of ``patch x patch`` superpixels; random
    binary superpixel masks are sampled, the model score is recorded for each
    masked image, and a least-squares linear surrogate assigns a weight to
    every superpixel.  Superpixels whose |weight| exceeds *threshold* times
    the maximum weight contribute lineage from all their pixels to every
    output cell.
    """
    rng = np.random.default_rng(seed)
    image = np.asarray(image, dtype=np.float64)
    height, width = image.shape
    grid_h = (height + patch - 1) // patch
    grid_w = (width + patch - 1) // patch
    n_patches = grid_h * grid_w

    masks = rng.integers(0, 2, size=(samples, n_patches)).astype(np.float64)
    scores = np.empty(samples)
    for s in range(samples):
        mask_img = np.ones_like(image)
        for p in np.flatnonzero(masks[s] == 0):
            py, px = divmod(int(p), grid_w)
            mask_img[py * patch : (py + 1) * patch, px * patch : (px + 1) * patch] = 0.0
        scores[s] = model(image * mask_img)[0]

    design = np.concatenate([masks, np.ones((samples, 1))], axis=1)
    weights, *_ = np.linalg.lstsq(design, scores, rcond=None)
    weights = weights[:-1]
    cutoff = threshold * max(np.abs(weights).max(), 1e-12)

    pixel_mask = np.zeros(image.shape, dtype=bool)
    for p in np.flatnonzero(np.abs(weights) >= cutoff):
        py, px = divmod(int(p), grid_w)
        pixel_mask[py * patch : (py + 1) * patch, px * patch : (px + 1) * patch] = True

    out_dim = int(np.asarray(model(image)).reshape(-1).size)
    return _bipartite_relation(pixel_mask, out_dim, image.shape)


def drise_capture(
    image: np.ndarray,
    model,
    samples: int = 150,
    keep_probability: float = 0.5,
    cell: int = 8,
    threshold: float = 0.6,
    seed: int = 0,
) -> LineageRelation:
    """D-RISE-style capture: random smooth masks weighted by detection score.

    Low-resolution random binary masks are upsampled to the image size, the
    detector score is recorded for each masked image, and a per-pixel
    saliency map is accumulated as the score-weighted average of the masks.
    Pixels whose saliency exceeds *threshold* times the maximum contribute
    lineage to every output cell.
    """
    rng = np.random.default_rng(seed)
    image = np.asarray(image, dtype=np.float64)
    height, width = image.shape
    grid_h = (height + cell - 1) // cell
    grid_w = (width + cell - 1) // cell

    saliency = np.zeros_like(image)
    total = 0.0
    for _ in range(samples):
        coarse = (rng.uniform(size=(grid_h, grid_w)) < keep_probability).astype(np.float64)
        mask = np.kron(coarse, np.ones((cell, cell)))[:height, :width]
        score = model(image * mask)[0]
        saliency += score * mask
        total += score
    if total > 0:
        saliency /= total

    pixel_mask = saliency >= threshold * max(saliency.max(), 1e-12)
    out_dim = int(np.asarray(model(image)).reshape(-1).size)
    return _bipartite_relation(pixel_mask, out_dim, image.shape)
