"""Prototype lineage capture methods (Section VII.A of the paper).

* :mod:`repro.capture.tracked` — cell-level numpy tracking (``tracked_cell``).
* :mod:`repro.capture.analytic` — vectorized analytic lineage builders.
* :mod:`repro.capture.numpy_catalog` — the 136-operation numpy catalog.
* :mod:`repro.capture.explain` — LIME / D-RISE style explainable-AI capture.
* :mod:`repro.capture.relational` — group-by and inner-join capture.
"""

from .analytic import (
    axis_reduction_lineage,
    cumulative_lineage,
    elementwise_lineage,
    full_reduction_lineage,
    matmat_lineage,
    matvec_lineage,
    outer_lineage,
    repetition_lineage,
    row_pattern_lineage,
    selection_lineage,
    window_lineage,
)
from .explain import SyntheticDetector, drise_capture, lime_capture, synthetic_frame
from .numpy_catalog import CatalogOp, build_catalog, complex_ops, element_ops, pipeline_ops
from .relational import filter_rows_capture, group_by_capture, inner_join_capture
from .tracked import TrackedArray, track_operation

__all__ = [
    "TrackedArray",
    "track_operation",
    "elementwise_lineage",
    "full_reduction_lineage",
    "axis_reduction_lineage",
    "cumulative_lineage",
    "selection_lineage",
    "window_lineage",
    "matvec_lineage",
    "matmat_lineage",
    "outer_lineage",
    "repetition_lineage",
    "row_pattern_lineage",
    "CatalogOp",
    "build_catalog",
    "element_ops",
    "complex_ops",
    "pipeline_ops",
    "SyntheticDetector",
    "lime_capture",
    "drise_capture",
    "synthetic_frame",
    "inner_join_capture",
    "group_by_capture",
    "filter_rows_capture",
]
