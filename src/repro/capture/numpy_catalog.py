"""The numpy operation catalog used by the coverage and pipeline experiments.

The paper evaluates DSLog over 136 numpy API operations (75 element-wise,
61 with more complex lineage patterns) that can consume and produce
``float64`` arrays with scalar-only extra arguments, and draws the random
workflow operations of Figure 9 from a 76-operation subset that maps a
single 1-D ``float64`` array to another.

Each :class:`CatalogOp` bundles:

* ``apply`` — run the operation on an input array (always returns a
  ``float64`` ndarray, never a scalar);
* ``lineage`` — build the operation's cell-level lineage analytically
  (value-dependent for ``sort``-like operations), using the builders in
  :mod:`repro.capture.analytic`.

The exact operation list does not need to match the paper item-for-item;
what matters for Table IX is the split into element-wise vs complex
patterns and the behaviours (compressible / shape-reusable /
shape-dependent like ``cross``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from ..core.relation import LineageRelation
from .analytic import (
    axis_reduction_lineage,
    cumulative_lineage,
    elementwise_lineage,
    full_reduction_lineage,
    matmat_lineage,
    outer_lineage,
    selection_lineage,
    window_lineage,
)

__all__ = ["CatalogOp", "build_catalog", "element_ops", "complex_ops", "pipeline_ops"]


@dataclass(frozen=True)
class CatalogOp:
    """One numpy API operation tracked by the coverage experiment."""

    name: str
    category: str  # "element" or "complex"
    apply: Callable[[np.ndarray], np.ndarray]
    lineage: Callable[[np.ndarray], LineageRelation]
    pipeline_ok: bool = False  # usable in the random 1-D workflow experiments
    needs_2d: bool = False
    value_dependent: bool = False

    def run(self, data: np.ndarray) -> np.ndarray:
        """Apply the operation, always returning a float64 ndarray."""
        with np.errstate(all="ignore"):
            result = self.apply(np.asarray(data, dtype=np.float64))
        result = np.asarray(result, dtype=np.float64)
        if result.ndim == 0:
            result = result.reshape(1)
        return result


# ----------------------------------------------------------------------
# element-wise operations (75)
# ----------------------------------------------------------------------
_ELEMENTWISE_FUNCS: List[Tuple[str, Callable[[np.ndarray], np.ndarray]]] = [
    ("negative", np.negative),
    ("positive", np.positive),
    ("absolute", np.absolute),
    ("fabs", np.fabs),
    ("sign", np.sign),
    ("rint", np.rint),
    ("floor", np.floor),
    ("ceil", np.ceil),
    ("trunc", np.trunc),
    ("fix", np.fix),
    ("sqrt", np.sqrt),
    ("cbrt", np.cbrt),
    ("square", np.square),
    ("reciprocal", np.reciprocal),
    ("exp", np.exp),
    ("exp2", np.exp2),
    ("expm1", np.expm1),
    ("log", np.log),
    ("log2", np.log2),
    ("log10", np.log10),
    ("log1p", np.log1p),
    ("sin", np.sin),
    ("cos", np.cos),
    ("tan", np.tan),
    ("arcsin", np.arcsin),
    ("arccos", np.arccos),
    ("arctan", np.arctan),
    ("sinh", np.sinh),
    ("cosh", np.cosh),
    ("tanh", np.tanh),
    ("arcsinh", np.arcsinh),
    ("arccosh", np.arccosh),
    ("arctanh", np.arctanh),
    ("degrees", np.degrees),
    ("radians", np.radians),
    ("deg2rad", np.deg2rad),
    ("rad2deg", np.rad2deg),
    ("sinc", np.sinc),
    ("i0", np.i0),
    ("nan_to_num", np.nan_to_num),
    ("around", np.around),
    ("round", np.round),
    ("conjugate", np.conjugate),
    ("real", np.real),
    ("angle", np.angle),
    ("spacing", np.spacing),
    ("signbit", lambda x: np.signbit(x).astype(np.float64)),
    ("isnan", lambda x: np.isnan(x).astype(np.float64)),
    ("isfinite", lambda x: np.isfinite(x).astype(np.float64)),
    ("isinf", lambda x: np.isinf(x).astype(np.float64)),
    ("logical_not", lambda x: np.logical_not(x).astype(np.float64)),
    ("add_scalar", lambda x: np.add(x, 2.5)),
    ("subtract_scalar", lambda x: np.subtract(x, 1.5)),
    ("multiply_scalar", lambda x: np.multiply(x, 3.0)),
    ("true_divide_scalar", lambda x: np.true_divide(x, 2.0)),
    ("floor_divide_scalar", lambda x: np.floor_divide(x, 2.0)),
    ("mod_scalar", lambda x: np.mod(x, 3.0)),
    ("fmod_scalar", lambda x: np.fmod(x, 3.0)),
    ("remainder_scalar", lambda x: np.remainder(x, 4.0)),
    ("power_scalar", lambda x: np.power(np.abs(x), 2.0)),
    ("float_power_scalar", lambda x: np.float_power(np.abs(x), 1.5)),
    ("maximum_scalar", lambda x: np.maximum(x, 0.0)),
    ("minimum_scalar", lambda x: np.minimum(x, 0.0)),
    ("fmax_scalar", lambda x: np.fmax(x, 0.5)),
    ("fmin_scalar", lambda x: np.fmin(x, 0.5)),
    ("hypot_scalar", lambda x: np.hypot(x, 1.0)),
    ("arctan2_scalar", lambda x: np.arctan2(x, 1.0)),
    ("copysign_scalar", lambda x: np.copysign(x, -1.0)),
    ("nextafter_scalar", lambda x: np.nextafter(x, 0.0)),
    ("logaddexp_scalar", lambda x: np.logaddexp(x, 0.0)),
    ("logaddexp2_scalar", lambda x: np.logaddexp2(x, 0.0)),
    ("heaviside_scalar", lambda x: np.heaviside(x, 0.5)),
    ("ldexp_scalar", lambda x: np.ldexp(x, 2)),
    ("clip", lambda x: np.clip(x, -1.0, 1.0)),
    ("modf_frac", lambda x: np.modf(x)[0]),
]


def _element_op(name: str, func: Callable) -> CatalogOp:
    return CatalogOp(
        name=name,
        category="element",
        apply=func,
        lineage=lambda x: elementwise_lineage(np.asarray(x).shape),
        pipeline_ok=True,
    )


# ----------------------------------------------------------------------
# complex-pattern operations (61)
# ----------------------------------------------------------------------
def _flat(x: np.ndarray) -> np.ndarray:
    return np.arange(np.asarray(x).size).reshape(np.asarray(x).shape)


def _diff_lineage(x: np.ndarray) -> LineageRelation:
    n = np.asarray(x).reshape(-1).size
    out = np.repeat(np.arange(n - 1), 2)[:, None]
    inp = (np.repeat(np.arange(n - 1), 2) + np.tile([0, 1], n - 1))[:, None]
    from .analytic import _relation  # local import to reuse the private helper

    return _relation(out, inp, (n - 1,), (n,))


def _cross_lineage(x: np.ndarray) -> LineageRelation:
    """Lineage of ``np.cross(x, c)`` w.r.t. ``x`` for a 2-D ``(n, d)`` input.

    For ``d == 3`` output cell ``(i, j)`` depends on the two *other*
    components of row ``i``; for ``d == 2`` the output is 1-D and each cell
    depends on both components of its row.  The pattern changes with the
    second dimension, which is exactly what defeats shape-generalized reuse
    in the paper (the one reported misprediction).
    """
    x = np.asarray(x)
    n, d = x.shape
    pairs = []
    if d == 3:
        for i in range(n):
            for j in range(3):
                for k in range(3):
                    if k != j:
                        pairs.append(((i, j), (i, k)))
        out_shape: Tuple[int, ...] = (n, 3)
    elif d == 2:
        for i in range(n):
            pairs.append(((i,), (i, 0)))
            pairs.append(((i,), (i, 1)))
        out_shape = (n,)
    else:
        raise ValueError("cross requires the last dimension to be 2 or 3")
    return LineageRelation.from_pairs(pairs, out_shape, (n, d))


def _trace_lineage(x: np.ndarray) -> LineageRelation:
    x = np.asarray(x)
    n = min(x.shape)
    pairs = [((0,), (i, i)) for i in range(n)]
    return LineageRelation.from_pairs(pairs, (1,), x.shape)


def _tri_selection(x: np.ndarray, lower: bool) -> LineageRelation:
    x = np.asarray(x)
    source = _flat(x).copy()
    rows, cols = np.indices(x.shape)
    mask = rows >= cols if lower else rows <= cols
    source[~mask] = -1
    return selection_lineage(source, x.shape)


def _dot_lineage(x: np.ndarray) -> LineageRelation:
    x = np.asarray(x)
    n, m = x.shape
    return matmat_lineage(n, m, max(m // 2, 1))


def _kron_lineage(x: np.ndarray) -> LineageRelation:
    n = np.asarray(x).reshape(-1).size
    return selection_lineage(np.repeat(np.arange(n), 2), (n,))


def _take_lineage(x: np.ndarray) -> LineageRelation:
    n = np.asarray(x).reshape(-1).size
    return selection_lineage(np.arange(0, n, 2), (n,))


def _complex_ops() -> List[CatalogOp]:
    ops: List[CatalogOp] = []

    def add(name, apply, lineage, pipeline_ok=False, needs_2d=False, value_dependent=False):
        ops.append(
            CatalogOp(
                name=name,
                category="complex",
                apply=apply,
                lineage=lineage,
                pipeline_ok=pipeline_ok,
                needs_2d=needs_2d,
                value_dependent=value_dependent,
            )
        )

    def full(x):
        return full_reduction_lineage(np.asarray(x).shape)

    def cum(x):
        return cumulative_lineage((np.asarray(x).size,), axis=0)

    # reductions (value independent lineage: every cell contributes)
    for name, func in [
        ("sum", np.sum), ("prod", np.prod), ("mean", np.mean), ("std", np.std),
        ("var", np.var), ("amin", np.amin), ("amax", np.amax), ("ptp", lambda x: np.max(x) - np.min(x)),
        ("median", np.median), ("percentile_50", lambda x: np.percentile(x, 50)),
        ("quantile_25", lambda x: np.quantile(x, 0.25)), ("average", np.average),
        ("nansum", np.nansum), ("nanmean", np.nanmean), ("nanmin", np.nanmin),
        ("nanmax", np.nanmax), ("nanprod", np.nanprod), ("nanstd", np.nanstd),
        ("nanvar", np.nanvar), ("nanmedian", np.nanmedian),
    ]:
        add(name, func, full)

    # cumulative / prefix patterns
    add("cumsum", lambda x: np.cumsum(x), cum, pipeline_ok=True)
    add("cumprod", lambda x: np.cumprod(x), cum, pipeline_ok=True)
    add("nancumsum", lambda x: np.nancumsum(x), cum)
    add("nancumprod", lambda x: np.nancumprod(x), cum)

    # value-dependent selections
    add("sort", lambda x: np.sort(x.reshape(-1)),
        lambda x: selection_lineage(np.argsort(np.asarray(x).reshape(-1), kind="stable"), (np.asarray(x).size,)),
        pipeline_ok=True, value_dependent=True)
    add("argsort", lambda x: np.argsort(x.reshape(-1)).astype(np.float64),
        lambda x: selection_lineage(np.argsort(np.asarray(x).reshape(-1), kind="stable"), (np.asarray(x).size,)),
        pipeline_ok=True, value_dependent=True)
    add("partition", lambda x: np.partition(x.reshape(-1), x.size // 2),
        lambda x: selection_lineage(np.argpartition(np.asarray(x).reshape(-1), np.asarray(x).size // 2), (np.asarray(x).size,)),
        pipeline_ok=True, value_dependent=True)
    add("argpartition", lambda x: np.argpartition(x.reshape(-1), x.size // 2).astype(np.float64),
        lambda x: selection_lineage(np.argpartition(np.asarray(x).reshape(-1), np.asarray(x).size // 2), (np.asarray(x).size,)),
        value_dependent=True)

    # pure index selections / reorderings
    add("transpose", np.transpose, lambda x: selection_lineage(_flat(x).T, np.asarray(x).shape), needs_2d=True)
    add("reshape_column", lambda x: np.reshape(x, (-1, 1)),
        lambda x: selection_lineage(_flat(x).reshape(-1, 1), np.asarray(x).shape))
    add("ravel", np.ravel, lambda x: selection_lineage(_flat(x).reshape(-1), np.asarray(x).shape), pipeline_ok=True)
    add("squeeze", np.squeeze, lambda x: selection_lineage(np.squeeze(_flat(x)), np.asarray(x).shape), pipeline_ok=True)
    add("expand_dims", lambda x: np.expand_dims(x, 0),
        lambda x: selection_lineage(np.expand_dims(_flat(x), 0), np.asarray(x).shape))
    add("flip", lambda x: np.flip(x), lambda x: selection_lineage(np.flip(_flat(x)), np.asarray(x).shape), pipeline_ok=True)
    add("fliplr", np.fliplr, lambda x: selection_lineage(np.fliplr(_flat(x)), np.asarray(x).shape), needs_2d=True)
    add("flipud", np.flipud, lambda x: selection_lineage(np.flipud(_flat(x)), np.asarray(x).shape), needs_2d=True)
    add("roll", lambda x: np.roll(x, 3), lambda x: selection_lineage(np.roll(_flat(x), 3), np.asarray(x).shape), pipeline_ok=True)
    add("rot90", np.rot90, lambda x: selection_lineage(np.rot90(_flat(x)), np.asarray(x).shape), needs_2d=True)
    add("repeat", lambda x: np.repeat(x, 2), lambda x: selection_lineage(np.repeat(_flat(x).reshape(-1), 2), (np.asarray(x).size,)), pipeline_ok=True)
    add("tile", lambda x: np.tile(x.reshape(-1), 2), lambda x: selection_lineage(np.tile(_flat(x).reshape(-1), 2), (np.asarray(x).size,)), pipeline_ok=True)
    add("swapaxes", lambda x: np.swapaxes(x, 0, 1), lambda x: selection_lineage(np.swapaxes(_flat(x), 0, 1), np.asarray(x).shape), needs_2d=True)
    add("moveaxis", lambda x: np.moveaxis(x, 0, -1), lambda x: selection_lineage(np.moveaxis(_flat(x), 0, -1), np.asarray(x).shape), needs_2d=True)
    add("diagonal", np.diagonal, lambda x: selection_lineage(np.diagonal(_flat(x)), np.asarray(x).shape), needs_2d=True)
    add("diag", np.diag, lambda x: selection_lineage(np.diag(_flat(x)), np.asarray(x).shape), needs_2d=True)
    add("tril", np.tril, lambda x: _tri_selection(x, lower=True), needs_2d=True)
    add("triu", np.triu, lambda x: _tri_selection(x, lower=False), needs_2d=True)
    add("take_strided", lambda x: np.take(x.reshape(-1), np.arange(0, x.size, 2)), _take_lineage, pipeline_ok=True)
    add("kron_ones", lambda x: np.kron(x.reshape(-1), np.ones(2)), _kron_lineage, pipeline_ok=True)

    # sliding-window patterns
    add("diff", lambda x: np.diff(x.reshape(-1)), _diff_lineage, pipeline_ok=True)
    add("ediff1d", lambda x: np.ediff1d(x.reshape(-1)), _diff_lineage, pipeline_ok=True)
    add("gradient", lambda x: np.gradient(x.reshape(-1)),
        lambda x: window_lineage(np.asarray(x).size, radius=1, mode="same"), pipeline_ok=True)
    add("convolve_same", lambda x: np.convolve(x.reshape(-1), np.array([0.25, 0.5, 0.25]), mode="same"),
        lambda x: window_lineage(np.asarray(x).size, radius=1, mode="same"), pipeline_ok=True)
    add("correlate_same", lambda x: np.correlate(x.reshape(-1), np.array([0.25, 0.5, 0.25]), mode="same"),
        lambda x: window_lineage(np.asarray(x).size, radius=1, mode="same"), pipeline_ok=True)

    # linear algebra
    add("dot_const", lambda x: x @ np.ones((x.shape[1], max(x.shape[1] // 2, 1))), _dot_lineage, needs_2d=True)
    add("matmul_const", lambda x: np.matmul(x, np.ones((x.shape[1], max(x.shape[1] // 2, 1)))), _dot_lineage, needs_2d=True)
    add("tensordot_const", lambda x: np.tensordot(x, np.ones((x.shape[1], max(x.shape[1] // 2, 1))), axes=1), _dot_lineage, needs_2d=True)
    add("inner_const", lambda x: np.inner(x.reshape(-1), np.ones(x.size)), full, pipeline_ok=True)
    add("vdot_const", lambda x: np.vdot(x.reshape(-1), np.ones(x.size)), full)
    add("outer_const", lambda x: np.outer(x.reshape(-1), np.ones(4)),
        lambda x: outer_lineage(np.asarray(x).size, 4))
    add("trace", np.trace, _trace_lineage, needs_2d=True)
    add("cross_const", lambda x: np.cross(x, np.ones_like(x)), _cross_lineage, needs_2d=True)

    return ops


# ----------------------------------------------------------------------
# catalog assembly
# ----------------------------------------------------------------------
def build_catalog() -> List[CatalogOp]:
    """Return the full 136-operation catalog (75 element-wise + 61 complex)."""
    element = [_element_op(name, func) for name, func in _ELEMENTWISE_FUNCS]
    complex_ = _complex_ops()
    return element + complex_


def element_ops() -> List[CatalogOp]:
    return [op for op in build_catalog() if op.category == "element"]


def complex_ops() -> List[CatalogOp]:
    return [op for op in build_catalog() if op.category == "complex"]


def pipeline_ops(limit: int = 76) -> List[CatalogOp]:
    """The subset usable in random 1-D float64 workflows (Figure 9).

    The paper draws from a 76-operation list; the selection here keeps every
    eligible complex-pattern operation and fills the remainder with
    element-wise operations, deterministically.
    """
    eligible = [op for op in build_catalog() if op.pipeline_ok]
    complex_part = [op for op in eligible if op.category == "complex"]
    element_part = [op for op in eligible if op.category == "element"]
    remaining = max(limit - len(complex_part), 0)
    return complex_part + element_part[:remaining]
