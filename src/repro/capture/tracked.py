"""Cell-level lineage tracking for numpy operations (``tracked_cell``).

:class:`TrackedArray` wraps a numpy array together with a per-cell
provenance annotation (the set of ``(source array name, index tuple)``
pairs that contributed to that cell).  It implements the
``__array_ufunc__`` and ``__array_function__`` protocols so ordinary numpy
code — ``np.negative(x)``, ``x + y``, ``np.sum(x, axis=1)``, ``np.sort(x)``
— transparently produces tracked outputs, in the same spirit as the
paper's ``tracked_cell`` data type (taint-tracking semantics).

The tracked provenance of an output can then be exported as a
:class:`~repro.core.relation.LineageRelation` per source array and ingested
into DSLog.  This capture method is value-aware (it follows ``sort``,
``argsort``-driven permutations, boolean selection through ``where`` …) but
is a pure-Python prototype: use the analytic capture functions in
:mod:`repro.capture.analytic` when only the index structure matters and
speed does.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.relation import LineageRelation

__all__ = ["TrackedArray", "track_operation"]

Cell = Tuple[int, ...]

_union = np.frompyfunc(lambda a, b: a | b, 2, 1)


def _identity_provenance(name: str, shape: Tuple[int, ...]) -> np.ndarray:
    prov = np.empty(shape, dtype=object)
    for cell in np.ndindex(*shape):
        prov[cell] = frozenset({(name, cell)})
    return prov


def _empty_provenance(shape: Tuple[int, ...]) -> np.ndarray:
    prov = np.empty(shape, dtype=object)
    prov[...] = frozenset()
    return prov


class TrackedArray:
    """A numpy array annotated with per-cell contribution provenance."""

    __array_priority__ = 1000  # win binary-op dispatch against plain ndarrays

    def __init__(self, data: np.ndarray, name: Optional[str] = None, provenance: Optional[np.ndarray] = None):
        self.data = np.asarray(data)
        self.name = name or "array"
        if provenance is None:
            provenance = _identity_provenance(self.name, self.data.shape)
        provenance = np.asarray(provenance, dtype=object)
        if provenance.shape != self.data.shape:
            raise ValueError("provenance annotation must have the same shape as the data")
        self.provenance = provenance

    # ------------------------------------------------------------------
    # basic array protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrackedArray(name={self.name!r}, shape={self.shape})"

    def __getitem__(self, key) -> "TrackedArray":
        return TrackedArray(self.data[key], name=self.name, provenance=self.provenance[key])

    def __array__(self, dtype=None, copy=None):
        # Allow plain-numpy consumers to read the values (provenance is lost).
        return np.asarray(self.data, dtype=dtype)

    # arithmetic operators route through __array_ufunc__
    def __neg__(self):
        return np.negative(self)

    def __add__(self, other):
        return np.add(self, other)

    def __radd__(self, other):
        return np.add(other, self)

    def __sub__(self, other):
        return np.subtract(self, other)

    def __rsub__(self, other):
        return np.subtract(other, self)

    def __mul__(self, other):
        return np.multiply(self, other)

    def __rmul__(self, other):
        return np.multiply(other, self)

    def __truediv__(self, other):
        return np.true_divide(self, other)

    def __rtruediv__(self, other):
        return np.true_divide(other, self)

    def __pow__(self, other):
        return np.power(self, other)

    def __matmul__(self, other):
        return np.matmul(self, other)

    # ------------------------------------------------------------------
    # provenance export
    # ------------------------------------------------------------------
    def sources(self) -> Tuple[str, ...]:
        """Names of every source array appearing in the provenance."""
        names = set()
        for cell in np.ndindex(*self.shape):
            names.update(name for name, _ in self.provenance[cell])
        return tuple(sorted(names))

    def relation_to(self, source_name: str, source_shape: Tuple[int, ...], out_name: str = "out") -> LineageRelation:
        """Export the lineage between a named source array and this array."""
        pairs = []
        for out_cell in np.ndindex(*self.shape):
            for name, in_cell in self.provenance[out_cell]:
                if name == source_name:
                    pairs.append((out_cell, in_cell))
        return LineageRelation.from_pairs(
            pairs,
            out_shape=self.shape,
            in_shape=source_shape,
            out_name=out_name,
            in_name=source_name,
        )

    def relations(self, source_shapes: Dict[str, Tuple[int, ...]], out_name: str = "out") -> Dict[str, LineageRelation]:
        """Export one relation per source array named in *source_shapes*."""
        return {
            name: self.relation_to(name, shape, out_name=out_name)
            for name, shape in source_shapes.items()
        }

    # ------------------------------------------------------------------
    # ufunc protocol (element-wise ops, reductions, accumulations)
    # ------------------------------------------------------------------
    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        if kwargs.get("out") is not None:
            return NotImplemented
        datas = [x.data if isinstance(x, TrackedArray) else np.asarray(x) for x in inputs]
        provs = [
            x.provenance if isinstance(x, TrackedArray) else _empty_provenance(np.asarray(x).shape)
            for x in inputs
        ]

        if method == "__call__":
            if ufunc is np.matmul:
                # matmul is a (generalized) ufunc but is not element-wise;
                # route it through the dedicated handler.
                return _matmul(inputs[0], inputs[1])
            result = getattr(ufunc, method)(*datas, **kwargs)
            prov = self._broadcast_union(provs, np.shape(result))
            return self._wrap(result, prov)
        if method == "reduce":
            axis = kwargs.get("axis", 0)
            keepdims = kwargs.get("keepdims", False)
            result = ufunc.reduce(datas[0], axis=axis, keepdims=keepdims)
            prov = _union.reduce(provs[0], axis=axis, keepdims=keepdims)
            return self._wrap(result, prov)
        if method == "accumulate":
            axis = kwargs.get("axis", 0)
            result = ufunc.accumulate(datas[0], axis=axis)
            prov = _union.accumulate(provs[0], axis=axis)
            return self._wrap(result, np.asarray(prov, dtype=object))
        if method == "outer":
            result = ufunc.outer(datas[0], datas[1])
            prov = _union.outer(provs[0], provs[1])
            return self._wrap(result, np.asarray(prov, dtype=object))
        return NotImplemented

    @staticmethod
    def _broadcast_union(provs, out_shape):
        out_shape = tuple(out_shape)
        combined = None
        for prov in provs:
            broadcast = np.broadcast_to(prov, out_shape)
            combined = broadcast if combined is None else _union(combined, broadcast)
        if combined is None:
            combined = _empty_provenance(out_shape)
        return np.asarray(combined, dtype=object).reshape(out_shape)

    def _wrap(self, result, provenance) -> "TrackedArray":
        result = np.asarray(result)
        provenance = np.asarray(provenance, dtype=object)
        if result.shape == ():
            result = result.reshape(1)
            provenance = provenance.reshape(1)
        return TrackedArray(result, name=f"{self.name}'", provenance=provenance)

    # ------------------------------------------------------------------
    # array-function protocol (structural / value-dependent operations)
    # ------------------------------------------------------------------
    def __array_function__(self, func, types, args, kwargs):
        handler = _FUNCTION_HANDLERS.get(func)
        if handler is None:
            return NotImplemented
        return handler(*args, **kwargs)


# ----------------------------------------------------------------------
# __array_function__ handlers
# ----------------------------------------------------------------------
_FUNCTION_HANDLERS = {}


def _implements(np_function):
    def decorator(fn):
        _FUNCTION_HANDLERS[np_function] = fn
        return fn

    return decorator


def _as_tracked(x) -> TrackedArray:
    if isinstance(x, TrackedArray):
        return x
    return TrackedArray(np.asarray(x), name="literal", provenance=_empty_provenance(np.shape(x)))


def _reduction(np_func, arr, axis=None, **kwargs):
    arr = _as_tracked(arr)
    result = np_func(arr.data, axis=axis, **kwargs)
    if axis is None:
        prov = _union.reduce(arr.provenance.reshape(-1))
        prov_arr = np.empty(1, dtype=object)
        prov_arr[0] = prov
        return arr._wrap(np.asarray(result).reshape(1), prov_arr)
    prov = _union.reduce(arr.provenance, axis=axis)
    return arr._wrap(result, np.asarray(prov, dtype=object))


for _np_func in (np.sum, np.prod, np.mean, np.std, np.var, np.min, np.max,
                 np.nansum, np.nanmean, np.nanmin, np.nanmax, np.median):
    _FUNCTION_HANDLERS[_np_func] = (lambda f: (lambda a, axis=None, **kw: _reduction(f, a, axis=axis, **kw)))(_np_func)


def _index_map(np_index_func):
    """Build a handler for pure index-permutation functions (transpose, flip …)."""

    def handler(arr, *args, **kwargs):
        arr = _as_tracked(arr)
        result = np_index_func(arr.data, *args, **kwargs)
        prov = np_index_func(arr.provenance, *args, **kwargs)
        return arr._wrap(result, np.asarray(prov, dtype=object))

    return handler


for _np_func in (np.transpose, np.reshape, np.ravel, np.flip, np.fliplr, np.flipud,
                 np.roll, np.rot90, np.repeat, np.tile, np.squeeze, np.expand_dims,
                 np.swapaxes, np.moveaxis, np.atleast_1d, np.atleast_2d, np.diagonal,
                 np.tril, np.triu, np.broadcast_to):
    _FUNCTION_HANDLERS[_np_func] = _index_map(_np_func)


@_implements(np.sort)
def _sort(arr, axis=-1, **kwargs):
    arr = _as_tracked(arr)
    order = np.argsort(arr.data, axis=axis, kind="stable")
    result = np.take_along_axis(arr.data, order, axis=axis)
    prov = np.take_along_axis(arr.provenance, order, axis=axis)
    return arr._wrap(result, prov)


@_implements(np.argsort)
def _argsort(arr, axis=-1, **kwargs):
    arr = _as_tracked(arr)
    order = np.argsort(arr.data, axis=axis, kind="stable")
    prov = np.take_along_axis(arr.provenance, order, axis=axis)
    return arr._wrap(order.astype(np.float64), prov)


@_implements(np.cumsum)
def _cumsum(arr, axis=None, **kwargs):
    arr = _as_tracked(arr)
    if axis is None:
        data = arr.data.reshape(-1)
        prov = arr.provenance.reshape(-1)
    else:
        data = arr.data
        prov = arr.provenance
    result = np.cumsum(data, axis=axis if axis is not None else 0)
    prov = _union.accumulate(prov, axis=axis if axis is not None else 0)
    return arr._wrap(result, np.asarray(prov, dtype=object))


@_implements(np.cumprod)
def _cumprod(arr, axis=None, **kwargs):
    arr = _as_tracked(arr)
    data = arr.data.reshape(-1) if axis is None else arr.data
    prov = arr.provenance.reshape(-1) if axis is None else arr.provenance
    result = np.cumprod(data, axis=axis if axis is not None else 0)
    prov = _union.accumulate(prov, axis=axis if axis is not None else 0)
    return arr._wrap(result, np.asarray(prov, dtype=object))


@_implements(np.diff)
def _diff(arr, n=1, axis=-1):
    arr = _as_tracked(arr)
    result = np.diff(arr.data, n=n, axis=axis)
    prov = arr.provenance
    for _ in range(n):
        left = np.take(prov, range(0, prov.shape[axis] - 1), axis=axis)
        right = np.take(prov, range(1, prov.shape[axis]), axis=axis)
        prov = np.asarray(_union(left, right), dtype=object)
    return arr._wrap(result, prov)


@_implements(np.concatenate)
def _concatenate(arrays, axis=0, **kwargs):
    tracked = [_as_tracked(a) for a in arrays]
    result = np.concatenate([t.data for t in tracked], axis=axis)
    prov = np.concatenate([t.provenance for t in tracked], axis=axis)
    return tracked[0]._wrap(result, prov)


@_implements(np.stack)
def _stack(arrays, axis=0, **kwargs):
    tracked = [_as_tracked(a) for a in arrays]
    result = np.stack([t.data for t in tracked], axis=axis)
    prov = np.stack([t.provenance for t in tracked], axis=axis)
    return tracked[0]._wrap(result, prov)


@_implements(np.where)
def _where(condition, x, y):
    condition = np.asarray(condition.data if isinstance(condition, TrackedArray) else condition)
    x = _as_tracked(x)
    y = _as_tracked(y)
    result = np.where(condition, x.data, y.data)
    shape = np.shape(result)
    x_prov = np.broadcast_to(x.provenance, shape)
    y_prov = np.broadcast_to(y.provenance, shape)
    cond = np.broadcast_to(condition, shape)
    prov = np.where(cond, x_prov, y_prov)
    return x._wrap(result, np.asarray(prov, dtype=object))


@_implements(np.clip)
def _clip(arr, a_min=None, a_max=None, **kwargs):
    arr = _as_tracked(arr)
    return arr._wrap(np.clip(arr.data, a_min, a_max), arr.provenance.copy())


@_implements(np.dot)
def _dot(a, b, **kwargs):
    return _matmul(a, b)


@_implements(np.matmul)
def _matmul(a, b, **kwargs):
    a = _as_tracked(a)
    b = _as_tracked(b)
    result = np.matmul(a.data, b.data)
    if a.ndim == 2 and b.ndim == 2:
        prov = np.empty(result.shape, dtype=object)
        row_prov = [_union.reduce(a.provenance[i, :]) for i in range(a.shape[0])]
        col_prov = [_union.reduce(b.provenance[:, j]) for j in range(b.shape[1])]
        for i in range(result.shape[0]):
            for j in range(result.shape[1]):
                prov[i, j] = row_prov[i] | col_prov[j]
        return a._wrap(result, prov)
    if a.ndim == 2 and b.ndim == 1:
        prov = np.empty(result.shape, dtype=object)
        vec_prov = _union.reduce(b.provenance)
        for i in range(result.shape[0]):
            prov[i] = _union.reduce(a.provenance[i, :]) | vec_prov
        return a._wrap(result, prov)
    if a.ndim == 1 and b.ndim == 1:
        prov = np.empty(1, dtype=object)
        prov[0] = _union.reduce(a.provenance) | _union.reduce(b.provenance)
        return a._wrap(np.asarray(result).reshape(1), prov)
    raise NotImplementedError("matmul lineage tracking supports 1-D and 2-D operands only")


@_implements(np.outer)
def _outer(a, b, **kwargs):
    a = _as_tracked(a)
    b = _as_tracked(b)
    result = np.outer(a.data, b.data)
    prov = _union.outer(a.provenance.reshape(-1), b.provenance.reshape(-1))
    return a._wrap(result, np.asarray(prov, dtype=object))


@_implements(np.take)
def _take(arr, indices, axis=None, **kwargs):
    arr = _as_tracked(arr)
    indices = np.asarray(indices.data if isinstance(indices, TrackedArray) else indices, dtype=np.int64)
    result = np.take(arr.data, indices, axis=axis)
    prov = np.take(arr.provenance, indices, axis=axis)
    return arr._wrap(result, np.asarray(prov, dtype=object))


# ----------------------------------------------------------------------
# convenience wrapper
# ----------------------------------------------------------------------
def track_operation(
    func,
    inputs: Dict[str, np.ndarray],
    out_name: str = "out",
    **kwargs,
) -> Tuple[np.ndarray, Dict[str, LineageRelation]]:
    """Run ``func(*inputs)`` under lineage tracking.

    Returns the plain output array and one :class:`LineageRelation` per
    input array, ready to be registered with DSLog.
    """
    tracked_inputs = {name: TrackedArray(np.asarray(data), name=name) for name, data in inputs.items()}
    result = func(*tracked_inputs.values(), **kwargs)
    if not isinstance(result, TrackedArray):
        raise TypeError(
            f"{getattr(func, '__name__', func)!r} is not supported by TrackedArray lineage capture"
        )
    shapes = {name: np.asarray(data).shape for name, data in inputs.items()}
    relations = result.relations(shapes, out_name=out_name)
    return result.data, relations
