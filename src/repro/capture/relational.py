"""Relational operators with custom lineage capture (group-by, inner join).

The paper integrates DSLog with traditional relational operations by
implementing custom 'group-by' and 'inner-join' operators that record the
lineage of individual cells during execution, applied to the IMDB tables.
Here the "tables" are 2-D numpy arrays (rows x attributes) of numeric
codes, matching the paper's canonical array encoding of a relational table,
and each operator returns both the output array and the cell-level lineage
relation(s) w.r.t. its input array(s).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..core.relation import LineageRelation

__all__ = ["inner_join_capture", "group_by_capture", "filter_rows_capture"]


def _row_lineage(out_rows: np.ndarray, in_rows: np.ndarray, out_shape, in_shape, out_cols=None, in_cols=None) -> LineageRelation:
    """Expand a row-to-row mapping into cell-level lineage.

    ``out_rows[k]`` reads ``in_rows[k]``; every output cell of that row gets
    lineage from every input cell of the source row (restricted to the given
    column subsets when provided).
    """
    out_cols = np.arange(out_shape[1]) if out_cols is None else np.asarray(out_cols)
    in_cols = np.arange(in_shape[1]) if in_cols is None else np.asarray(in_cols)
    n_pairs = out_rows.size
    oc, ic = np.meshgrid(out_cols, in_cols, indexing="ij")
    oc, ic = oc.reshape(-1), ic.reshape(-1)
    out_r = np.repeat(out_rows, oc.size)
    in_r = np.repeat(in_rows, ic.size)
    out_c = np.tile(oc, n_pairs)
    in_c = np.tile(ic, n_pairs)
    rows = np.stack([out_r, out_c, in_r, in_c], axis=1)
    return LineageRelation(tuple(out_shape), tuple(in_shape), rows)


def inner_join_capture(
    left: np.ndarray,
    right: np.ndarray,
    left_on: int = 0,
    right_on: int = 0,
) -> Tuple[np.ndarray, Dict[str, LineageRelation]]:
    """Inner join of two numeric tables with cell-level lineage capture.

    Every matched pair of rows produces one output row holding the left
    row's attributes followed by the right row's attributes (join column
    dropped from the right side).  Each output cell records lineage to
    every cell of the source row it was copied from, plus the join keys.
    """
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    left_keys = left[:, left_on]
    right_keys = right[:, right_on]

    order = np.argsort(right_keys, kind="stable")
    sorted_keys = right_keys[order]
    starts = np.searchsorted(sorted_keys, left_keys, side="left")
    ends = np.searchsorted(sorted_keys, left_keys, side="right")

    left_rows, right_rows = [], []
    for i in range(left.shape[0]):
        for pos in range(starts[i], ends[i]):
            left_rows.append(i)
            right_rows.append(int(order[pos]))
    left_rows = np.asarray(left_rows, dtype=np.int64)
    right_rows = np.asarray(right_rows, dtype=np.int64)

    right_cols = [c for c in range(right.shape[1]) if c != right_on]
    out = np.concatenate([left[left_rows], right[right_rows][:, right_cols]], axis=1) if left_rows.size else np.empty((0, left.shape[1] + len(right_cols)))
    out_shape = out.shape
    out_rows_idx = np.arange(left_rows.size)

    left_cols_out = np.arange(left.shape[1])
    right_cols_out = np.arange(left.shape[1], out_shape[1])
    relations = {
        "left": _row_lineage(out_rows_idx, left_rows, out_shape, left.shape, out_cols=left_cols_out),
        "right": _row_lineage(out_rows_idx, right_rows, out_shape, right.shape, out_cols=right_cols_out, in_cols=np.asarray(right_cols + [right_on])),
    }
    return out, relations


def group_by_capture(
    table: np.ndarray,
    key_col: int = 0,
    value_col: int = 1,
) -> Tuple[np.ndarray, Dict[str, LineageRelation]]:
    """Group-by-sum over a numeric table with cell-level lineage capture.

    The output has one row per distinct key ``(key, sum(value))``; every
    output cell records lineage to the key and value cells of the input rows
    belonging to that group.
    """
    table = np.asarray(table, dtype=np.float64)
    keys = table[:, key_col]
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    sums = np.zeros(unique_keys.size)
    np.add.at(sums, inverse, table[:, value_col])
    out = np.stack([unique_keys, sums], axis=1)

    pairs = []
    for row in range(table.shape[0]):
        group = int(inverse[row])
        for out_col in (0, 1):
            pairs.append(((group, out_col), (row, key_col)))
            pairs.append(((group, out_col), (row, value_col)))
    relation = LineageRelation.from_pairs(pairs, out.shape, table.shape)
    return out, {"table": relation}


def filter_rows_capture(
    table: np.ndarray,
    mask: np.ndarray,
) -> Tuple[np.ndarray, Dict[str, LineageRelation]]:
    """Row filter (e.g. NaN removal) with cell-level lineage capture."""
    table = np.asarray(table, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    kept = np.flatnonzero(mask)
    out = table[kept]
    out_rows = np.arange(kept.size)
    relation = _row_lineage(out_rows, kept, out.shape, table.shape)
    return out, {"table": relation}
