"""Analytic lineage builders for common array operation patterns.

These helpers construct :class:`~repro.core.relation.LineageRelation`
objects directly from index arithmetic (vectorized over numpy index
arrays), without running the taint-tracking capture.  They cover the
recurring patterns of the numpy API:

* element-wise / one-to-one operations,
* full and per-axis reductions and prefix (cumulative) operations,
* pure index selections (sort, transpose, reshape, roll, take, …),
* sliding-window operations (convolve, diff, gradient),
* linear-algebra row/column patterns (matrix-vector, matrix-matrix, outer).

The builders are what the operation catalog (:mod:`repro.capture.numpy_catalog`)
uses; :mod:`repro.capture.tracked` provides the slower, fully general
capture used to validate them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.relation import LineageRelation

__all__ = [
    "elementwise_lineage",
    "full_reduction_lineage",
    "axis_reduction_lineage",
    "cumulative_lineage",
    "selection_lineage",
    "window_lineage",
    "matvec_lineage",
    "matmat_lineage",
    "outer_lineage",
    "repetition_lineage",
    "row_pattern_lineage",
]

Shape = Tuple[int, ...]


def _cells_from_flat(flat_indices: np.ndarray, shape: Shape) -> np.ndarray:
    """Convert flat indices into an ``(n, ndim)`` matrix of cell coordinates."""
    coords = np.unravel_index(flat_indices.astype(np.int64), shape)
    return np.stack([c.astype(np.int64) for c in coords], axis=1)


def _relation(out_cells: np.ndarray, in_cells: np.ndarray, out_shape: Shape, in_shape: Shape, **names) -> LineageRelation:
    rows = np.concatenate([out_cells, in_cells], axis=1)
    return LineageRelation(tuple(out_shape), tuple(in_shape), rows, **names)


def elementwise_lineage(shape: Shape, **names) -> LineageRelation:
    """One-to-one lineage: output cell ``i`` depends on input cell ``i``."""
    size = int(np.prod(shape))
    flat = np.arange(size)
    cells = _cells_from_flat(flat, shape)
    return _relation(cells, cells, shape, shape, **names)


def full_reduction_lineage(in_shape: Shape, out_shape: Shape = (1,), **names) -> LineageRelation:
    """Every input cell contributes to the single output cell."""
    size = int(np.prod(in_shape))
    in_cells = _cells_from_flat(np.arange(size), in_shape)
    out_cells = np.zeros((size, len(out_shape)), dtype=np.int64)
    return _relation(out_cells, in_cells, out_shape, in_shape, **names)


def axis_reduction_lineage(in_shape: Shape, axis: int, **names) -> LineageRelation:
    """Reduction over one axis: each output cell depends on one input slice."""
    axis = axis % len(in_shape)
    out_shape = tuple(d for i, d in enumerate(in_shape) if i != axis)
    if not out_shape:
        return full_reduction_lineage(in_shape, **names)
    size = int(np.prod(in_shape))
    in_cells = _cells_from_flat(np.arange(size), in_shape)
    out_cells = np.delete(in_cells, axis, axis=1)
    return _relation(out_cells, in_cells, out_shape, in_shape, **names)


def cumulative_lineage(in_shape: Shape, axis: Optional[int] = None, **names) -> LineageRelation:
    """Prefix pattern: output cell ``i`` depends on input cells ``0..i`` along *axis*."""
    if axis is None:
        n = int(np.prod(in_shape))
        out_idx, in_idx = np.tril_indices(n)
        out_cells = out_idx[:, None].astype(np.int64)
        in_cells = _cells_from_flat(in_idx, in_shape)
        return _relation(out_cells, in_cells, (n,), in_shape, **names)
    axis = axis % len(in_shape)
    size = int(np.prod(in_shape))
    base = _cells_from_flat(np.arange(size), in_shape)
    out_parts, in_parts = [], []
    for prefix in range(in_shape[axis]):
        keep = base[:, axis] <= prefix
        in_cells = base[keep]
        out_cells = in_cells.copy()
        out_cells[:, axis] = prefix
        out_parts.append(out_cells)
        in_parts.append(in_cells)
    return _relation(
        np.concatenate(out_parts), np.concatenate(in_parts), in_shape, in_shape, **names
    )


def selection_lineage(source_flat: np.ndarray, in_shape: Shape, **names) -> LineageRelation:
    """Pure index selection: output cell ``c`` depends on input cell ``source_flat[c]``.

    Entries equal to ``-1`` mean the output cell is a constant with no lineage
    (e.g. the zeroed triangle of ``tril``).
    """
    source_flat = np.asarray(source_flat)
    out_shape = source_flat.shape if source_flat.ndim else (1,)
    flat = source_flat.reshape(-1)
    out_cells_all = _cells_from_flat(np.arange(flat.size), out_shape)
    keep = flat >= 0
    in_cells = _cells_from_flat(flat[keep], in_shape)
    return _relation(out_cells_all[keep], in_cells, out_shape, in_shape, **names)


def window_lineage(n: int, radius: int, mode: str = "same", **names) -> LineageRelation:
    """1-D sliding-window pattern (convolution / correlation / gradient).

    Output cell ``i`` depends on input cells ``i - radius .. i + radius``
    clipped to the array bounds.  ``mode='valid'`` shrinks the output by
    ``2 * radius`` cells instead of clipping.
    """
    if mode == "same":
        out_n = n
        offset = 0
    elif mode == "valid":
        out_n = n - 2 * radius
        offset = radius
    else:
        raise ValueError("mode must be 'same' or 'valid'")
    out_parts, in_parts = [], []
    for i in range(out_n):
        center = i + offset
        lo = max(0, center - radius)
        hi = min(n - 1, center + radius)
        span = np.arange(lo, hi + 1)
        out_parts.append(np.full((span.size, 1), i, dtype=np.int64))
        in_parts.append(span[:, None].astype(np.int64))
    return _relation(
        np.concatenate(out_parts), np.concatenate(in_parts), (out_n,), (n,), **names
    )


def matvec_lineage(rows: int, cols: int, **names) -> LineageRelation:
    """Matrix-vector product lineage w.r.t. the matrix: output ``i`` ← row ``i``."""
    return axis_reduction_lineage((rows, cols), axis=1, **names)


def matmat_lineage(n: int, k: int, m: int, **names) -> LineageRelation:
    """Matrix-matrix product lineage w.r.t. the left operand.

    Output cell ``(i, j)`` depends on the whole ``i``-th row of the left
    ``(n, k)`` matrix, for every ``j``.
    """
    i = np.repeat(np.arange(n), m * k)
    j = np.tile(np.repeat(np.arange(m), k), n)
    kk = np.tile(np.arange(k), n * m)
    out_cells = np.stack([i, j], axis=1).astype(np.int64)
    in_cells = np.stack([i, kk], axis=1).astype(np.int64)
    return _relation(out_cells, in_cells, (n, m), (n, k), **names)


def outer_lineage(n: int, m: int, **names) -> LineageRelation:
    """Outer-product lineage w.r.t. the first vector: ``(i, j)`` ← ``i``."""
    i = np.repeat(np.arange(n), m)
    j = np.tile(np.arange(m), n)
    out_cells = np.stack([i, j], axis=1).astype(np.int64)
    in_cells = i[:, None].astype(np.int64)
    return _relation(out_cells, in_cells, (n, m), (n,), **names)


def repetition_lineage(n: int, reps: int, **names) -> LineageRelation:
    """Tiling pattern: output cell ``r * n + i`` depends on input cell ``i``."""
    out_idx = np.arange(n * reps)
    in_idx = out_idx % n
    return _relation(
        out_idx[:, None].astype(np.int64),
        in_idx[:, None].astype(np.int64),
        (n * reps,),
        (n,),
        **names,
    )


def row_pattern_lineage(in_shape: Tuple[int, int], out_shape: Shape, out_row_of: np.ndarray, **names) -> LineageRelation:
    """Each output cell depends on one whole row of a 2-D input.

    ``out_row_of`` maps each flat output index to the input row it reads.
    Useful for per-row aggregations such as one-hot encoding or model rows.
    """
    rows, cols = in_shape
    out_row_of = np.asarray(out_row_of, dtype=np.int64).reshape(-1)
    out_cells_base = _cells_from_flat(np.arange(out_row_of.size), out_shape)
    out_cells = np.repeat(out_cells_base, cols, axis=0)
    in_rows = np.repeat(out_row_of, cols)
    in_cols = np.tile(np.arange(cols), out_row_of.size)
    in_cells = np.stack([in_rows, in_cols], axis=1)
    return _relation(out_cells, in_cells, out_shape, in_shape, **names)
