"""Baseline storage formats and query strategies (the paper's comparators)."""

from .engine import ArrayDatabase, BaselineDatabase, StoredRelation
from .stores import (
    ArrayStore,
    BaselineStore,
    ColumnarGzipStore,
    ColumnarStore,
    RawStore,
    TurboRCStore,
    all_baseline_stores,
)

__all__ = [
    "BaselineStore",
    "RawStore",
    "ArrayStore",
    "ColumnarStore",
    "ColumnarGzipStore",
    "TurboRCStore",
    "all_baseline_stores",
    "BaselineDatabase",
    "ArrayDatabase",
    "StoredRelation",
]
