"""Baseline query processing over uncompressed lineage rows.

The paper serves every baseline format through DuckDB and answers path
queries with ordinary equality joins over the (decoded) lineage tables; the
Array baseline instead evaluates vectorized equality conditions in batches.
This module reproduces both strategies on top of the baseline stores:

* :class:`BaselineDatabase` — holds the encoded table per lineage hop and
  answers path queries by decoding each table (decompression latency is
  part of the measured cost, which is what penalizes Turbo-RC) and running
  a vectorized hash semi-join per hop.
* :class:`ArrayDatabase` — the Array baseline's batched ``==`` strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from ..core.relation import LineageRelation
from .stores import ArrayStore, BaselineStore

__all__ = ["StoredRelation", "BaselineDatabase", "ArrayDatabase"]

Cell = Tuple[int, ...]


@dataclass
class StoredRelation:
    """One lineage hop kept in a baseline format."""

    in_name: str
    out_name: str
    in_shape: Tuple[int, ...]
    out_shape: Tuple[int, ...]
    payload: bytes
    out_ndim: int

    def decode_rows(self, store: BaselineStore) -> np.ndarray:
        return store.decode(self.payload)


def _cells_to_matrix(cells: Iterable[Cell], ndim: int) -> np.ndarray:
    cells = list(cells)
    if not cells:
        return np.empty((0, ndim), dtype=np.int64)
    return np.asarray(cells, dtype=np.int64).reshape(len(cells), ndim)


def _flatten(matrix: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Map index tuples to flat ids for fast membership tests."""
    if matrix.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    return np.ravel_multi_index([matrix[:, d] for d in range(len(shape))], shape)


class BaselineDatabase:
    """Path queries via decode + hash join per hop over a baseline store."""

    def __init__(self, store: BaselineStore):
        self.store = store
        self._tables: Dict[Tuple[str, str], StoredRelation] = {}

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest(self, relation: LineageRelation) -> StoredRelation:
        payload = self.store.encode(relation.rows)
        stored = StoredRelation(
            in_name=relation.in_name,
            out_name=relation.out_name,
            in_shape=relation.in_shape,
            out_shape=relation.out_shape,
            payload=payload,
            out_ndim=relation.out_ndim,
        )
        self._tables[(relation.in_name, relation.out_name)] = stored
        return stored

    def storage_bytes(self) -> int:
        return sum(len(t.payload) for t in self._tables.values())

    def _hop(self, first: str, second: str) -> Tuple[StoredRelation, str]:
        if (first, second) in self._tables:
            return self._tables[(first, second)], "forward"
        if (second, first) in self._tables:
            return self._tables[(second, first)], "backward"
        raise KeyError(f"no lineage stored between {first!r} and {second!r}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_path(self, path: Sequence[str], query_cells: Iterable[Cell]) -> Set[Cell]:
        """Answer a path query with per-hop decode + semi-join."""
        if len(path) < 2:
            raise ValueError("a query path needs at least two arrays")
        frontier: Set[Cell] = {tuple(int(v) for v in cell) for cell in query_cells}
        for first, second in zip(path, path[1:]):
            stored, direction = self._hop(first, second)
            rows = stored.decode_rows(self.store)
            frontier = self._join_hop(rows, stored, direction, frontier)
            if not frontier:
                break
        return frontier

    @staticmethod
    def _join_hop(rows: np.ndarray, stored: StoredRelation, direction: str, frontier: Set[Cell]) -> Set[Cell]:
        l = stored.out_ndim
        if direction == "backward":
            match_cols, match_shape = rows[:, :l], stored.out_shape
            result_cols, result_shape = rows[:, l:], stored.in_shape
        else:
            match_cols, match_shape = rows[:, l:], stored.in_shape
            result_cols, result_shape = rows[:, :l], stored.out_shape
        frontier_matrix = _cells_to_matrix(frontier, len(match_shape))
        wanted = _flatten(frontier_matrix, match_shape)
        table_keys = _flatten(match_cols, match_shape)
        mask = np.isin(table_keys, wanted)
        selected = np.unique(result_cols[mask], axis=0) if mask.any() else np.empty((0, len(result_shape)), np.int64)
        return {tuple(int(v) for v in row) for row in selected}


class ArrayDatabase(BaselineDatabase):
    """The Array baseline: batched vectorized equality over the stored array.

    Mirrors the paper's strategy of evaluating ``==`` between the lineage
    array and the query cells with a fixed batch size to bound memory.
    """

    def __init__(self, batch_size: int = 1000):
        super().__init__(ArrayStore())
        self.batch_size = int(batch_size)

    @staticmethod
    def _join_hop_batched(rows, stored, direction, frontier, batch_size):
        l = stored.out_ndim
        if direction == "backward":
            match_cols = rows[:, :l]
            result_cols = rows[:, l:]
        else:
            match_cols = rows[:, l:]
            result_cols = rows[:, :l]
        frontier_matrix = _cells_to_matrix(frontier, match_cols.shape[1])
        selected_parts: List[np.ndarray] = []
        for start in range(0, frontier_matrix.shape[0], batch_size):
            batch = frontier_matrix[start : start + batch_size]
            # (rows, batch) boolean equality across every axis column
            equal = (match_cols[:, None, :] == batch[None, :, :]).all(axis=2)
            mask = equal.any(axis=1)
            if mask.any():
                selected_parts.append(result_cols[mask])
        if not selected_parts:
            return set()
        selected = np.unique(np.concatenate(selected_parts, axis=0), axis=0)
        return {tuple(int(v) for v in row) for row in selected}

    def query_path(self, path: Sequence[str], query_cells: Iterable[Cell]) -> Set[Cell]:
        if len(path) < 2:
            raise ValueError("a query path needs at least two arrays")
        frontier: Set[Cell] = {tuple(int(v) for v in cell) for cell in query_cells}
        for first, second in zip(path, path[1:]):
            stored, direction = self._hop(first, second)
            rows = stored.decode_rows(self.store)
            frontier = self._join_hop_batched(rows, stored, direction, frontier, self.batch_size)
            if not frontier:
                break
        return frontier
