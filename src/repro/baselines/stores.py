"""Baseline storage formats for lineage tables (Section VII.B).

The paper compares ProvRC against alternative physical designs for the
same relational lineage tables:

* **Raw** — row-oriented storage without compression (the Ground-style
  design, served by DuckDB in the paper).
* **Array** — the lineage tuples stored as a plain numpy array.
* **Parquet** — a columnar format with light per-column encodings
  (dictionary / run-length), default row-group partitioning.
* **Parquet-GZip** — the same with general-purpose compression on top.
* **Turbo-RC** — a custom columnar format applying run-length encoding
  combined with integer entropy coding per column.

DuckDB, Apache Parquet and the TurboPFor codecs are not available offline,
so each format is re-implemented here with the same design points (layout,
encodings, compression stack); see DESIGN.md for the substitution notes.
Every store exposes ``encode`` / ``decode`` over the ``(n, ncols)`` integer
row matrix of a lineage relation, which is exactly what the baseline query
engine consumes.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

import numpy as np

from ..core.serialize import json_frame, parse_json_frame

__all__ = [
    "BaselineStore",
    "RawStore",
    "ArrayStore",
    "ColumnarStore",
    "ColumnarGzipStore",
    "TurboRCStore",
    "all_baseline_stores",
]

_MAGIC = b"BLST"


def _smallest_uint_dtype(max_value: int) -> np.dtype:
    for dtype in (np.uint8, np.uint16, np.uint32, np.uint64):
        if max_value <= np.iinfo(dtype).max:
            return np.dtype(dtype)
    return np.dtype(np.uint64)


def _smallest_int_dtype(lo: int, hi: int) -> np.dtype:
    for dtype in (np.int8, np.int16, np.int32, np.int64):
        info = np.iinfo(dtype)
        if info.min <= lo and hi <= info.max:
            return np.dtype(dtype)
    return np.dtype(np.int64)


def _pack_blocks(header: dict, blocks: List[bytes]) -> bytes:
    header = dict(header)
    header["block_sizes"] = [len(b) for b in blocks]
    return json_frame(_MAGIC, header, b"".join(blocks))


def _unpack_blocks(data: bytes) -> Tuple[dict, List[bytes]]:
    header, offset = parse_json_frame(data, _MAGIC, "baseline store payload")
    blocks = []
    for size in header["block_sizes"]:
        blocks.append(data[offset : offset + size])
        offset += size
    return header, blocks


class BaselineStore:
    """Interface of a baseline storage format."""

    name = "baseline"

    def encode(self, rows: np.ndarray) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes) -> np.ndarray:
        raise NotImplementedError

    def size_bytes(self, rows: np.ndarray) -> int:
        """On-disk size of the encoded table."""
        return len(self.encode(rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


# ----------------------------------------------------------------------
# Raw and Array
# ----------------------------------------------------------------------
class RawStore(BaselineStore):
    """Row-oriented storage without compression (8-byte integers per cell)."""

    name = "Raw"

    def encode(self, rows: np.ndarray) -> bytes:
        rows = np.ascontiguousarray(np.asarray(rows, dtype=np.int64))
        header = {"n": int(rows.shape[0]), "cols": int(rows.shape[1]) if rows.ndim == 2 else 0}
        return _pack_blocks(header, [rows.tobytes()])

    def decode(self, data: bytes) -> np.ndarray:
        header, blocks = _unpack_blocks(data)
        rows = np.frombuffer(blocks[0], dtype=np.int64)
        return rows.reshape(header["n"], header["cols"])


class ArrayStore(BaselineStore):
    """The lineage tuples stored as a dense numpy array (``.npy``-style)."""

    name = "Array"

    def encode(self, rows: np.ndarray) -> bytes:
        import io

        buffer = io.BytesIO()
        np.save(buffer, np.asarray(rows, dtype=np.int64))
        return buffer.getvalue()

    def decode(self, data: bytes) -> np.ndarray:
        import io

        return np.load(io.BytesIO(data))


# ----------------------------------------------------------------------
# column encodings shared by the columnar stores
# ----------------------------------------------------------------------
def _encode_plain(column: np.ndarray) -> Tuple[str, bytes, dict]:
    dtype = _smallest_int_dtype(int(column.min()), int(column.max()))
    return "plain", np.ascontiguousarray(column.astype(dtype)).tobytes(), {"dtype": dtype.str}


def _encode_rle(column: np.ndarray) -> Tuple[str, bytes, dict]:
    change = np.empty(column.shape[0], dtype=bool)
    change[0] = True
    change[1:] = column[1:] != column[:-1]
    starts = np.flatnonzero(change)
    values = column[starts]
    lengths = np.diff(np.append(starts, column.shape[0]))
    value_dtype = _smallest_int_dtype(int(values.min()), int(values.max()))
    length_dtype = _smallest_uint_dtype(int(lengths.max()))
    payload = (
        np.ascontiguousarray(values.astype(value_dtype)).tobytes()
        + np.ascontiguousarray(lengths.astype(length_dtype)).tobytes()
    )
    meta = {
        "runs": int(values.shape[0]),
        "value_dtype": value_dtype.str,
        "length_dtype": length_dtype.str,
    }
    return "rle", payload, meta


def _encode_dictionary(column: np.ndarray) -> Tuple[str, bytes, dict]:
    values, codes = np.unique(column, return_inverse=True)
    code_dtype = _smallest_uint_dtype(int(values.shape[0]))
    value_dtype = _smallest_int_dtype(int(values.min()), int(values.max()))
    payload = (
        np.ascontiguousarray(values.astype(value_dtype)).tobytes()
        + np.ascontiguousarray(codes.astype(code_dtype)).tobytes()
    )
    meta = {
        "cardinality": int(values.shape[0]),
        "value_dtype": value_dtype.str,
        "code_dtype": code_dtype.str,
    }
    return "dictionary", payload, meta


def _decode_column(encoding: str, payload: bytes, meta: dict, n: int) -> np.ndarray:
    if encoding == "plain":
        return np.frombuffer(payload, dtype=np.dtype(meta["dtype"])).astype(np.int64)
    if encoding == "rle":
        value_dtype = np.dtype(meta["value_dtype"])
        length_dtype = np.dtype(meta["length_dtype"])
        runs = meta["runs"]
        values = np.frombuffer(payload[: runs * value_dtype.itemsize], dtype=value_dtype)
        lengths = np.frombuffer(payload[runs * value_dtype.itemsize :], dtype=length_dtype)
        return np.repeat(values.astype(np.int64), lengths.astype(np.int64))
    if encoding == "dictionary":
        value_dtype = np.dtype(meta["value_dtype"])
        code_dtype = np.dtype(meta["code_dtype"])
        cardinality = meta["cardinality"]
        values = np.frombuffer(payload[: cardinality * value_dtype.itemsize], dtype=value_dtype)
        codes = np.frombuffer(payload[cardinality * value_dtype.itemsize :], dtype=code_dtype)
        return values.astype(np.int64)[codes.astype(np.int64)]
    raise ValueError(f"unknown column encoding {encoding!r}")


class ColumnarStore(BaselineStore):
    """Columnar row-group format with per-column light encodings ("Parquet")."""

    name = "Parquet"
    compress_chunks = False
    compression_level = 6

    def __init__(self, row_group_size: int = 65536):
        self.row_group_size = int(row_group_size)

    def encode(self, rows: np.ndarray) -> bytes:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 2:
            rows = rows.reshape(-1, 1)
        n, ncols = rows.shape
        groups = []
        blocks: List[bytes] = []
        for start in range(0, max(n, 1), self.row_group_size):
            chunk = rows[start : start + self.row_group_size]
            group_meta = {"rows": int(chunk.shape[0]), "columns": []}
            for col in range(ncols):
                column = chunk[:, col]
                if column.size == 0:
                    encoding, payload, meta = "plain", b"", {"dtype": "<i8"}
                else:
                    candidates = [
                        _encode_plain(column),
                        _encode_rle(column),
                        _encode_dictionary(column),
                    ]
                    encoding, payload, meta = min(candidates, key=lambda c: len(c[1]))
                if self.compress_chunks:
                    payload = zlib.compress(payload, self.compression_level)
                group_meta["columns"].append({"encoding": encoding, "meta": meta})
                blocks.append(payload)
            groups.append(group_meta)
        header = {"n": int(n), "ncols": int(ncols), "groups": groups, "gzip": self.compress_chunks}
        return _pack_blocks(header, blocks)

    def decode(self, data: bytes) -> np.ndarray:
        header, blocks = _unpack_blocks(data)
        n, ncols = header["n"], header["ncols"]
        out = np.empty((n, ncols), dtype=np.int64)
        block_idx = 0
        row_offset = 0
        for group in header["groups"]:
            rows_in_group = group["rows"]
            for col, column_meta in enumerate(group["columns"]):
                payload = blocks[block_idx]
                block_idx += 1
                if header.get("gzip"):
                    payload = zlib.decompress(payload)
                column = _decode_column(
                    column_meta["encoding"], payload, column_meta["meta"], rows_in_group
                )
                out[row_offset : row_offset + rows_in_group, col] = column
            row_offset += rows_in_group
        return out


class ColumnarGzipStore(ColumnarStore):
    """Columnar format with GZip applied to every column chunk ("Parquet-GZip")."""

    name = "Parquet-GZip"
    compress_chunks = True


class TurboRCStore(BaselineStore):
    """Run-length encoding + integer entropy coding per column ("Turbo-RC").

    The entropy stage is zlib (DEFLATE's Huffman coder) applied to the
    run-length buffers, standing in for the TurboPFor-style range coder the
    paper uses; the pipeline (RLE first, entropy second, per column) is the
    same.
    """

    name = "Turbo-RC"

    def __init__(self, compression_level: int = 9):
        self.compression_level = int(compression_level)

    def encode(self, rows: np.ndarray) -> bytes:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 2:
            rows = rows.reshape(-1, 1)
        n, ncols = rows.shape
        blocks = []
        columns_meta = []
        for col in range(ncols):
            column = rows[:, col]
            if column.size == 0:
                blocks.append(b"")
                columns_meta.append({"meta": {"runs": 0, "value_dtype": "<i8", "length_dtype": "<u1"}})
                continue
            _, payload, meta = _encode_rle(column)
            blocks.append(zlib.compress(payload, self.compression_level))
            columns_meta.append({"meta": meta})
        header = {"n": int(n), "ncols": int(ncols), "columns": columns_meta}
        return _pack_blocks(header, blocks)

    def decode(self, data: bytes) -> np.ndarray:
        header, blocks = _unpack_blocks(data)
        n, ncols = header["n"], header["ncols"]
        out = np.empty((n, ncols), dtype=np.int64)
        for col in range(ncols):
            meta = header["columns"][col]["meta"]
            if meta["runs"] == 0:
                continue
            payload = zlib.decompress(blocks[col])
            out[:, col] = _decode_column("rle", payload, meta, n)
        return out


def all_baseline_stores() -> Dict[str, BaselineStore]:
    """The baseline formats of Table VII, keyed by their display name."""
    stores = [RawStore(), ArrayStore(), ColumnarStore(), ColumnarGzipStore(), TurboRCStore()]
    return {store.name: store for store in stores}
