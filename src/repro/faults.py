"""Deterministic fault injection and the failure-domain vocabulary.

The storage and service layers are built to survive real-world faults —
disk errors, ENOSPC, short writes, hung shards, stalled committers — but a
recovery path that is never executed is a recovery path that does not
work.  This module makes every such path *testable* without monkeypatching
internals: a :class:`FaultPlan` is threaded through segment I/O
(:mod:`repro.storage.segments`), the store (:mod:`repro.storage.store`),
the sharded store (:mod:`repro.service.shards`) and the ingest pipeline
(:mod:`repro.service.pipeline`), and each layer calls ``plan.check(site,
scope)`` at its fault points.  A plan with no matching rule costs one dict
lookup; a matching rule raises (or stalls, or truncates a write) exactly
where a real fault would.

Fault sites
-----------
=====================  ==========================================================
``segment.write``      ``SegmentWriter.flush_pending`` — the coalesced batch write
``segment.fsync``      ``SegmentWriter.sync`` — the durability barrier
``segment.read``       ``SegmentReader.read`` — record hydration from mapped pages
``segment.mmap``       ``SegmentReader`` open / remap
``manifest.write``     the atomic manifest publish (temp write + rename)
``service.worker``     the ingest worker, before an operation is applied
``service.commit``     the committer, before the group-commit publish
=====================  ==========================================================

*Scope* identifies the failure domain — ``"shard-01"`` for one shard of a
sharded store, the root directory's name for a single store — so a plan
can kill exactly one shard's I/O while the rest of the catalog keeps
serving.

Determinism
-----------
Rules fire on the *N-th matching call* (``at``/``times``), on every call
(neither), or pseudo-randomly at a given ``rate``.  Random rules hash
``(seed, site, scope, call-index)`` instead of drawing from shared RNG
state, so whether call N fires never depends on thread interleaving — the
same seed injects the same faults at the same per-site call indices on
every run.

Structured failure types
------------------------
The recovery machinery speaks a small vocabulary of exceptions, defined
here so every layer (and the HTTP server's status mapping) shares it:

* :class:`InjectedFault` — an ``OSError`` raised by a fault rule (real
  disk errors are plain ``OSError``; injected ones subclass it so tests
  can tell them apart).
* :class:`DeadlineExceeded` — a bounded wait (query prefetch, ticket
  result) ran out of budget.  Subclasses ``TimeoutError``.
* :class:`IngestOverloaded` — the ingest queue stayed full past the
  backpressure timeout.  The caller should shed load or retry later.
* :class:`ShardUnavailable` — a shard's circuit breaker is open and no
  degraded (stale-cache) answer exists for the request.

:class:`CircuitBreaker` implements the standard closed → open → half-open
automaton the query tier wraps around each shard (consecutive faults trip
it; after ``reset_after`` seconds one probe is allowed through, and a
successful probe — a reopen-with-scrub — closes it again).
"""

from __future__ import annotations

import errno
import os
import threading
import time
import zlib
from typing import Dict, List, Optional, Tuple

from .obs import REGISTRY, log_event

_FAULTS_INJECTED = REGISTRY.counter(
    "dslog_faults_injected_total",
    "Faults actually injected by an armed FaultPlan",
    labelnames=("site", "kind"),
)
_BREAKER_TRANSITIONS = REGISTRY.counter(
    "dslog_breaker_transitions_total",
    "Circuit breaker state transitions",
    labelnames=("scope", "to"),
)

__all__ = [
    "InjectedFault",
    "DeadlineExceeded",
    "IngestOverloaded",
    "ShardUnavailable",
    "FaultRule",
    "FaultPlan",
    "CircuitBreaker",
    "plan_from_env",
]


# ----------------------------------------------------------------------
# the failure vocabulary
# ----------------------------------------------------------------------
class InjectedFault(OSError):
    """An OSError raised by a fault rule (site and scope recorded)."""

    def __init__(self, site: str, scope: Optional[str], err: int, message: str) -> None:
        super().__init__(err, message)
        self.site = site
        self.scope = scope


class DeadlineExceeded(TimeoutError):
    """A bounded wait ran out of budget (slow shard, stalled commit)."""

    def __init__(self, message: str, shard: Optional[int] = None) -> None:
        super().__init__(message)
        self.shard = shard


class IngestOverloaded(RuntimeError):
    """The ingest queue stayed full past the backpressure timeout."""

    def __init__(self, message: str, queue_depth: Optional[int] = None) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth


class ShardUnavailable(RuntimeError):
    """A shard's circuit breaker is open and no degraded answer exists."""

    def __init__(self, message: str, shard: Optional[int] = None) -> None:
        super().__init__(message)
        self.shard = shard


# ----------------------------------------------------------------------
# fault rules
# ----------------------------------------------------------------------
_KINDS = ("error", "enospc", "short_write", "stall")


class FaultRule:
    """One injection rule: where (site/scope), when (at/times, every, or
    rate), and what (kind).

    Parameters
    ----------
    site:
        Fault site name (see the module table).
    scope:
        Failure domain, e.g. ``"shard-01"``; ``None`` matches every scope.
    kind:
        ``"error"`` (EIO before any state changes — retryable),
        ``"enospc"`` (ENOSPC, retryable), ``"short_write"`` (a torn write:
        a prefix of the batch reaches the file, then EIO — scrub
        territory), ``"stall"`` (sleep ``seconds``, then proceed — food
        for deadlines and breakers).
    at / times:
        Fire on matching calls ``at .. at+times-1`` (1-based).  ``times``
        may be ``None`` for "from *at* onward, forever" (a dead disk).
    every:
        Fire on every ``every``-th matching call (mutually exclusive
        with *at*).
    rate / seed:
        Fire pseudo-randomly at probability *rate*, decided by hashing
        ``(seed, site, scope, call-index)`` — deterministic per index.
    seconds:
        Stall duration for ``kind="stall"``.
    fraction:
        For ``kind="short_write"``: fraction of the batch that reaches
        the file before the error (default 0.5).
    """

    __slots__ = (
        "site", "scope", "kind", "at", "times", "every", "rate", "seed",
        "seconds", "fraction", "fired",
    )

    def __init__(
        self,
        site: str,
        scope: Optional[str] = None,
        kind: str = "error",
        at: Optional[int] = None,
        times: Optional[int] = 1,
        every: Optional[int] = None,
        rate: Optional[float] = None,
        seed: int = 0,
        seconds: float = 0.05,
        fraction: float = 0.5,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; use one of {_KINDS}")
        if at is not None and every is not None:
            raise ValueError("a rule fires by 'at' or by 'every', not both")
        self.site = site
        self.scope = scope
        self.kind = kind
        self.at = at
        self.times = times
        self.every = every
        self.rate = rate
        self.seed = int(seed)
        self.seconds = float(seconds)
        self.fraction = float(fraction)
        self.fired = 0

    def matches(self, site: str, scope: Optional[str]) -> bool:
        return self.site == site and (self.scope is None or self.scope == scope)

    def due(self, n: int, scope: Optional[str]) -> bool:
        """Whether the rule fires on the *n*-th (1-based) matching call."""
        if self.rate is not None:
            key = f"{self.seed}:{self.site}:{scope}:{n}".encode("utf-8")
            return (zlib.crc32(key) & 0xFFFFFFFF) / 0x100000000 < self.rate
        if self.every is not None:
            return n % self.every == 0
        start = self.at if self.at is not None else 1
        if self.times is None:
            return n >= start
        return start <= n < start + self.times

    def to_json(self) -> dict:
        return {
            "site": self.site,
            "scope": self.scope,
            "kind": self.kind,
            "at": self.at,
            "times": self.times,
            "every": self.every,
            "rate": self.rate,
            "fired": self.fired,
        }


def _record_injection(site: str, scope: Optional[str], kind: str) -> None:
    """Meter and log one *real* injection.  Called outside the plan lock,
    and only for rules that were not undone (``check()`` rolls back
    short-write matches), so ``faults_injected_total`` equals
    ``plan.fired()`` exactly."""
    _FAULTS_INJECTED.labels(site=site, kind=kind).inc()
    log_event(
        "fault_injected",
        level="warning",
        component="faults",
        site=site,
        scope=scope,
        kind=kind,
    )


class FaultPlan:
    """A set of :class:`FaultRule`\\ s plus per-(site, scope) call counters.

    Thread-safe; one plan is typically shared by every layer of one
    catalog (store, shards, service) so a test can describe the whole
    fault schedule in one place and assert on ``plan.events`` afterwards.
    Plans start **disarmed** — setup I/O (opening the catalog, defining
    arrays) runs clean; call ``arm()`` to open the fault window and
    ``disarm()`` to close it (the verification phase of a soak run).
    Call counters advance even while disarmed, so a schedule is
    deterministic regardless of when the window opens.
    """

    def __init__(self, rules: Optional[List[FaultRule]] = None) -> None:
        self._rules: List[FaultRule] = list(rules or [])
        self._lock = threading.Lock()
        self._counts: Dict[Tuple[str, Optional[str]], int] = {}
        self._armed = False
        #: every fault actually injected: (site, scope, kind, call-index)
        self.events: List[Tuple[str, Optional[str], str, int]] = []

    # -- construction ---------------------------------------------------
    def on(self, site: str, **kwargs) -> "FaultPlan":
        """Add a rule (chainable): ``plan.on("segment.fsync", at=3)``."""
        with self._lock:
            self._rules.append(FaultRule(site, **kwargs))
        return self

    @classmethod
    def seeded(
        cls,
        seed: int,
        rate: float = 0.02,
        sites: Tuple[str, ...] = ("segment.write", "segment.fsync", "service.worker"),
        kind: str = "error",
    ) -> "FaultPlan":
        """A deterministic random plan: each listed site fails at *rate*,
        decided per call index by hashing the seed (see module docstring)."""
        return cls([FaultRule(site, kind=kind, rate=rate, seed=seed) for site in sites])

    # -- state ----------------------------------------------------------
    def arm(self) -> None:
        with self._lock:
            self._armed = True

    def disarm(self) -> None:
        """Stop injecting (counters keep advancing so determinism holds)."""
        with self._lock:
            self._armed = False

    @property
    def armed(self) -> bool:
        return self._armed

    def fired(self, site: Optional[str] = None) -> int:
        """How many faults were injected (at *site*, or in total)."""
        with self._lock:
            return len([e for e in self.events if site is None or e[0] == site])

    def stats(self) -> dict:
        with self._lock:
            return {
                "armed": self._armed,
                "rules": [rule.to_json() for rule in self._rules],
                "injected": len(self.events),
            }

    # -- the injection points ------------------------------------------
    def _match(self, site: str, scope: Optional[str]) -> Optional[FaultRule]:
        """Advance the (site, scope) counter and return the due rule, if
        any.  Called with the lock held."""
        key = (site, scope)
        n = self._counts.get(key, 0) + 1
        self._counts[key] = n
        if not self._armed:
            return None
        for rule in self._rules:
            if rule.matches(site, scope) and rule.due(n, scope):
                rule.fired += 1
                self.events.append((site, scope, rule.kind, n))
                return rule
        return None

    def check(self, site: str, scope: Optional[str] = None) -> None:
        """Raise (or stall) when a rule is due at this site; no-op otherwise.

        ``short_write`` rules never fire here — they are consulted through
        :meth:`short_write` by the writer, which must apply the partial
        write itself.
        """
        with self._lock:
            rule = self._match(site, scope)
            if rule is not None and rule.kind == "short_write":
                # a short write cannot be modeled as a plain raise; undo
                rule.fired -= 1
                self.events.pop()
                rule = None
        if rule is None:
            return
        _record_injection(site, scope, rule.kind)
        if rule.kind == "stall":
            time.sleep(rule.seconds)
            return
        if rule.kind == "enospc":
            raise InjectedFault(
                site, scope, errno.ENOSPC, f"injected ENOSPC at {site} ({scope})"
            )
        raise InjectedFault(site, scope, errno.EIO, f"injected EIO at {site} ({scope})")

    def short_write(self, site: str, scope: Optional[str], nbytes: int) -> Optional[int]:
        """For the batch writer: bytes that reach the file before the
        injected error, or ``None`` when no short-write rule is due.
        (Other rule kinds at the same site raise/stall here too, so one
        ``plan.on("segment.write", ...)`` works for every kind.)"""
        with self._lock:
            rule = self._match(site, scope)
        if rule is None:
            return None
        _record_injection(site, scope, rule.kind)
        if rule.kind == "short_write":
            return max(0, min(nbytes - 1, int(nbytes * rule.fraction)))
        if rule.kind == "stall":
            time.sleep(rule.seconds)
            return None
        if rule.kind == "enospc":
            raise InjectedFault(
                site, scope, errno.ENOSPC, f"injected ENOSPC at {site} ({scope})"
            )
        raise InjectedFault(site, scope, errno.EIO, f"injected EIO at {site} ({scope})")


def plan_from_env(environ=os.environ) -> Optional[FaultPlan]:
    """Build a seeded random plan from ``DSLOG_FAULT_SEED`` /
    ``DSLOG_FAULT_RATE`` / ``DSLOG_FAULT_SITES`` (the fault-soak CI job's
    entry point), or ``None`` when unset."""
    seed = environ.get("DSLOG_FAULT_SEED")
    if seed is None:
        return None
    rate = float(environ.get("DSLOG_FAULT_RATE", "0.02"))
    sites = tuple(
        s.strip()
        for s in environ.get(
            "DSLOG_FAULT_SITES", "segment.write,segment.fsync,service.worker"
        ).split(",")
        if s.strip()
    )
    return FaultPlan.seeded(int(seed), rate=rate, sites=sites)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Closed → open → half-open breaker around one failure domain.

    * **closed** — traffic flows; ``failures`` consecutive
      :meth:`record_failure` calls trip it.
    * **open** — traffic is refused (the caller serves degraded answers)
      until ``reset_after`` seconds pass.
    * **half-open** — one caller wins :meth:`try_probe` and attempts
      recovery; :meth:`record_success` closes the breaker,
      :meth:`record_failure` re-opens it (and restarts the clock).
    """

    def __init__(
        self, failures: int = 3, reset_after: float = 30.0, scope: str = ""
    ) -> None:
        self.failure_threshold = max(1, int(failures))
        self.reset_after = float(reset_after)
        self.scope = scope
        self._lock = threading.Lock()
        self._consecutive = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._probing = False
        self.trips = 0

    def _transition(self, to: str) -> None:
        """Meter and log one state change (called outside the lock)."""
        _BREAKER_TRANSITIONS.labels(scope=self.scope or "default", to=to).inc()
        log_event(
            "breaker_transition",
            level="warning" if to == "open" else "info",
            component="breaker",
            scope=self.scope or "default",
            to=to,
            consecutive_failures=self._consecutive,
            trips=self.trips,
        )

    @property
    def state(self) -> str:
        with self._lock:
            if self._state == "open" and (
                time.monotonic() - self._opened_at >= self.reset_after
            ):
                return "half-open"
            return self._state

    def allows(self) -> bool:
        """Whether normal traffic may proceed (closed breaker only)."""
        return self.state == "closed"

    def try_probe(self) -> bool:
        """Claim the single half-open recovery probe; False when the
        breaker is not half-open or another caller already holds it."""
        with self._lock:
            if self._state != "open" or self._probing:
                return False
            if time.monotonic() - self._opened_at < self.reset_after:
                return False
            self._probing = True
        self._transition("half-open")
        return True

    def record_failure(self) -> bool:
        """Count one fault; returns True when the breaker is now open
        (first trip or a failed half-open probe restarting the window)."""
        with self._lock:
            self._probing = False
            self._consecutive += 1
            if self._consecutive < self.failure_threshold:
                return False
            if self._state != "open":
                self.trips += 1
            self._state = "open"
            self._opened_at = time.monotonic()
        self._transition("open")
        return True

    def record_success(self) -> None:
        with self._lock:
            was = self._state
            self._probing = False
            self._consecutive = 0
            self._state = "closed"
        if was != "closed":
            self._transition("closed")

    def stats(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive,
            "failure_threshold": self.failure_threshold,
            "reset_after": self.reset_after,
            "trips": self.trips,
        }
