"""Index reshaping: shape-generalized compressed lineage tables (Section VI.B).

A :class:`GeneralizedTable` is a ProvRC table in which every interval that
spans a *whole axis* of the input or output array has been replaced by a
symbolic marker ``[0, D_axis - 1]``.  Such a table can be *instantiated* for
arrays of a different shape, which is what lets DSLog reuse lineage across
calls of the same operation on differently sized data (``gen_sig``).

The generalization is a heuristic, exactly as in the paper: it is valid only
when whole-axis intervals are the only shape-dependent parts of the lineage.
The automatic reuse predictor (:mod:`repro.reuse.signatures`) confirms a
generalized mapping against freshly captured lineage before trusting it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.compressed import KIND_ABS, CompressedLineage

__all__ = ["GeneralizedTable", "generalize", "instantiate"]


class GeneralizedTable:
    """A compressed lineage table with whole-axis intervals made symbolic.

    ``key_full`` / ``val_full`` mark, per row and attribute, whether that
    interval was equal to ``[0, axis_length - 1]`` at generalization time
    and should therefore track the corresponding axis of a new shape.
    Relative (delta) attributes are shape-independent and are never marked.
    """

    def __init__(self, template: CompressedLineage, key_full: np.ndarray, val_full: np.ndarray):
        self.template = template
        self.key_full = np.asarray(key_full, dtype=bool)
        self.val_full = np.asarray(val_full, dtype=bool)
        n = len(template)
        if self.key_full.shape != (n, template.key_ndim):
            raise ValueError("key_full mask has the wrong shape")
        if self.val_full.shape != (n, template.value_ndim):
            raise ValueError("val_full mask has the wrong shape")

    @property
    def key_side(self) -> str:
        return self.template.key_side

    def instantiate(self, out_shape: Tuple[int, ...], in_shape: Tuple[int, ...]) -> CompressedLineage:
        """Materialize the table for concrete output/input array shapes."""
        template = self.template
        if len(out_shape) != len(template.out_shape) or len(in_shape) != len(template.in_shape):
            raise ValueError("instantiation shapes must have the same dimensionality as the template")
        key_shape = out_shape if template.key_side == "output" else in_shape
        value_shape = in_shape if template.key_side == "output" else out_shape

        # int64 copies: the template may hold narrow hydrated views, and the
        # symbolic bounds written below (`axis_length - 1`) can exceed the
        # template dtype's range for a larger instantiation shape
        key_lo = template.key_lo.astype(np.int64)
        key_hi = template.key_hi.astype(np.int64)
        val_lo = template.val_lo.astype(np.int64)
        val_hi = template.val_hi.astype(np.int64)
        for j in range(template.key_ndim):
            rows = self.key_full[:, j]
            key_lo[rows, j] = 0
            key_hi[rows, j] = int(key_shape[j]) - 1
        for i in range(template.value_ndim):
            rows = self.val_full[:, i]
            val_lo[rows, i] = 0
            val_hi[rows, i] = int(value_shape[i]) - 1

        return CompressedLineage(
            key_side=template.key_side,
            out_name=template.out_name,
            in_name=template.in_name,
            out_shape=tuple(out_shape),
            in_shape=tuple(in_shape),
            key_lo=key_lo,
            key_hi=key_hi,
            val_kind=template.val_kind.copy(),
            val_ref=template.val_ref.copy(),
            val_lo=val_lo,
            val_hi=val_hi,
            out_axes=template.out_axes,
            in_axes=template.in_axes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GeneralizedTable(rows={len(self.template)}, key={self.key_side})"


def generalize(table: CompressedLineage) -> GeneralizedTable:
    """Build a shape-generalized table from a concrete compressed table.

    Every absolute interval exactly equal to ``[0, d - 1]`` for its axis
    length ``d`` is marked symbolic (the paper's ``[1, D_i]`` interval).
    """
    key_shape = np.asarray(table.key_shape, dtype=np.int64)
    value_shape = np.asarray(table.value_shape, dtype=np.int64)
    n = len(table)
    if n == 0:
        key_full = np.zeros((0, table.key_ndim), dtype=bool)
        val_full = np.zeros((0, table.value_ndim), dtype=bool)
        return GeneralizedTable(table, key_full, val_full)

    key_full = (table.key_lo == 0) & (table.key_hi == key_shape[None, :] - 1)
    val_full = (
        (table.val_kind == KIND_ABS)
        & (table.val_lo == 0)
        & (table.val_hi == value_shape[None, :] - 1)
    )
    return GeneralizedTable(table, key_full, val_full)


def instantiate(
    generalized: GeneralizedTable,
    out_shape: Tuple[int, ...],
    in_shape: Tuple[int, ...],
) -> CompressedLineage:
    """Functional alias for :meth:`GeneralizedTable.instantiate`."""
    return generalized.instantiate(tuple(out_shape), tuple(in_shape))
