"""Lineage reuse: operation signatures, index reshaping, automatic prediction."""

from .reshape import GeneralizedTable, generalize, instantiate
from .signatures import (
    OperationSignature,
    ReuseDecision,
    ReuseManager,
    fingerprint_array,
    tables_equal,
)

__all__ = [
    "GeneralizedTable",
    "generalize",
    "instantiate",
    "OperationSignature",
    "ReuseDecision",
    "ReuseManager",
    "fingerprint_array",
    "tables_equal",
]
