"""Operation signatures and automatic reuse prediction (Section VI).

DSLog associates each ``register_operation`` call with three progressively
more general signatures:

* ``base_sig`` — operation name + the *content* of the input arrays + the
  scalar arguments.  A match lets DSLog reuse lineage verbatim (the Lima
  strategy).
* ``dim_sig`` — operation name + the input array *shapes* + arguments.
  A match reuses lineage whenever only the data values changed.
* ``gen_sig`` — operation name + arguments.  A match reuses lineage for any
  input shape via index reshaping (:mod:`repro.reuse.reshape`).

Reuse is *predicted automatically*: the first call stores temporary
``dim_sig``/``gen_sig`` mappings; they are promoted to permanent after ``m``
subsequent calls whose freshly captured lineage matches the stored mapping
(for ``gen_sig`` the calls must also use different shapes), and marked
non-reusable on the first mismatch.  The paper (and this implementation)
uses ``m = 1``.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from ..core.compressed import CompressedLineage
from .reshape import GeneralizedTable, generalize

__all__ = [
    "OperationSignature",
    "ReuseDecision",
    "ReuseManager",
    "tables_equal",
    "fingerprint_array",
]

RelationKey = Tuple[str, str]  # (input array name, output array name)


def fingerprint_array(array: np.ndarray) -> str:
    """Content fingerprint of an input array (used by ``base_sig``)."""
    array = np.ascontiguousarray(array)
    digest = hashlib.sha1()
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


def _canonical_args(op_args: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, str], ...]:
    if not op_args:
        return ()
    return tuple(sorted((str(k), repr(v)) for k, v in op_args.items()))


@dataclass(frozen=True)
class OperationSignature:
    """Identity of one ``register_operation`` call."""

    op_name: str
    input_fingerprints: Tuple[str, ...]
    in_shapes: Tuple[Tuple[int, ...], ...]
    out_shapes: Tuple[Tuple[int, ...], ...]
    op_args: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def build(
        cls,
        op_name: str,
        input_arrays: Iterable[np.ndarray],
        output_shapes: Iterable[Tuple[int, ...]],
        op_args: Optional[Mapping[str, Any]] = None,
        fingerprint: bool = True,
    ) -> "OperationSignature":
        arrays = list(input_arrays)
        fingerprints = tuple(
            fingerprint_array(np.asarray(a)) if fingerprint else "" for a in arrays
        )
        return cls(
            op_name=op_name,
            input_fingerprints=fingerprints,
            in_shapes=tuple(tuple(int(d) for d in np.asarray(a).shape) for a in arrays),
            out_shapes=tuple(tuple(int(d) for d in shape) for shape in output_shapes),
            op_args=_canonical_args(op_args),
        )

    @property
    def base_key(self) -> Tuple:
        return (self.op_name, self.input_fingerprints, self.op_args)

    @property
    def dim_key(self) -> Tuple:
        return (self.op_name, self.in_shapes, self.op_args)

    @property
    def gen_key(self) -> Tuple:
        return (self.op_name, self.op_args)


def tables_equal(left: CompressedLineage, right: CompressedLineage) -> bool:
    """Structural equality of two compressed tables (row order insensitive)."""
    if left.key_side != right.key_side:
        return False
    if left.out_shape != right.out_shape or left.in_shape != right.in_shape:
        return False
    if len(left) != len(right):
        return False

    def canonical(table: CompressedLineage) -> np.ndarray:
        parts = [
            table.key_lo,
            table.key_hi,
            table.val_kind.astype(np.int64),
            table.val_ref.astype(np.int64),
            table.val_lo,
            table.val_hi,
        ]
        matrix = np.concatenate(parts, axis=1) if len(table) else np.empty((0, 0), np.int64)
        if matrix.shape[0] > 1:
            order = np.lexsort(matrix.T[::-1])
            matrix = matrix[order]
        return matrix

    return np.array_equal(canonical(left), canonical(right))


@dataclass
class ReuseDecision:
    """Outcome of a reuse lookup for one operation call."""

    level: Optional[str]  # "base", "dim", "gen" or None
    tables: Optional[Dict[RelationKey, CompressedLineage]] = None

    @property
    def reused(self) -> bool:
        return self.level is not None


@dataclass
class _Candidate:
    tables: Dict[RelationKey, CompressedLineage] = field(default_factory=dict)
    generalized: Dict[RelationKey, GeneralizedTable] = field(default_factory=dict)
    shapes_seen: set = field(default_factory=set)
    confirmations: int = 0
    permanent: bool = False
    blocked: bool = False


class ReuseManager:
    """Tracks signature mappings and drives automatic reuse prediction.

    Thread-safe: the concurrent lineage service runs ``lookup``/``observe``
    from several ingest workers at once, and a manifest publish may export
    the state concurrently — every method that touches the signature tables
    holds the manager's reentrant lock.  ``mutation_count`` increases on
    every state change so a sync can skip re-exporting unchanged state.
    """

    def __init__(self, confirmations_required: int = 1):
        self.confirmations_required = int(confirmations_required)
        self._lock = threading.RLock()
        self._base: Dict[Tuple, Dict[RelationKey, CompressedLineage]] = {}
        self._dim: Dict[Tuple, _Candidate] = {}
        self._gen: Dict[Tuple, _Candidate] = {}
        self.mispredictions: int = 0
        self.mutation_count: int = 0

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, signature: OperationSignature) -> ReuseDecision:
        """Return reusable lineage tables for this call, if any."""
        with self._lock:
            base = self._base.get(signature.base_key)
            if base is not None:
                return ReuseDecision(level="base", tables=dict(base))

            dim = self._dim.get(signature.dim_key)
            if dim is not None and dim.permanent and not dim.blocked:
                return ReuseDecision(level="dim", tables=dict(dim.tables))

            gen = self._gen.get(signature.gen_key)
            if gen is not None and gen.permanent and not gen.blocked:
                tables = {}
                try:
                    for key, generalized in gen.generalized.items():
                        out_shape = signature.out_shapes[0] if signature.out_shapes else ()
                        in_shape = signature.in_shapes[0] if signature.in_shapes else ()
                        tables[key] = generalized.instantiate(out_shape, in_shape)
                except ValueError:
                    # The promoted generalized mapping cannot serve this call's
                    # shapes (e.g. numpy.cross changing output arity with the
                    # second dimension): a reuse misprediction, fall back to capture.
                    self.mispredictions += 1
                    self.mutation_count += 1
                    gen.blocked = True
                    return ReuseDecision(level=None)
                return ReuseDecision(level="gen", tables=tables)
            return ReuseDecision(level=None)

    # ------------------------------------------------------------------
    # observation / prediction
    # ------------------------------------------------------------------
    def observe(
        self,
        signature: OperationSignature,
        tables: Mapping[RelationKey, CompressedLineage],
    ) -> None:
        """Record freshly captured lineage and update reuse predictions."""
        tables = dict(tables)
        with self._lock:
            self._base[signature.base_key] = tables
            self._observe_dim(signature, tables)
            self._observe_gen(signature, tables)
            self.mutation_count += 1

    def _observe_dim(self, signature, tables) -> None:
        candidate = self._dim.get(signature.dim_key)
        if candidate is None:
            self._dim[signature.dim_key] = _Candidate(tables=tables)
            return
        if candidate.blocked or candidate.permanent:
            return
        if self._tables_match(candidate.tables, tables):
            candidate.confirmations += 1
            if candidate.confirmations >= self.confirmations_required:
                candidate.permanent = True
        else:
            candidate.blocked = True

    def _observe_gen(self, signature, tables) -> None:
        candidate = self._gen.get(signature.gen_key)
        shape_key = (signature.in_shapes, signature.out_shapes)
        if candidate is None:
            candidate = _Candidate(
                tables=tables,
                generalized={key: generalize(table) for key, table in tables.items()},
            )
            candidate.shapes_seen.add(shape_key)
            self._gen[signature.gen_key] = candidate
            return
        if candidate.blocked or candidate.permanent:
            return
        out_shape = signature.out_shapes[0] if signature.out_shapes else ()
        in_shape = signature.in_shapes[0] if signature.in_shapes else ()
        predicted = {}
        try:
            for key, generalized in candidate.generalized.items():
                predicted[key] = generalized.instantiate(out_shape, in_shape)
        except ValueError:
            candidate.blocked = True
            return
        if self._tables_match(predicted, tables):
            if shape_key not in candidate.shapes_seen:
                candidate.confirmations += 1
                candidate.shapes_seen.add(shape_key)
            if candidate.confirmations >= self.confirmations_required:
                candidate.permanent = True
        else:
            candidate.blocked = True

    @staticmethod
    def _tables_match(left: Mapping[RelationKey, CompressedLineage], right) -> bool:
        if set(left.keys()) != set(right.keys()):
            return False
        return all(tables_equal(left[key], right[key]) for key in left)

    # ------------------------------------------------------------------
    # persistence (the segment store's manifest carries this state)
    # ------------------------------------------------------------------
    def export_state(self, save_table) -> dict:
        """Serialize every signature mapping to a JSON-able dict.

        *save_table* maps a :class:`CompressedLineage` to a JSON-able
        reference (the segment store appends the table and returns its
        record address); tables already persisted are referenced, not
        re-encoded.  Signature keys are nested tuples of strings and ints,
        which round-trip through JSON lists losslessly.
        """

        def encode_tables(tables: Mapping) -> list:
            return [[list(key), save_table(table)] for key, table in tables.items()]

        def encode_candidate(key, candidate: _Candidate) -> dict:
            return {
                "key": key,
                "tables": encode_tables(candidate.tables),
                "shapes_seen": [list(shape) for shape in sorted(candidate.shapes_seen)],
                "confirmations": candidate.confirmations,
                "permanent": candidate.permanent,
                "blocked": candidate.blocked,
            }

        with self._lock:
            return {
                "confirmations_required": self.confirmations_required,
                "mispredictions": self.mispredictions,
                "base": [
                    {"key": key, "tables": encode_tables(tables)}
                    for key, tables in self._base.items()
                ],
                "dim": [encode_candidate(k, c) for k, c in self._dim.items()],
                "gen": [encode_candidate(k, c) for k, c in self._gen.items()],
            }

    def import_state(self, state: Mapping, load_table) -> None:
        """Rebuild the signature mappings exported by :meth:`export_state`.

        *load_table* maps a stored reference back to a table.  Generalized
        tables are re-derived from the concrete tables (``generalize`` is a
        pure function of the table), so only table references need to
        survive on disk.
        """
        from ..storage.manifest import tuplify

        def decode_tables(items) -> Dict:
            return {tuplify(key): load_table(ref) for key, ref in items}

        def decode_candidate(data: Mapping, generalized: bool) -> _Candidate:
            tables = decode_tables(data["tables"])
            candidate = _Candidate(
                tables=tables,
                generalized=(
                    {key: generalize(table) for key, table in tables.items()}
                    if generalized
                    else {}
                ),
                shapes_seen={tuplify(shape) for shape in data.get("shapes_seen", [])},
                confirmations=int(data["confirmations"]),
                permanent=bool(data["permanent"]),
                blocked=bool(data["blocked"]),
            )
            return candidate

        with self._lock:
            self.confirmations_required = int(
                state.get("confirmations_required", self.confirmations_required)
            )
            self.mispredictions = int(state.get("mispredictions", 0))
            self._base = {
                tuplify(item["key"]): decode_tables(item["tables"]) for item in state.get("base", [])
            }
            self._dim = {
                tuplify(item["key"]): decode_candidate(item, generalized=False)
                for item in state.get("dim", [])
            }
            self._gen = {
                tuplify(item["key"]): decode_candidate(item, generalized=True)
                for item in state.get("gen", [])
            }
            self.mutation_count += 1

    # ------------------------------------------------------------------
    # introspection (used by the Table IX coverage experiment)
    # ------------------------------------------------------------------
    def record_misprediction(self) -> None:
        with self._lock:
            self.mispredictions += 1
            self.mutation_count += 1

    def has_dim_mapping(self, signature: OperationSignature) -> bool:
        with self._lock:
            candidate = self._dim.get(signature.dim_key)
            return bool(candidate and candidate.permanent and not candidate.blocked)

    def has_gen_mapping(self, signature: OperationSignature) -> bool:
        with self._lock:
            candidate = self._gen.get(signature.gen_key)
            return bool(candidate and candidate.permanent and not candidate.blocked)

    def stats(self) -> dict:
        with self._lock:
            return {
                "base_entries": len(self._base),
                "dim_entries": sum(1 for c in self._dim.values() if c.permanent),
                "gen_entries": sum(1 for c in self._gen.values() if c.permanent),
                "blocked_dim": sum(1 for c in self._dim.values() if c.blocked),
                "blocked_gen": sum(1 for c in self._gen.values() if c.blocked),
                "mispredictions": self.mispredictions,
            }
