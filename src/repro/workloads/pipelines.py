"""Multi-step workflow generators for the query-latency experiments.

Three hand-built workflows (Figure 8) plus the random numpy workflows
(Figure 9):

* **image pipeline** — resize, luminosity, rotate, horizontal flip, LIME on
  the detector (Table VIII, left column);
* **relational pipeline** — inner join on the key column, NaN row filter,
  add two columns, one-hot encode, add a constant (Table VIII, right);
* **ResNet block** — conv / batch-norm / ReLU / conv / batch-norm /
  skip-add / ReLU over a feature map (seven steps);
* **random numpy workflows** — chains of operations drawn from the
  76-operation pipeline list applied to a 1-D float64 array.

Each generator returns a :class:`Pipeline`: the ordered array definitions
plus one lineage relation per step, ready to be loaded into DSLog or into
any baseline database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..capture.analytic import (
    elementwise_lineage,
    row_pattern_lineage,
    selection_lineage,
)
from ..capture.explain import SyntheticDetector, lime_capture
from ..capture.numpy_catalog import CatalogOp, pipeline_ops
from ..capture.relational import filter_rows_capture, inner_join_capture
from ..core.relation import LineageRelation
from ..dslog import DSLog
from ..baselines.engine import ArrayDatabase, BaselineDatabase
from ..baselines.stores import BaselineStore
from .datasets import make_imdb_like, synthetic_frame

__all__ = ["Pipeline", "image_pipeline", "relational_pipeline", "resnet_block_pipeline", "random_numpy_pipeline"]


@dataclass
class Pipeline:
    """An ordered chain of arrays connected by lineage relations."""

    name: str
    arrays: List[Tuple[str, Tuple[int, ...]]]
    steps: List[LineageRelation]

    @property
    def path(self) -> List[str]:
        return [name for name, _ in self.arrays]

    @property
    def first_shape(self) -> Tuple[int, ...]:
        return self.arrays[0][1]

    def load_into_dslog(self, log: Optional[DSLog] = None) -> DSLog:
        log = log or DSLog()
        for name, shape in self.arrays:
            log.define_array(name, shape)
        for relation in self.steps:
            log.add_lineage(relation.in_name, relation.out_name, relation=relation)
        return log

    def load_into_baseline(self, store: BaselineStore) -> BaselineDatabase:
        db = BaselineDatabase(store)
        for relation in self.steps:
            db.ingest(relation)
        return db

    def load_into_array_db(self, batch_size: int = 1000) -> ArrayDatabase:
        db = ArrayDatabase(batch_size=batch_size)
        for relation in self.steps:
            db.ingest(relation)
        return db


def _chain(name: str, shapes: List[Tuple[str, Tuple[int, ...]]], steps: List[LineageRelation]) -> Pipeline:
    return Pipeline(name=name, arrays=shapes, steps=steps)


# ----------------------------------------------------------------------
# image pipeline (Figure 8 A)
# ----------------------------------------------------------------------
def _resize_half_lineage(height: int, width: int, **names) -> LineageRelation:
    """2x2 average-pool resize: each output pixel reads a 2x2 input block."""
    oh, ow = height // 2, width // 2
    pairs = []
    for y in range(oh):
        for x in range(ow):
            for dy in (0, 1):
                for dx in (0, 1):
                    pairs.append(((y, x), (2 * y + dy, 2 * x + dx)))
    return LineageRelation.from_pairs(pairs, (oh, ow), (height, width), **names)


def _rot90_lineage(height: int, width: int, **names) -> LineageRelation:
    source = np.rot90(np.arange(height * width).reshape(height, width))
    return selection_lineage(source, (height, width), **names)


def _hflip_lineage(height: int, width: int, **names) -> LineageRelation:
    source = np.fliplr(np.arange(height * width).reshape(height, width))
    return selection_lineage(source, (height, width), **names)


def image_pipeline(height: int = 64, width: int = 64, lime_samples: int = 60) -> Pipeline:
    """Resize -> luminosity -> rotate 90 -> horizontal flip -> LIME on the detector."""
    oh, ow = height // 2, width // 2

    resize = _resize_half_lineage(height, width, in_name="img0", out_name="img1")
    luminosity = elementwise_lineage((oh, ow), in_name="img1", out_name="img2")
    rotate = _rot90_lineage(oh, ow, in_name="img2", out_name="img3")
    flip = _hflip_lineage(ow, oh, in_name="img3", out_name="img4")

    final_frame = np.fliplr(np.rot90(synthetic_frame(oh, ow, seed=21) + 0.1))
    detector = SyntheticDetector.around_blob(final_frame)
    lime = lime_capture(final_frame, detector, patch=max(ow // 8, 2), samples=lime_samples, seed=23)
    lime.in_name, lime.out_name = "img4", "detection"

    arrays = [
        ("img0", (height, width)),
        ("img1", (oh, ow)),
        ("img2", (oh, ow)),
        ("img3", (ow, oh)),
        ("img4", (ow, oh)),
        ("detection", (5,)),
    ]
    return _chain("image", arrays, [resize, luminosity, rotate, flip, lime])


# ----------------------------------------------------------------------
# relational pipeline (Figure 8 B)
# ----------------------------------------------------------------------
def relational_pipeline(n_basics: int = 2000, n_episodes: int = 1500, n_genres: int = 8) -> Pipeline:
    """Inner join -> NaN filter -> add two columns -> one-hot encode -> add constant."""
    imdb = make_imdb_like(n_basics=n_basics, n_episodes=n_episodes, seed=31)
    joined, join_relations = inner_join_capture(imdb.basics, imdb.episode, left_on=0, right_on=0)
    join_left = join_relations["left"]
    join_left.in_name, join_left.out_name = "basics", "joined"

    rng = np.random.default_rng(32)
    nan_mask = rng.uniform(size=joined.shape[0]) > 0.1
    filtered, filter_relations = filter_rows_capture(joined, nan_mask)
    filt = filter_relations["table"]
    filt.in_name, filt.out_name = "joined", "filtered"

    # add two columns: new last column = col 3 + col 4, other cells copied
    n_rows, n_cols = filtered.shape
    added_shape = (n_rows, n_cols + 1)
    pairs = []
    for r in range(n_rows):
        for c in range(n_cols):
            pairs.append(((r, c), (r, c)))
        pairs.append(((r, n_cols), (r, 3)))
        pairs.append(((r, n_cols), (r, 4)))
    add_cols = LineageRelation.from_pairs(pairs, added_shape, filtered.shape, in_name="filtered", out_name="added")

    # one-hot encode the genres column: output row r reads input row r (whole-row pattern)
    onehot_shape = (n_rows, n_genres)
    onehot = row_pattern_lineage(
        added_shape,
        onehot_shape,
        out_row_of=np.arange(n_rows * n_genres) // n_genres,
        in_name="added",
        out_name="onehot",
    )

    add_const = elementwise_lineage(onehot_shape, in_name="onehot", out_name="final")

    arrays = [
        ("basics", imdb.basics.shape),
        ("joined", joined.shape),
        ("filtered", filtered.shape),
        ("added", added_shape),
        ("onehot", onehot_shape),
        ("final", onehot_shape),
    ]
    return _chain("relational", arrays, [join_left, filt, add_cols, onehot, add_const])


# ----------------------------------------------------------------------
# ResNet block (Figure 8 C)
# ----------------------------------------------------------------------
def _conv3x3_lineage(height: int, width: int, **names) -> LineageRelation:
    pairs = []
    for y in range(height):
        for x in range(width):
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    ny, nx = y + dy, x + dx
                    if 0 <= ny < height and 0 <= nx < width:
                        pairs.append(((y, x), (ny, nx)))
    return LineageRelation.from_pairs(pairs, (height, width), (height, width), **names)


def resnet_block_pipeline(height: int = 32, width: int = 32) -> Pipeline:
    """The seven steps of a (single-channel) ResNet basic block at inference."""
    conv1 = _conv3x3_lineage(height, width, in_name="fm0", out_name="fm1")
    bn1 = elementwise_lineage((height, width), in_name="fm1", out_name="fm2")
    relu1 = elementwise_lineage((height, width), in_name="fm2", out_name="fm3")
    conv2 = _conv3x3_lineage(height, width, in_name="fm3", out_name="fm4")
    bn2 = elementwise_lineage((height, width), in_name="fm4", out_name="fm5")
    skip_add = elementwise_lineage((height, width), in_name="fm5", out_name="fm6")
    relu2 = elementwise_lineage((height, width), in_name="fm6", out_name="fm7")
    arrays = [(f"fm{i}", (height, width)) for i in range(8)]
    return _chain("resnet", arrays, [conv1, bn1, relu1, conv2, bn2, skip_add, relu2])


# ----------------------------------------------------------------------
# random numpy workflows (Figure 9)
# ----------------------------------------------------------------------
def random_numpy_pipeline(
    n_ops: int = 5,
    n_cells: int = 100_000,
    seed: int = 0,
    ops: Optional[Sequence[CatalogOp]] = None,
) -> Pipeline:
    """A random chain of numpy operations over a 1-D float64 array.

    Operations are drawn from the 76-operation pipeline list; each step's
    lineage is captured analytically (value-dependent for ``sort`` and
    friends) exactly as the ``tracked_cell`` capture would produce it.
    """
    rng = np.random.default_rng(seed)
    ops = list(ops) if ops is not None else pipeline_ops()
    data = rng.normal(size=n_cells)

    arrays: List[Tuple[str, Tuple[int, ...]]] = [("arr0", data.shape)]
    steps: List[LineageRelation] = []
    current = data
    for i in range(n_ops):
        # keep drawing until the step keeps the chain at a workable size
        # (no collapse to a scalar, no unbounded growth from repeat/tile)
        for _ in range(20):
            op = ops[int(rng.integers(0, len(ops)))]
            out = op.run(current).reshape(-1)
            if 10 <= out.size <= 4 * n_cells:
                break
        relation = op.lineage(current)
        # flatten the output side so the chain stays 1-D
        if relation.out_shape != out.shape:
            flat_rows = relation.rows.copy()
            out_idx = np.ravel_multi_index(
                [flat_rows[:, d] for d in range(relation.out_ndim)], relation.out_shape
            )
            flat_rows = np.concatenate([out_idx[:, None], flat_rows[:, relation.out_ndim:]], axis=1)
            relation = LineageRelation(out.shape, relation.in_shape, flat_rows)
        relation.in_name = f"arr{i}"
        relation.out_name = f"arr{i + 1}"
        arrays.append((f"arr{i + 1}", out.shape))
        steps.append(relation)
        current = out
    return _chain(f"random-{n_ops}ops-seed{seed}", arrays, steps)
