"""Workload and dataset generators for the evaluation harnesses."""

from .datasets import ImdbLike, make_feature_matrix, make_imdb_like, synthetic_frame
from .kaggle import OP_VOCABULARY, WorkflowOp, WorkflowTrace, classify_workflow, generate_workflows, summarize
from .operations import CompressionWorkload, build_workload, compression_workloads
from .pipelines import (
    Pipeline,
    image_pipeline,
    random_numpy_pipeline,
    relational_pipeline,
    resnet_block_pipeline,
)

__all__ = [
    "ImdbLike",
    "make_imdb_like",
    "make_feature_matrix",
    "synthetic_frame",
    "CompressionWorkload",
    "compression_workloads",
    "build_workload",
    "Pipeline",
    "image_pipeline",
    "relational_pipeline",
    "resnet_block_pipeline",
    "random_numpy_pipeline",
    "WorkflowOp",
    "WorkflowTrace",
    "OP_VOCABULARY",
    "generate_workflows",
    "classify_workflow",
    "summarize",
]
