"""Data-science workflow traces and the compressibility estimate (Table X).

The paper manually inspects 20 trending Kaggle notebooks over the 2015
Flight Delays and Netflix Shows datasets and classifies every array
operation as *compressible* (its lineage matches one of ProvRC's three
patterns: rectangular input ranges, absolute outputs, or outputs after a
relative transformation) or not, and records the longest operation chain.

Kaggle notebooks are not available offline, so this module reproduces the
*methodology* over generated workflow traces: a vocabulary of typical
pandas/numpy workflow operations (each labelled with its lineage pattern), a
generator that mixes data-exploration-heavy and machine-learning-heavy
workflows in the proportions the paper describes, and a classifier that
produces the same summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["WorkflowOp", "WorkflowTrace", "OP_VOCABULARY", "generate_workflows", "classify_workflow", "summarize"]


@dataclass(frozen=True)
class WorkflowOp:
    """One operation type seen in data-science notebooks."""

    name: str
    compressible: bool  # lineage matches ProvRC patterns 1-3
    chainable: bool = True  # produces an array consumed by later steps
    kind: str = "transform"  # "transform", "filter", "aggregate", "model"


# Operation vocabulary with compressibility labels.  Value filters and
# data-dependent row selections are the incompressible bulk, exactly as the
# paper observes; element-wise / structural / join / aggregation operations
# follow the three compressible patterns.
OP_VOCABULARY: Dict[str, WorkflowOp] = {
    op.name: op
    for op in [
        WorkflowOp("fillna", True),
        WorkflowOp("astype", True),
        WorkflowOp("rename_columns", True),
        WorkflowOp("select_columns", True),
        WorkflowOp("drop_columns", True),
        WorkflowOp("add_column_arithmetic", True),
        WorkflowOp("normalize", True),
        WorkflowOp("standard_scale", True),
        WorkflowOp("one_hot_encode", True),
        WorkflowOp("label_encode", True),
        WorkflowOp("merge_on_key", True),
        WorkflowOp("concat", True),
        WorkflowOp("groupby_aggregate", True),
        WorkflowOp("pivot_table", True),
        WorkflowOp("resample_time", True),
        WorkflowOp("rolling_mean", True),
        WorkflowOp("sort_values", True),
        WorkflowOp("date_parse", True),
        WorkflowOp("train_test_split", True),
        WorkflowOp("model_fit_predict", True, kind="model"),
        WorkflowOp("pca_transform", True, kind="model"),
        WorkflowOp("matrix_multiply", True),
        WorkflowOp("clip_values", True),
        WorkflowOp("log_transform", True),
        # incompressible: value-dependent row filters and samples
        WorkflowOp("filter_by_value", False, kind="filter"),
        WorkflowOp("dropna_rows", False, kind="filter"),
        WorkflowOp("drop_duplicates", False, kind="filter"),
        WorkflowOp("query_rows", False, kind="filter"),
        WorkflowOp("sample_rows", False, kind="filter"),
        WorkflowOp("outlier_removal", False, kind="filter"),
        WorkflowOp("value_counts", False, kind="aggregate"),
        WorkflowOp("unique_values", False, kind="aggregate"),
        WorkflowOp("string_extract", False),
        WorkflowOp("apply_lambda", False),
    ]
}


@dataclass
class WorkflowTrace:
    """One generated notebook: an ordered list of operation names and chain ids."""

    dataset: str
    style: str  # "exploration" or "ml"
    operations: List[str]
    chain_lengths: List[int]


# operation mixes per workflow style (probability of drawing a compressible op)
_STYLE_MIX = {
    # exploration notebooks: more value filters / inspection, shorter chains
    "exploration": {"compressible_p": 0.62, "ops_range": (25, 90), "chain_range": (4, 18)},
    # ML notebooks: long featurization chains, mostly compressible ops
    "ml": {"compressible_p": 0.82, "ops_range": (35, 120), "chain_range": (12, 45)},
}

_DATASET_STYLE_WEIGHTS = {
    # the Flight notebooks the paper samples skew slightly more toward ML
    "Flight": {"exploration": 0.45, "ml": 0.55},
    "Netflix": {"exploration": 0.6, "ml": 0.4},
}


def generate_workflows(dataset: str, n_workflows: int = 10, seed: int = 0) -> List[WorkflowTrace]:
    """Generate notebook-like workflow traces for one dataset."""
    if dataset not in _DATASET_STYLE_WEIGHTS:
        raise ValueError(f"unknown dataset {dataset!r}; expected Flight or Netflix")
    rng = np.random.default_rng(seed + hash(dataset) % 1000)
    compressible_names = [name for name, op in OP_VOCABULARY.items() if op.compressible]
    incompressible_names = [name for name, op in OP_VOCABULARY.items() if not op.compressible]

    styles = list(_DATASET_STYLE_WEIGHTS[dataset].keys())
    weights = np.array(list(_DATASET_STYLE_WEIGHTS[dataset].values()))
    traces = []
    for _ in range(n_workflows):
        style = str(rng.choice(styles, p=weights / weights.sum()))
        mix = _STYLE_MIX[style]
        n_ops = int(rng.integers(*mix["ops_range"]))
        operations = []
        for _ in range(n_ops):
            if rng.uniform() < mix["compressible_p"]:
                operations.append(str(rng.choice(compressible_names)))
            else:
                operations.append(str(rng.choice(incompressible_names)))
        n_chains = max(n_ops // int(rng.integers(*mix["chain_range"])), 1)
        lengths = rng.multinomial(n_ops, np.ones(n_chains) / n_chains)
        traces.append(
            WorkflowTrace(
                dataset=dataset,
                style=style,
                operations=operations,
                chain_lengths=[int(v) for v in lengths if v > 0],
            )
        )
    return traces


def classify_workflow(trace: WorkflowTrace) -> Dict[str, float]:
    """Classify one workflow: total ops, compressible ops, longest chain."""
    total = len(trace.operations)
    compressible = sum(1 for name in trace.operations if OP_VOCABULARY[name].compressible)
    return {
        "total_ops": float(total),
        "compressible_ops": float(compressible),
        "compressible_pct": 100.0 * compressible / total if total else 0.0,
        "longest_chain": float(max(trace.chain_lengths) if trace.chain_lengths else 0),
    }


def summarize(traces: Sequence[WorkflowTrace]) -> Dict[str, Tuple[float, float]]:
    """Mean and standard deviation of each Table X statistic over a trace set."""
    stats = [classify_workflow(trace) for trace in traces]
    summary = {}
    for key in ("total_ops", "compressible_ops", "compressible_pct", "longest_chain"):
        values = np.array([s[key] for s in stats])
        summary[key] = (float(values.mean()), float(values.std()))
    return summary
