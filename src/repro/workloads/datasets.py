"""Synthetic datasets standing in for the paper's external data.

The paper's storage and query experiments use a VIRAT surveillance frame
(with YOLOv4 + LIME/D-RISE) and the IMDB ``title.basics`` / ``title.episode``
tables; neither is available offline.  These generators produce numeric
stand-ins with the properties the experiments actually exercise:

* the frame has a bright object blob for the synthetic detector to find;
* the IMDB-like tables have a sorted join key (``tconst``), a sorted
  ``startYear`` column and an unsorted low-cardinality ``isAdult`` column,
  which is what determines how well the columnar baselines compress the
  captured relational lineage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..capture.explain import synthetic_frame

__all__ = ["ImdbLike", "make_imdb_like", "synthetic_frame", "make_feature_matrix"]


@dataclass
class ImdbLike:
    """Synthetic stand-ins for IMDB title.basics and title.episode."""

    basics: np.ndarray  # columns: tconst, startYear, isAdult, runtime, genres_code
    episode: np.ndarray  # columns: tconst, parent_tconst, season, episode

    @property
    def basics_columns(self) -> Tuple[str, ...]:
        return ("tconst", "startYear", "isAdult", "runtimeMinutes", "genres")

    @property
    def episode_columns(self) -> Tuple[str, ...]:
        return ("tconst", "parentTconst", "seasonNumber", "episodeNumber")


def make_imdb_like(n_basics: int = 5000, n_episodes: int = 3000, seed: int = 0) -> ImdbLike:
    """Generate the two IMDB-like tables used by the relational workloads."""
    rng = np.random.default_rng(seed)
    tconst = np.arange(n_basics, dtype=np.float64)  # sorted identifier
    start_year = np.sort(rng.integers(1950, 2024, size=n_basics)).astype(np.float64)  # sorted
    is_adult = rng.integers(0, 2, size=n_basics).astype(np.float64)  # unsorted, binary
    runtime = rng.integers(20, 240, size=n_basics).astype(np.float64)
    genres = rng.integers(0, 28, size=n_basics).astype(np.float64)
    basics = np.stack([tconst, start_year, is_adult, runtime, genres], axis=1)

    episode_tconst = np.sort(rng.choice(n_basics, size=n_episodes, replace=True)).astype(np.float64)
    parent = rng.choice(n_basics, size=n_episodes, replace=True).astype(np.float64)
    season = rng.integers(1, 15, size=n_episodes).astype(np.float64)
    episode_no = rng.integers(1, 25, size=n_episodes).astype(np.float64)
    episode = np.stack([episode_tconst, parent, season, episode_no], axis=1)
    return ImdbLike(basics=basics, episode=episode)


def make_feature_matrix(rows: int = 1000, cols: int = 16, seed: int = 0) -> np.ndarray:
    """A machine-learning style feature matrix (rows of examples)."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(rows, cols))
    # sprinkle NaNs so the relational pipeline's NaN filter has work to do
    mask = rng.uniform(size=data.shape) < 0.02
    data[mask] = np.nan
    return data
