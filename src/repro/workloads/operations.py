"""The twelve individual operations of the compression experiment (Table VII).

Each workload builds the cell-level lineage relation(s) of one data-science
operation, spanning the paper's three groups:

1. numpy operations with data-independent lineage (Negative, Addition,
   Aggregate, Repetition, Matrix*Vector, Matrix*Matrix) and two
   value-dependent ones (Sort, ImgFilter);
2. explainable-AI capture over an object detector (Lime, DRISE);
3. relational operations with custom capture (Group By, Inner Join).

Sizes default to a laptop-scale fraction of the paper's arrays (which go up
to a million cells and, for Matrix*Matrix, billions of lineage rows); every
builder takes a ``scale`` knob so the harness can sweep sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..capture.analytic import (
    axis_reduction_lineage,
    elementwise_lineage,
    matmat_lineage,
    matvec_lineage,
    repetition_lineage,
    selection_lineage,
)
from ..capture.explain import SyntheticDetector, drise_capture, lime_capture
from ..capture.relational import group_by_capture, inner_join_capture
from ..core.relation import LineageRelation
from .datasets import make_imdb_like, synthetic_frame

__all__ = ["CompressionWorkload", "compression_workloads", "build_workload"]


@dataclass(frozen=True)
class CompressionWorkload:
    """One Table VII operation: a name plus a lineage builder."""

    name: str
    group: str  # "numpy", "xai" or "relational"
    build: Callable[[float], List[LineageRelation]]
    value_dependent: bool = False


def _negative(scale: float) -> List[LineageRelation]:
    n = int(250_000 * scale)
    return [elementwise_lineage((n,), in_name="A", out_name="B")]


def _addition(scale: float) -> List[LineageRelation]:
    n = int(250_000 * scale)
    return [
        elementwise_lineage((n,), in_name="A1", out_name="B"),
        elementwise_lineage((n,), in_name="A2", out_name="B"),
    ]


def _aggregate(scale: float) -> List[LineageRelation]:
    rows = int(500 * max(scale, 0.01) ** 0.5)
    cols = int(500 * max(scale, 0.01) ** 0.5)
    return [axis_reduction_lineage((rows, cols), axis=1, in_name="A", out_name="B")]


def _repetition(scale: float) -> List[LineageRelation]:
    n = int(60_000 * scale)
    return [repetition_lineage(n, 4, in_name="A", out_name="B")]


def _matvec(scale: float) -> List[LineageRelation]:
    side = int(500 * max(scale, 0.01) ** 0.5)
    return [matvec_lineage(side, side, in_name="M", out_name="y")]


def _matmat(scale: float) -> List[LineageRelation]:
    side = int(100 * max(scale, 0.01) ** (1.0 / 3.0))
    return [matmat_lineage(side, side, side, in_name="M1", out_name="P")]


def _sort(scale: float) -> List[LineageRelation]:
    n = int(250_000 * scale)
    rng = np.random.default_rng(7)
    order = np.argsort(rng.normal(size=n), kind="stable")
    return [selection_lineage(order, (n,), in_name="A", out_name="B")]


def _img_filter(scale: float) -> List[LineageRelation]:
    """Adaptive 3x3 smoothing: bright pixels read their neighbourhood."""
    side = int(128 * max(scale, 0.01) ** 0.5)
    frame = synthetic_frame(side, side, seed=3)
    bright = frame > 0.5
    pairs = []
    for y in range(side):
        for x in range(side):
            if bright[y, x]:
                for dy in (-1, 0, 1):
                    for dx in (-1, 0, 1):
                        ny, nx = y + dy, x + dx
                        if 0 <= ny < side and 0 <= nx < side:
                            pairs.append(((y, x), (ny, nx)))
            else:
                pairs.append(((y, x), (y, x)))
    relation = LineageRelation.from_pairs(pairs, (side, side), (side, side), in_name="Img", out_name="Out")
    return [relation]


def _lime(scale: float) -> List[LineageRelation]:
    side = int(64 * max(scale, 0.05) ** 0.5)
    frame = synthetic_frame(side, side, seed=11)
    detector = SyntheticDetector.around_blob(frame)
    relation = lime_capture(frame, detector, patch=max(side // 8, 2), samples=100, seed=11)
    relation.in_name, relation.out_name = "Frame", "Detection"
    return [relation]


def _drise(scale: float) -> List[LineageRelation]:
    side = int(64 * max(scale, 0.05) ** 0.5)
    frame = synthetic_frame(side, side, seed=13)
    detector = SyntheticDetector.around_blob(frame)
    relation = drise_capture(frame, detector, samples=80, seed=13)
    relation.in_name, relation.out_name = "Frame", "Detection"
    return [relation]


def _group_by(scale: float) -> List[LineageRelation]:
    imdb = make_imdb_like(n_basics=int(4000 * scale) + 10, seed=5)
    _, relations = group_by_capture(imdb.basics, key_col=4, value_col=3)  # genres, runtime
    relation = relations["table"]
    relation.in_name, relation.out_name = "Basics", "Grouped"
    return [relation]


def _inner_join(scale: float) -> List[LineageRelation]:
    imdb = make_imdb_like(n_basics=int(3000 * scale) + 10, n_episodes=int(2000 * scale) + 10, seed=6)
    _, relations = inner_join_capture(imdb.basics, imdb.episode, left_on=0, right_on=0)
    left, right = relations["left"], relations["right"]
    left.in_name, left.out_name = "Basics", "Joined"
    right.in_name, right.out_name = "Episode", "Joined"
    return [left, right]


def compression_workloads() -> Dict[str, CompressionWorkload]:
    """The Table VII operation suite, keyed by display name."""
    workloads = [
        CompressionWorkload("Negative", "numpy", _negative),
        CompressionWorkload("Addition", "numpy", _addition),
        CompressionWorkload("Aggregate", "numpy", _aggregate),
        CompressionWorkload("Repetition", "numpy", _repetition),
        CompressionWorkload("Matrix*Vector", "numpy", _matvec),
        CompressionWorkload("Matrix*Matrix", "numpy", _matmat),
        CompressionWorkload("Sort", "numpy", _sort, value_dependent=True),
        CompressionWorkload("ImgFilter", "numpy", _img_filter, value_dependent=True),
        CompressionWorkload("Lime", "xai", _lime, value_dependent=True),
        CompressionWorkload("DRISE", "xai", _drise, value_dependent=True),
        CompressionWorkload("Group By", "relational", _group_by, value_dependent=True),
        CompressionWorkload("Inner Join", "relational", _inner_join, value_dependent=True),
    ]
    return {w.name: w for w in workloads}


def build_workload(name: str, scale: float = 1.0) -> List[LineageRelation]:
    """Build the lineage relations for one named Table VII operation."""
    return compression_workloads()[name].build(scale)
