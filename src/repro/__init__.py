"""repro: a reproduction of DSLog / ProvRC (ICDE 2024).

"Compression and In-Situ Query Processing for Fine-Grained Array Lineage"
— a storage system for cell-level array lineage built around the ProvRC
compression algorithm, in-situ θ-join query processing and lineage reuse.

Public entry points
-------------------
* :class:`repro.DSLog` — the lineage index (define arrays, register
  operations, run forward/backward path queries).
* :mod:`repro.core` — the ProvRC algorithm, compressed tables and the
  in-situ query processor.
* :mod:`repro.capture` — prototype capture methods (cell-level numpy
  tracking, explainable-AI capture, relational operators).
* :class:`repro.LineageService` — the concurrent ingest service: sharded
  multi-writer storage, async compression off the caller's path, group
  commit and snapshot-isolated readers.
* :class:`repro.QueryExecutor` / :class:`repro.LineageServer` /
  :class:`repro.LineageClient` — the serving tier: parallel shard
  fan-out behind a generation-keyed result cache, exposed over a stdlib
  HTTP JSON API (``dslog.serve(port)`` / ``LineageClient.connect(url)``).
* :mod:`repro.faults` — deterministic fault injection (:class:`FaultPlan`)
  and the failure-domain primitives (:class:`CircuitBreaker`, the
  structured :class:`DeadlineExceeded` / :class:`IngestOverloaded` /
  :class:`ShardUnavailable` errors) behind the self-healing storage and
  degraded-serving paths (``python -m repro.tools.scrub`` heals on disk).
* :mod:`repro.baselines` — the storage/query baselines of the evaluation.
* :mod:`repro.workloads` — workload and dataset generators.
* :mod:`repro.experiments` — one harness per paper table/figure.
"""

from .core.compressed import CompressedLineage
from .core.provrc import compress, compress_both
from .core.query import CellBoxSet, QueryResult
from .core.relation import LineageRelation
from .dslog import DSLog
from .faults import (
    CircuitBreaker,
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    IngestOverloaded,
    InjectedFault,
    ShardUnavailable,
)
from .graph import LineageGraph
from .service import (
    IngestTicket,
    LineageClient,
    LineageServer,
    LineageService,
    QueryExecutor,
    RPCClient,
    RPCServer,
    SnapshotDSLog,
)
from .storage.store import LineageStore

__version__ = "0.4.0"

__all__ = [
    "DSLog",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "CircuitBreaker",
    "DeadlineExceeded",
    "IngestOverloaded",
    "ShardUnavailable",
    "LineageRelation",
    "LineageGraph",
    "LineageStore",
    "LineageService",
    "IngestTicket",
    "SnapshotDSLog",
    "QueryExecutor",
    "LineageServer",
    "LineageClient",
    "RPCServer",
    "RPCClient",
    "CompressedLineage",
    "CellBoxSet",
    "QueryResult",
    "compress",
    "compress_both",
    "__version__",
]
