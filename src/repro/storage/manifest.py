"""The lineage store manifest: the catalog's durable metadata root.

``MANIFEST.json`` is the single source of truth for a segment-backed DSLog
directory.  It records every tracked array, every lineage entry (operation
name, reuse flag, entry version, and the ``(segment, offset, length)``
references of both ProvRC orientations), every operation record, the
serialized reuse-predictor state, and the list of live segment files.

Durability protocol
-------------------
* Segment records are appended first; the manifest is written *after*, via
  a temp file + ``fsync`` + atomic ``os.replace``.  A crash between the two
  leaves unreferenced segment bytes (harmless garbage) and the previous
  manifest generation intact — reopening always sees a consistent catalog.
* ``generation`` increases by one per save, so stale copies are detectable
  and tests can assert on write counts.
* Opening a directory costs O(manifest): no segment bytes are read until a
  table is actually queried.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_FORMAT",
    "Manifest",
    "load_manifest",
    "save_manifest",
    "dump_manifest",
    "write_manifest",
    "tuplify",
]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = "dslog-segment-store"
MANIFEST_FORMAT_VERSION = 1


@dataclass
class Manifest:
    """In-memory image of ``MANIFEST.json``."""

    generation: int = 0
    gzip: bool = True
    next_segment_id: int = 1
    arrays: Dict[str, List[int]] = field(default_factory=dict)
    entries: List[dict] = field(default_factory=list)
    operations: List[dict] = field(default_factory=list)
    segments: List[str] = field(default_factory=list)
    reuse: Optional[dict] = None

    def to_json(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "format_version": MANIFEST_FORMAT_VERSION,
            "generation": self.generation,
            "gzip": self.gzip,
            "next_segment_id": self.next_segment_id,
            "arrays": self.arrays,
            "entries": self.entries,
            "operations": self.operations,
            "segments": self.segments,
            "reuse": self.reuse,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Manifest":
        if data.get("format") != MANIFEST_FORMAT:
            raise ValueError(f"not a {MANIFEST_FORMAT} manifest")
        if int(data.get("format_version", 0)) > MANIFEST_FORMAT_VERSION:
            raise ValueError(
                f"manifest format version {data['format_version']} is newer "
                f"than this build supports ({MANIFEST_FORMAT_VERSION})"
            )
        return cls(
            generation=int(data["generation"]),
            gzip=bool(data["gzip"]),
            next_segment_id=int(data.get("next_segment_id", 1)),
            arrays={name: list(shape) for name, shape in data.get("arrays", {}).items()},
            entries=list(data.get("entries", [])),
            operations=list(data.get("operations", [])),
            segments=list(data.get("segments", [])),
            reuse=data.get("reuse"),
        )

    def iter_table_refs(self) -> Iterator[dict]:
        """Yield every table-reference dict the manifest holds (entries in
        both orientations plus reuse-state tables) — the live-record set a
        compaction must preserve.  The dicts are yielded by reference so a
        compaction can rewrite them in place before the next save."""
        for row in self.entries:
            yield row["backward"]
            yield row["forward"]
        if self.reuse:
            for section in ("base", "dim", "gen"):
                for item in self.reuse.get(section, []):
                    for _key, ref in item.get("tables", []):
                        yield ref


def load_manifest(root: Union[str, Path]) -> Optional[Manifest]:
    """Load the manifest of a store directory, or ``None`` when absent."""
    path = Path(root) / MANIFEST_NAME
    if not path.exists():
        return None
    return Manifest.from_json(json.loads(path.read_text(encoding="utf-8")))


def _json_safe(obj: Any) -> Any:
    """Fallback encoder for metadata values: numpy scalars round-trip as
    native numbers; anything else degrades to its repr (lossy but never a
    crash mid-sync)."""
    item = getattr(obj, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return repr(obj)


def dump_manifest(manifest: Manifest) -> str:
    """Bump the generation and serialize the manifest to its JSON text.

    Split out of :func:`save_manifest` so concurrent stores can serialize
    under a mutation lock (the manifest's dicts and row lists must not
    change mid-dump) while the slow part — the fsync'd file write of
    :func:`write_manifest` — runs outside any lock.
    """
    manifest.generation += 1
    return json.dumps(manifest.to_json(), separators=(",", ":"), default=_json_safe)


def write_manifest(root: Union[str, Path], data: str) -> None:
    """Atomically replace ``MANIFEST.json`` with pre-serialized text.

    The temp file is fsynced before the rename so a crash can only ever
    observe the old or the new complete manifest, never a torn one.
    """
    path = Path(root) / MANIFEST_NAME
    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def save_manifest(root: Union[str, Path], manifest: Manifest) -> int:
    """Atomically persist the manifest; returns the new generation."""
    write_manifest(root, dump_manifest(manifest))
    return manifest.generation


def tuplify(obj: Any) -> Any:
    """Recursively convert JSON lists back into the tuples DSLog keys on."""
    if isinstance(obj, list):
        return tuple(tuplify(item) for item in obj)
    return obj
