"""Storage manager internals: catalog, durable segment store, manifest.

The sharded multi-writer layer built on these pieces lives in
:mod:`repro.service.shards`."""

from .catalog import (
    AmbiguousLineageError,
    ArrayInfo,
    Catalog,
    LineageConflictError,
    LineageEntry,
    OperationRecord,
)
from .manifest import Manifest, load_manifest, save_manifest
from .segments import SegmentWriter, iter_records, read_record, valid_length
from .store import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_SEGMENT_MAX_BYTES,
    LineageStore,
    StoredCatalog,
    StoredLineageEntry,
    TableCache,
    TableRef,
)

__all__ = [
    "ArrayInfo",
    "Catalog",
    "LineageEntry",
    "OperationRecord",
    "LineageConflictError",
    "AmbiguousLineageError",
    "LineageStore",
    "StoredCatalog",
    "StoredLineageEntry",
    "TableCache",
    "TableRef",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_SEGMENT_MAX_BYTES",
    "Manifest",
    "load_manifest",
    "save_manifest",
    "SegmentWriter",
    "read_record",
    "iter_records",
    "valid_length",
]
