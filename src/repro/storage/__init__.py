"""Storage manager internals: catalog, durable segment store, manifest."""

from .catalog import (
    AmbiguousLineageError,
    ArrayInfo,
    Catalog,
    LineageConflictError,
    LineageEntry,
    OperationRecord,
)
from .store import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_SEGMENT_MAX_BYTES,
    LineageStore,
    StoredCatalog,
    StoredLineageEntry,
    TableCache,
    TableRef,
)

__all__ = [
    "ArrayInfo",
    "Catalog",
    "LineageEntry",
    "OperationRecord",
    "LineageConflictError",
    "AmbiguousLineageError",
    "LineageStore",
    "StoredCatalog",
    "StoredLineageEntry",
    "TableCache",
    "TableRef",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_SEGMENT_MAX_BYTES",
]
