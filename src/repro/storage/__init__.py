"""Storage manager internals: catalog of arrays, lineage entries, operations."""

from .catalog import ArrayInfo, Catalog, LineageEntry, OperationRecord

__all__ = ["ArrayInfo", "Catalog", "LineageEntry", "OperationRecord"]
