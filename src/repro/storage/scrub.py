"""Scrub-and-repair: the lineage store's fsck.

PR 3's crash-injection tests proved the *manifest protocol* sound — a
crash between segment append and manifest publish can only leave inert
garbage.  What that protocol cannot defend is corruption **inside** sealed
records: bit rot flipping payload bytes, a misdirected or short write
tearing a batch mid-file, a segment file truncated or deleted outright.
This module detects all of it against the manifest (the authoritative
record index) and, in repair mode, heals with zero valid-record loss:

Corruption classes
------------------
================== ====================================================
``checksum``       record frame intact, payload CRC32 mismatch (v2 files)
``misdirected``    frame and checksum intact but the payload is not this
                   entry's table — the ref points at some other (or no)
                   record, e.g. after a torn batch left dangling offsets
``truncated``      manifest ref reaches past the file, or the stored
                   length prefix disagrees with the manifest
``missing``        the referenced segment file does not exist at all
``torn tail``      unparseable bytes after a segment's structurally
                   valid region (a crash or short write mid-append)
``orphan``         a ``segment-*.seg`` file no manifest references
================== ====================================================

Repair contract
---------------
* A damaged **entry orientation** is rebuilt from its intact sibling:
  the backward and forward ProvRC tables are mutually derivable
  (``compress(other.decompress(), key=...)``), so one flipped byte never
  loses a lineage entry.  Only when *both* orientations are damaged is
  the entry dropped (reported in ``dropped_entries``).
* A damaged **reuse-state table** clears the reuse predictor's persisted
  state — it is advisory (re-learned from future ingests), never worth
  failing a repair over.
* Every still-valid record in a damaged segment is **evacuated**
  (byte-copied, checksums recomputed) into a fresh segment; the damaged
  file is then moved whole into a ``quarantine/`` sidecar directory next
  to a small JSON report of what was wrong with it, so no corrupt byte is
  ever silently destroyed.  Orphan files are quarantined the same way.
* The rewritten manifest is published through the store's normal atomic
  protocol (temp file + fsync + rename), and ref relocations are pushed
  into the store's remap chain — in-memory lazy entries keep resolving,
  exactly as across a compaction.

Entry points: :meth:`repro.storage.store.LineageStore.scrub`,
:meth:`repro.service.shards.ShardedLineageStore.scrub` (per shard),
:meth:`repro.dslog.DSLog.scrub`, the ``python -m repro.tools.scrub`` CLI,
and the server's ``POST /admin/scrub``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.serialize import peek_table_identity, serialize_table
from ..obs import REGISTRY, log_event
from .segments import CorruptRecordError, read_record, scan_segment
from .store import LineageStore, TableRef

__all__ = ["scrub_store", "QUARANTINE_DIR"]

QUARANTINE_DIR = "quarantine"

_SCRUBS = REGISTRY.counter(
    "dslog_scrubs_total", "Scrub passes by outcome", labelnames=("outcome",)
)
_SCRUB_CORRUPT = REGISTRY.counter(
    "dslog_scrub_corrupt_records_total", "Corrupt records found by scrub passes"
)
_SCRUB_REBUILT = REGISTRY.counter(
    "dslog_scrub_rebuilt_orientations_total",
    "Entry orientations rebuilt from their intact sibling",
)
_SCRUB_EVACUATED = REGISTRY.counter(
    "dslog_scrub_evacuated_records_total",
    "Valid records evacuated out of damaged segments",
)
_SCRUB_QUARANTINED = REGISTRY.counter(
    "dslog_scrub_quarantined_total", "Segment files moved to quarantine"
)


def _ref_status(root: Path, ref: TableRef) -> Tuple[str, Optional[bytes]]:
    """Validate one manifest ref against the bytes on disk.

    Returns ``(status, payload)`` where status is ``"ok"``, ``"checksum"``,
    ``"truncated"`` or ``"missing"`` (payload is ``None`` unless ok).
    """
    path = root / ref.segment
    if not path.exists():
        return "missing", None
    try:
        return "ok", read_record(path, ref.offset, ref.length)
    except CorruptRecordError:
        return "checksum", None
    except ValueError:
        return "truncated", None
    except OSError:
        return "truncated", None


def _segment_damage(root: Path, name: str, bad_refs: Dict[str, List[dict]]) -> Optional[dict]:
    """Damage report for one live segment (``None`` when pristine)."""
    path = root / name
    if not path.exists():
        return {"segment": name, "reason": "missing", "torn_bytes": 0}
    try:
        scan = scan_segment(path)
    except ValueError:
        # unreadable header: the whole file is damage
        return {
            "segment": name,
            "reason": "corrupt-header",
            "torn_bytes": path.stat().st_size,
        }
    reasons = []
    bad_here = [r for r in bad_refs.get(name, [])]
    if bad_here:
        reasons.append("corrupt-records")
    if not all(crc_ok for _off, _len, crc_ok in scan["records"]):
        reasons.append("checksum-mismatch")
    if scan["tail_bytes"] > 0:
        # bytes beyond the structurally valid prefix: either a torn tail
        # at EOF or a torn region mid-file with valid appends after it —
        # both leave unparseable bytes a byte-scan cannot skip
        reasons.append("torn")
    if not reasons:
        return None
    return {
        "segment": name,
        "reason": "+".join(reasons),
        "torn_bytes": scan["tail_bytes"],
    }


def _rebuild_orientation(store: LineageStore, sibling_payload: bytes, key: str) -> bytes:
    """Re-derive one orientation's serialized payload from the intact
    sibling: deserialize → decompress to the cell relation → re-compress
    keyed the other way → serialize in the store's on-disk format."""
    from ..core.provrc import compress
    from ..core.serialize import deserialize_table

    table = deserialize_table(sibling_payload)
    rebuilt = compress(table.decompress(), key=key)
    return serialize_table(rebuilt, gzip=store.gzip)


def scrub_store(store: LineageStore, repair: bool = False, serialize_lock=None) -> dict:
    """fsck one :class:`LineageStore` directory; see the module docstring.

    Detection always runs; *repair* additionally quarantines damaged and
    orphan segment files, evacuates their valid records, rebuilds or drops
    damaged entries, and atomically publishes the healed manifest.  The
    caller is responsible for exclusive access (DSLog and the sharded
    store's ``reopen_shard`` hold the appropriate locks).
    """
    root = store.root
    manifest = store.manifest
    # make every appended-but-unflushed record readable before checking it
    if store._writer is not None and store._writer.pending_bytes:
        store._writer.flush_pending()

    report: dict = {
        "root": str(root),
        "repair": bool(repair),
        "repaired": False,
        "segments_checked": 0,
        "records_checked": 0,
        "corrupt_records": [],
        "damaged_segments": [],
        "orphan_segments": [],
        "rebuilt_orientations": 0,
        "evacuated_records": 0,
        "dropped_entries": [],
        "reuse_state_dropped": False,
        "quarantined": [],
        "generation": None,
    }

    # ------------------------------------------------------------------
    # detect
    # ------------------------------------------------------------------
    bad_refs: Dict[str, List[dict]] = {}

    def note_bad(ref: TableRef, status: str, kind: str, detail: dict) -> None:
        row = {
            "segment": ref.segment,
            "offset": ref.offset,
            "length": ref.length,
            "class": status,
            "kind": kind,
            **detail,
        }
        report["corrupt_records"].append(row)
        bad_refs.setdefault(ref.segment, []).append(row)

    # entry refs, both orientations, resolved through any prior remaps
    entry_state: List[dict] = []  # per manifest row: refs, statuses, payloads
    for row in manifest.entries:
        pair = (row["in"], row["out"])
        state = {"row": row, "pair": pair}
        for orient in ("backward", "forward"):
            ref = store.resolve(TableRef.from_json(row[orient]))
            status, payload = _ref_status(root, ref)
            report["records_checked"] += 1
            if status == "ok":
                # the checksum proves the payload is intact, not that it
                # belongs to this row: verify the table's own identity
                expected_key = "output" if orient == "backward" else "input"
                try:
                    key_side, in_name, out_name = peek_table_identity(payload)
                    identity_ok = (in_name, out_name) == pair and key_side == expected_key
                except Exception:
                    identity_ok = False
                if not identity_ok:
                    status, payload = "misdirected", None
            state[orient] = (ref, status, payload)
            if status != "ok":
                note_bad(ref, status, f"entry-{orient}", {"pair": list(pair)})
        entry_state.append(state)

    # reuse-state refs
    reuse_refs: List[Tuple[TableRef, str]] = []
    if manifest.reuse:
        for section in ("base", "dim", "gen"):
            for item in manifest.reuse.get(section, []):
                for _key, ref_dict in item.get("tables", []):
                    ref = store.resolve(TableRef.from_json(ref_dict))
                    status, _payload = _ref_status(root, ref)
                    report["records_checked"] += 1
                    reuse_refs.append((ref, status))
                    if status != "ok":
                        note_bad(ref, status, "reuse-state", {})

    # per-segment structural damage (torn tails, unreferenced rot)
    for name in list(manifest.segments):
        report["segments_checked"] += 1
        damage = _segment_damage(root, name, bad_refs)
        if damage is not None:
            report["damaged_segments"].append(damage)

    # orphans: segment files no manifest generation references
    live = set(manifest.segments)
    for path in sorted(root.glob("segment-*.seg")):
        if path.name not in live:
            report["orphan_segments"].append(path.name)

    report["clean"] = not (
        report["corrupt_records"]
        or report["damaged_segments"]
        or report["orphan_segments"]
    )
    _SCRUBS.labels(outcome="clean" if report["clean"] else "corrupt").inc()
    if report["corrupt_records"]:
        _SCRUB_CORRUPT.inc(len(report["corrupt_records"]))
    log_event(
        "scrub_detect",
        level="info" if report["clean"] else "warning",
        component="scrub",
        root=str(root),
        clean=report["clean"],
        segments_checked=report["segments_checked"],
        records_checked=report["records_checked"],
        corrupt_records=len(report["corrupt_records"]),
        damaged_segments=len(report["damaged_segments"]),
        orphan_segments=len(report["orphan_segments"]),
    )
    if not repair or report["clean"]:
        return report

    # ------------------------------------------------------------------
    # repair
    # ------------------------------------------------------------------
    damaged_names = [d["segment"] for d in report["damaged_segments"]]
    qdir = root / QUARANTINE_DIR
    qdir.mkdir(exist_ok=True)

    # drop I/O state first: the active writer may sit on a damaged
    # segment, and evacuation must not race cached readers of moved files
    store.reset_io()

    # salvage target: a brand-new segment, never a damaged one
    damaged_set = set(damaged_names)
    manifest.segments = [n for n in manifest.segments if n not in damaged_set]
    writer = store.start_fresh_segment() if damaged_set else None
    remap: Dict[TableRef, TableRef] = {}

    def place(payload: bytes) -> TableRef:
        target = writer if writer is not None else store._active_writer()
        offset, length = target.append(payload)
        return TableRef(target.path.name, offset, length)

    def relocate(payload: bytes, old_ref: TableRef) -> TableRef:
        new_ref = remap.get(old_ref)
        if new_ref is None:
            new_ref = place(payload)
            remap[old_ref] = new_ref
        return new_ref

    # refs that belong to a valid record: a damaged ref that ALIASES one of
    # these (a misdirected row) must not claim it in the remap, or the
    # aliased entry's own evacuation would be misdirected in turn
    valid_refs = {
        ref
        for state in entry_state
        for orient in ("backward", "forward")
        for ref, status, _payload in [state[orient]]
        if status == "ok"
    }
    valid_refs.update(ref for ref, status in reuse_refs if status == "ok")

    def rebuild_ref(payload: bytes, old_ref: TableRef) -> TableRef:
        new_ref = place(payload)
        if old_ref not in valid_refs and old_ref not in remap:
            remap[old_ref] = new_ref  # in-memory lazy entries keep resolving
        return new_ref

    # heal every entry: evacuate good refs out of damaged segments,
    # rebuild damaged orientations from their siblings, drop only the
    # doubly-damaged
    surviving_rows = []
    for state in entry_state:
        row = state["row"]
        (b_ref, b_status, b_payload) = state["backward"]
        (f_ref, f_status, f_payload) = state["forward"]
        if b_status != "ok" and f_status != "ok":
            report["dropped_entries"].append(list(state["pair"]))
            continue
        if b_status != "ok":
            payload = _rebuild_orientation(store, f_payload, key="output")
            row["backward"] = rebuild_ref(payload, b_ref).to_json()
            report["rebuilt_orientations"] += 1
        elif b_ref.segment in damaged_set:
            row["backward"] = relocate(b_payload, b_ref).to_json()
            report["evacuated_records"] += 1
        if f_status != "ok":
            payload = _rebuild_orientation(store, b_payload, key="input")
            row["forward"] = rebuild_ref(payload, f_ref).to_json()
            report["rebuilt_orientations"] += 1
        elif f_ref.segment in damaged_set:
            row["forward"] = relocate(f_payload, f_ref).to_json()
            report["evacuated_records"] += 1
        surviving_rows.append(row)
    manifest.entries = surviving_rows

    # reuse state: evacuate intact tables, drop the whole state if any
    # table is damaged (it is advisory and re-learnable)
    if manifest.reuse:
        if any(status != "ok" for _ref, status in reuse_refs):
            manifest.reuse = None
            report["reuse_state_dropped"] = True
        else:
            for ref, _status in reuse_refs:
                if ref.segment in damaged_set:
                    payload = bytes(read_record(root / ref.segment, ref.offset, ref.length))
                    relocate(payload, ref)
                    report["evacuated_records"] += 1
            if remap:
                for ref_dict in manifest.iter_table_refs():
                    old = TableRef.from_json(ref_dict)
                    if old in remap:
                        ref_dict.update(remap[old].to_json())

    # publish the healed manifest before touching the damaged files: a
    # crash here leaves them referenced by nothing but the quarantine move
    report["generation"] = store.sync(serialize_lock=serialize_lock)
    store._remap.update(remap)

    # quarantine: move damaged + orphan files aside with a description
    def quarantine(name: str, why: dict) -> None:
        src = root / name
        if src.exists():
            src.replace(qdir / name)
        (qdir / f"{name}.json").write_text(
            json.dumps(why, indent=2, sort_keys=True), encoding="utf-8"
        )
        report["quarantined"].append(name)

    for damage in report["damaged_segments"]:
        quarantine(
            damage["segment"],
            {
                "reason": damage["reason"],
                "torn_bytes": damage["torn_bytes"],
                "corrupt_records": bad_refs.get(damage["segment"], []),
            },
        )
    for name in report["orphan_segments"]:
        quarantine(name, {"reason": "orphan"})

    report["repaired"] = True
    _SCRUBS.labels(outcome="repaired").inc()
    if report["rebuilt_orientations"]:
        _SCRUB_REBUILT.inc(report["rebuilt_orientations"])
    if report["evacuated_records"]:
        _SCRUB_EVACUATED.inc(report["evacuated_records"])
    if report["quarantined"]:
        _SCRUB_QUARANTINED.inc(len(report["quarantined"]))
    log_event(
        "scrub_repair",
        level="warning",
        component="scrub",
        root=str(root),
        rebuilt_orientations=report["rebuilt_orientations"],
        evacuated_records=report["evacuated_records"],
        dropped_entries=len(report["dropped_entries"]),
        quarantined=len(report["quarantined"]),
        generation=report["generation"],
    )
    return report
