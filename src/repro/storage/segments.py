"""Append-only segment files: the byte-level layer of the lineage store.

A segment is a flat file holding many ProvRC tables as length-prefixed
records.  The layout is deliberately trivial:

    +--------+---------+----------------+---------+----------------+ ...
    | "DSEG" | version | u32 length | payload | u32 length | payload | ...
    +--------+---------+----------------+---------+----------------+ ...

Records are only ever appended; a record becomes *live* when the manifest
(:mod:`repro.storage.manifest`) references its ``(segment, offset, length)``
triple and *dead* when no manifest reference remains (after an entry is
replaced, or mid-ingest bytes survived a crash before the manifest was
synced).  Readers therefore never need a segment-level index: the manifest
is the index, and anything it does not point at is garbage to be reclaimed
by :meth:`repro.storage.store.LineageStore.compact`.

Payloads are the serialized ProvRC tables of :mod:`repro.core.serialize`
(plain or ProvRC-GZip) — the same bytes the one-file-per-table legacy format
writes, just packed many-to-a-file.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Iterator, Tuple, Union

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_VERSION",
    "SEGMENT_HEADER_SIZE",
    "SegmentWriter",
    "read_record",
    "iter_records",
    "valid_length",
]

SEGMENT_MAGIC = b"DSEG"
SEGMENT_VERSION = 1
_HEADER = SEGMENT_MAGIC + struct.pack("<H", SEGMENT_VERSION)
SEGMENT_HEADER_SIZE = len(_HEADER)
_PREFIX = struct.Struct("<I")


def _check_header(data: bytes, path: Path) -> None:
    if data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        raise ValueError(f"{path} is not a DSLog segment file")
    (version,) = struct.unpack("<H", data[len(SEGMENT_MAGIC) : SEGMENT_HEADER_SIZE])
    if version != SEGMENT_VERSION:
        raise ValueError(f"{path} has unsupported segment version {version}")


class SegmentWriter:
    """Appends length-prefixed records to one segment file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = self.path.stat().st_size if self.path.exists() else 0
        self._fh = open(self.path, "ab")
        if existing == 0:
            self._fh.write(_HEADER)
            self._fh.flush()
            self._size = SEGMENT_HEADER_SIZE
        else:
            self._size = existing

    @property
    def size(self) -> int:
        """Current file size in bytes (records are appended at this offset)."""
        return self._size

    def append(self, payload: bytes) -> Tuple[int, int]:
        """Append one record; returns ``(offset, payload length)``.

        The offset addresses the record's length prefix, so a reader can
        verify the prefix against the manifest's recorded length before
        trusting the payload bytes.
        """
        offset = self._size
        self._fh.write(_PREFIX.pack(len(payload)))
        self._fh.write(payload)
        self._fh.flush()
        self._size = offset + _PREFIX.size + len(payload)
        return offset, len(payload)

    def sync(self) -> None:
        """Force appended records to stable storage."""
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Fsync and close.  The fsync matters on segment rollover: a
        manifest may be published (and old segments deleted by a
        compaction) while this file is no longer the active writer, so its
        records must already be durable when the handle is dropped."""
        if not self._fh.closed:
            self.sync()
            self._fh.close()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_record(path: Union[str, Path], offset: int, length: int) -> bytes:
    """Read one record's payload, validating the stored length prefix."""
    path = Path(path)
    with open(path, "rb") as fh:
        header = fh.read(SEGMENT_HEADER_SIZE)
        _check_header(header, path)
        fh.seek(offset)
        prefix = fh.read(_PREFIX.size)
        if len(prefix) != _PREFIX.size:
            raise ValueError(f"{path}: truncated record prefix at offset {offset}")
        (stored,) = _PREFIX.unpack(prefix)
        if stored != length:
            raise ValueError(
                f"{path}: record at offset {offset} has length {stored}, "
                f"manifest expected {length}"
            )
        payload = fh.read(length)
        if len(payload) != length:
            raise ValueError(f"{path}: truncated record payload at offset {offset}")
        return payload


def valid_length(path: Union[str, Path]) -> int:
    """Length of the segment's valid prefix: the offset just past the last
    *complete* record.  Bytes beyond it are a dangling tail — a crash
    mid-append — that no manifest can reference; recovery keeps them inert
    (new appends land after the physical end of file) and compaction drops
    them with the rest of the dead bytes."""
    path = Path(path)
    end = SEGMENT_HEADER_SIZE
    with open(path, "rb") as fh:
        header = fh.read(SEGMENT_HEADER_SIZE)
        _check_header(header, path)
        while True:
            prefix = fh.read(_PREFIX.size)
            if len(prefix) < _PREFIX.size:
                return end
            (length,) = _PREFIX.unpack(prefix)
            payload = fh.read(length)
            if len(payload) < length:
                return end
            end += _PREFIX.size + length


def iter_records(path: Union[str, Path]) -> Iterator[Tuple[int, bytes]]:
    """Yield every ``(offset, payload)`` in a segment, in append order.

    A trailing partial record (a crash mid-append) ends the iteration
    silently — those bytes are by definition not referenced by any manifest.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        header = fh.read(SEGMENT_HEADER_SIZE)
        _check_header(header, path)
        offset = SEGMENT_HEADER_SIZE
        while True:
            prefix = fh.read(_PREFIX.size)
            if len(prefix) < _PREFIX.size:
                return
            (length,) = _PREFIX.unpack(prefix)
            payload = fh.read(length)
            if len(payload) < length:
                return
            yield offset, payload
            offset += _PREFIX.size + length
