"""Append-only segment files: the byte-level layer of the lineage store.

A segment is a flat file holding many ProvRC tables as length-prefixed
records.  The layout is deliberately trivial:

    +--------+---------+----------------+---------+----------------+ ...
    | "DSEG" | version | u32 length | payload | u32 length | payload | ...
    +--------+---------+----------------+---------+----------------+ ...

Records are only ever appended; a record becomes *live* when the manifest
(:mod:`repro.storage.manifest`) references its ``(segment, offset, length)``
triple and *dead* when no manifest reference remains (after an entry is
replaced, or mid-ingest bytes survived a crash before the manifest was
synced).  Readers therefore never need a segment-level index: the manifest
is the index, and anything it does not point at is garbage to be reclaimed
by :meth:`repro.storage.store.LineageStore.compact`.

Payloads are the serialized ProvRC tables of :mod:`repro.core.serialize`
(plain or ProvRC-GZip) — the same bytes the one-file-per-table legacy format
writes, just packed many-to-a-file.

Two fast paths live here:

* :class:`SegmentWriter` **coalesces appends**: records accumulate in a
  pending buffer and reach the file as one ``write`` (plus one ``fsync``
  on :meth:`~SegmentWriter.sync`) per batch — the storage half of the
  service's group commit, where every operation of a commit window shares
  a single syscall pair per dirty shard instead of paying two writes and
  a flush each.  Offsets are assigned at ``append`` time, so manifest rows
  can be built before the bytes are flushed.
* :class:`SegmentReader` **maps the segment** and serves records as
  ``memoryview`` slices into the mapped pages — no per-record ``open``,
  header re-validation, ``seek`` or read copies.  Tables hydrated from a
  reader hold ``np.frombuffer`` views whose ``base`` chain keeps the mmap
  alive, so a reader (or the whole segment file, on POSIX) can be retired
  while outstanding views remain valid until the last one is released.
"""

from __future__ import annotations

import mmap
import os
import struct
import threading
from pathlib import Path
from typing import Iterator, List, Tuple, Union

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_VERSION",
    "SEGMENT_HEADER_SIZE",
    "SegmentWriter",
    "SegmentReader",
    "read_record",
    "iter_records",
    "valid_length",
]

SEGMENT_MAGIC = b"DSEG"
SEGMENT_VERSION = 1
_HEADER = SEGMENT_MAGIC + struct.pack("<H", SEGMENT_VERSION)
SEGMENT_HEADER_SIZE = len(_HEADER)
_PREFIX = struct.Struct("<I")


def _check_header(data: bytes, path: Path) -> None:
    if data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        raise ValueError(f"{path} is not a DSLog segment file")
    (version,) = struct.unpack("<H", data[len(SEGMENT_MAGIC) : SEGMENT_HEADER_SIZE])
    if version != SEGMENT_VERSION:
        raise ValueError(f"{path} has unsupported segment version {version}")


class SegmentWriter:
    """Appends length-prefixed records to one segment file, coalescing
    batches of appends into single writes.

    ``append`` only extends the in-memory pending buffer (assigning the
    record its final offset); ``flush_pending`` hands the whole batch to
    the OS as one write, and ``sync`` adds the fsync — so a group commit
    costs one syscall pair per segment regardless of batch size.  The
    file's 6-byte header is the exception: it is written eagerly at
    creation so the file is identifiable on disk from the first moment a
    manifest could name it.

    Thread-safe: appends arrive under the owning store's append lock, but
    ``flush_pending`` may also be called by a *reader* that needs bytes
    not yet handed to the OS (see ``LineageStore.load_table``), so the
    pending buffer is guarded by its own mutex.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = self.path.stat().st_size if self.path.exists() else 0
        self._fh = open(self.path, "ab")
        self._lock = threading.Lock()
        self._pending: List[bytes] = []
        self._pending_bytes = 0
        self.coalesced_writes = 0  # flushes that reached the OS
        self.coalesced_records = 0  # records covered by those flushes
        self._pending_records = 0
        if existing == 0:
            self._fh.write(_HEADER)
            self._fh.flush()
            self._size = SEGMENT_HEADER_SIZE
            self._flushed = SEGMENT_HEADER_SIZE
        else:
            self._size = existing
            self._flushed = existing

    @property
    def size(self) -> int:
        """Logical file size in bytes, pending buffer included (records are
        appended at this offset)."""
        return self._size

    @property
    def flushed_size(self) -> int:
        """Bytes actually handed to the OS (readable through the file)."""
        return self._flushed

    @property
    def pending_bytes(self) -> int:
        """Bytes appended but not yet written to the file."""
        return self._pending_bytes

    def append(self, payload: bytes) -> Tuple[int, int]:
        """Buffer one record; returns ``(offset, payload length)``.

        The offset addresses the record's length prefix, so a reader can
        verify the prefix against the manifest's recorded length before
        trusting the payload bytes.  The bytes reach the file on the next
        ``flush_pending``/``sync`` — one coalesced write per batch.
        """
        with self._lock:
            offset = self._size
            self._pending.append(_PREFIX.pack(len(payload)))
            self._pending.append(payload)
            self._pending_bytes += _PREFIX.size + len(payload)
            self._pending_records += 1
            self._size = offset + _PREFIX.size + len(payload)
            return offset, len(payload)

    def flush_pending(self) -> int:
        """Write the pending batch to the OS as one coalesced write;
        returns the number of bytes written (0 when nothing was pending)."""
        with self._lock:
            if not self._pending:
                return 0
            buffer = b"".join(self._pending)
            self._fh.write(buffer)
            self._fh.flush()
            self._pending = []
            self._pending_bytes = 0
            self._flushed += len(buffer)
            self.coalesced_writes += 1
            self.coalesced_records += self._pending_records
            self._pending_records = 0
            return len(buffer)

    def sync(self) -> int:
        """Force appended records to stable storage: one write of the whole
        pending batch, then one fsync.  Returns the bytes flushed."""
        flushed = self.flush_pending()
        os.fsync(self._fh.fileno())
        return flushed

    def close(self) -> None:
        """Fsync and close.  The fsync matters on segment rollover: a
        manifest may be published (and old segments deleted by a
        compaction) while this file is no longer the active writer, so its
        records must already be durable when the handle is dropped."""
        if not self._fh.closed:
            self.sync()
            self._fh.close()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SegmentReader:
    """Serves one segment's records as zero-copy views into mapped pages.

    The segment header is validated once at open; each ``read`` validates
    the record's length prefix against the manifest-recorded length (same
    contract as :func:`read_record`) and returns a ``memoryview`` into the
    mapping — no syscalls, no payload copy.  The mapping is refreshed
    lazily when a requested record lies beyond the mapped size (the file
    has grown since the last map).

    Lifecycle: ``close`` drops the reader's own reference to the mapping;
    if hydrated tables still hold views into it, the mapping simply stays
    alive through their ``base`` chain until the last view is released
    (``mmap.close`` refuses to tear down an exported buffer).  Deleting
    the underlying file is likewise safe on POSIX — mapped pages outlive
    the directory entry — which is what lets compaction retire a segment
    out from under live readers.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "rb")
        header = self._fh.read(SEGMENT_HEADER_SIZE)
        _check_header(header, self.path)
        self._lock = threading.Lock()
        self._mm: "mmap.mmap" = None
        self._mapped = 0
        self._remap_locked()

    def _remap_locked(self) -> None:
        size = os.fstat(self._fh.fileno()).st_size
        # the old mapping (if any) is only dereferenced, never closed:
        # outstanding views keep it alive, and GC reclaims it afterwards
        self._mm = mmap.mmap(self._fh.fileno(), size, access=mmap.ACCESS_READ)
        self._mapped = size

    @property
    def mapped_size(self) -> int:
        return self._mapped

    def read(self, offset: int, length: int) -> memoryview:
        """One record's payload as a zero-copy view, prefix-validated.

        Raises ``FileNotFoundError`` when the reader was closed (a
        compaction dropped it concurrently): ``close`` and ``read`` hold
        the same lock, so a ``None`` mapping here reliably means closed,
        and the store's retry loop re-resolves through the remap exactly
        as it did for a deleted file under the per-call read path.
        """
        end = offset + _PREFIX.size + length
        with self._lock:
            if self._mm is None:
                raise FileNotFoundError(f"{self.path}: segment reader closed")
            if end > self._mapped:
                self._remap_locked()
                if end > self._mapped:
                    raise ValueError(
                        f"{self.path}: truncated record payload at offset {offset}"
                    )
            (stored,) = _PREFIX.unpack_from(self._mm, offset)
            if stored != length:
                raise ValueError(
                    f"{self.path}: record at offset {offset} has length {stored}, "
                    f"manifest expected {length}"
                )
            return memoryview(self._mm)[offset + _PREFIX.size : end]

    def close(self) -> None:
        """Release the reader's handles.  Outstanding record views stay
        valid: an exported mapping cannot be closed, so it is dropped to
        the views' reference chain instead."""
        with self._lock:
            if self._mm is not None:
                try:
                    self._mm.close()
                except BufferError:
                    pass  # live views pin the pages; GC closes the map later
                self._mm = None
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "SegmentReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_record(path: Union[str, Path], offset: int, length: int) -> bytes:
    """Read one record's payload, validating the stored length prefix."""
    path = Path(path)
    with open(path, "rb") as fh:
        header = fh.read(SEGMENT_HEADER_SIZE)
        _check_header(header, path)
        fh.seek(offset)
        prefix = fh.read(_PREFIX.size)
        if len(prefix) != _PREFIX.size:
            raise ValueError(f"{path}: truncated record prefix at offset {offset}")
        (stored,) = _PREFIX.unpack(prefix)
        if stored != length:
            raise ValueError(
                f"{path}: record at offset {offset} has length {stored}, "
                f"manifest expected {length}"
            )
        payload = fh.read(length)
        if len(payload) != length:
            raise ValueError(f"{path}: truncated record payload at offset {offset}")
        return payload


def valid_length(path: Union[str, Path]) -> int:
    """Length of the segment's valid prefix: the offset just past the last
    *complete* record.  Bytes beyond it are a dangling tail — a crash
    mid-append — that no manifest can reference; recovery keeps them inert
    (new appends land after the physical end of file) and compaction drops
    them with the rest of the dead bytes."""
    path = Path(path)
    end = SEGMENT_HEADER_SIZE
    with open(path, "rb") as fh:
        header = fh.read(SEGMENT_HEADER_SIZE)
        _check_header(header, path)
        while True:
            prefix = fh.read(_PREFIX.size)
            if len(prefix) < _PREFIX.size:
                return end
            (length,) = _PREFIX.unpack(prefix)
            payload = fh.read(length)
            if len(payload) < length:
                return end
            end += _PREFIX.size + length


def iter_records(path: Union[str, Path]) -> Iterator[Tuple[int, bytes]]:
    """Yield every ``(offset, payload)`` in a segment, in append order.

    A trailing partial record (a crash mid-append) ends the iteration
    silently — those bytes are by definition not referenced by any manifest.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        header = fh.read(SEGMENT_HEADER_SIZE)
        _check_header(header, path)
        offset = SEGMENT_HEADER_SIZE
        while True:
            prefix = fh.read(_PREFIX.size)
            if len(prefix) < _PREFIX.size:
                return
            (length,) = _PREFIX.unpack(prefix)
            payload = fh.read(length)
            if len(payload) < length:
                return
            yield offset, payload
            offset += _PREFIX.size + length
