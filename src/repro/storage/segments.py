"""Append-only segment files: the byte-level layer of the lineage store.

A segment is a flat file holding many ProvRC tables as length-prefixed
records.  Two wire versions exist, distinguished by the file header:

    v1:  +--------+---------+------------+---------+ ...
         | "DSEG" | u16 = 1 | u32 length | payload | ...
         +--------+---------+------------+---------+ ...

    v2:  +--------+---------+------------+-----------+---------+ ...
         | "DSEG" | u16 = 2 | u32 length | u32 crc32 | payload | ...
         +--------+---------+------------+-----------+---------+ ...

v2 (the format every new segment is written in) adds a CRC32 of the
payload to each record, so a reader can tell *bit rot inside a sealed
record* — flipped bytes, a misdirected write — from the torn-tail and
truncation cases the length prefix already catches.  v1 segments remain
fully readable; the record format is a per-file property decided by the
header, and a writer appending to a pre-existing v1 file keeps writing v1
records so the file stays self-consistent.

Records are only ever appended; a record becomes *live* when the manifest
(:mod:`repro.storage.manifest`) references its ``(segment, offset, length)``
triple and *dead* when no manifest reference remains.  Readers never need
a segment-level index: the manifest is the index, and anything it does not
point at is garbage to be reclaimed by
:meth:`repro.storage.store.LineageStore.compact`.  ``length`` is always
the *payload* length; the per-record overhead (prefix + checksum) is a
function of the file's wire version.

Corruption classes and their exceptions:

* a length prefix that disagrees with the manifest, or bytes missing at
  the end of the file → ``ValueError`` (truncation / torn tail);
* a CRC mismatch on a v2 record → :class:`CorruptRecordError`;
* both are repairable by the scrub subsystem
  (:mod:`repro.storage.scrub`), which quarantines the bad bytes and
  salvages or rebuilds everything else.

Fault injection: writers and readers accept a
:class:`~repro.faults.FaultPlan` (plus a *scope* naming their failure
domain, e.g. ``"shard-01"``) and call it at the ``segment.write`` /
``segment.fsync`` / ``segment.read`` / ``segment.mmap`` sites, so every
recovery path above is exercisable deterministically.

Two fast paths live here:

* :class:`SegmentWriter` **coalesces appends**: records accumulate in a
  pending buffer and reach the file as one ``write`` (plus one ``fsync``
  on :meth:`~SegmentWriter.sync`) per batch — the storage half of the
  service's group commit.  Offsets are assigned at ``append`` time, so
  manifest rows can be built before the bytes are flushed.
* :class:`SegmentReader` **maps the segment** and serves records as
  ``memoryview`` slices into the mapped pages — no per-record ``open``,
  header re-validation, ``seek`` or read copies.  The CRC check streams
  the mapped bytes once per hydration (reads are cached above this
  layer), keeping the zero-copy property for the payload itself.
"""

from __future__ import annotations

import errno
import mmap
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..core.serialize import frame_header, parse_header
from ..faults import FaultPlan, InjectedFault
from ..obs import REGISTRY

_SEG_FLUSHES = REGISTRY.counter(
    "dslog_segment_flushes_total", "Coalesced batch writes that reached the OS"
)
_SEG_FLUSH_BYTES = REGISTRY.counter(
    "dslog_segment_flush_bytes_total", "Bytes handed to the OS by coalesced writes"
)
_SEG_FLUSH_RECORDS = REGISTRY.counter(
    "dslog_segment_flush_records_total", "Records covered by coalesced writes"
)
_SEG_TORN_WRITES = REGISTRY.counter(
    "dslog_segment_torn_writes_total", "Short writes that destroyed pending bytes"
)
_SEG_FSYNCS = REGISTRY.counter(
    "dslog_segment_fsyncs_total", "fsync durability barriers on segment files"
)
_SEG_READS = REGISTRY.counter(
    "dslog_segment_reads_total", "Record hydrations served from mapped segments"
)
_SEG_REMAPS = REGISTRY.counter(
    "dslog_segment_mmap_remaps_total", "Segment mmap creations and growth remaps"
)

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_VERSION",
    "SEGMENT_HEADER_SIZE",
    "CorruptRecordError",
    "SegmentWriter",
    "SegmentReader",
    "read_record",
    "iter_records",
    "valid_length",
    "scan_segment",
    "record_overhead",
]

SEGMENT_MAGIC = b"DSEG"
SEGMENT_VERSION = 2  # written by every new segment; v1 stays readable
SEGMENT_HEADER_SIZE = len(SEGMENT_MAGIC) + 2
_PREFIX = struct.Struct("<I")
_CRC = struct.Struct("<I")


def _header_bytes(version: int) -> bytes:
    return frame_header(SEGMENT_MAGIC, "H", version)


def _check_header(data: bytes, path: Path) -> int:
    """Validate the 6-byte header; returns the file's wire version."""
    try:
        (version,), _offset = parse_header(data, SEGMENT_MAGIC, "H", "DSLog segment file")
    except ValueError as error:
        raise ValueError(f"{path} is not a DSLog segment file: {error}") from None
    if version not in (1, 2):
        raise ValueError(f"{path} has unsupported segment version {version}")
    return version


def record_overhead(version: int) -> int:
    """Bytes of per-record framing before the payload (prefix [+ crc])."""
    return _PREFIX.size + (_CRC.size if version >= 2 else 0)


class CorruptRecordError(ValueError):
    """A record's payload bytes do not match its stored CRC32 (v2)."""

    def __init__(self, path, offset: int, stored: int, actual: int) -> None:
        super().__init__(
            f"{path}: record at offset {offset} fails its checksum "
            f"(stored 0x{stored:08x}, computed 0x{actual:08x})"
        )
        self.path = Path(path)
        self.offset = offset


class SegmentWriter:
    """Appends length-prefixed (and, on v2 files, checksummed) records to
    one segment file, coalescing batches of appends into single writes.

    ``append`` only extends the in-memory pending buffer (assigning the
    record its final offset); ``flush_pending`` hands the whole batch to
    the OS as one write, and ``sync`` adds the fsync — so a group commit
    costs one syscall pair per segment regardless of batch size.  The
    file's 6-byte header is the exception: it is written eagerly at
    creation so the file is identifiable on disk from the first moment a
    manifest could name it.  A pre-existing file's header decides the
    record format; new files are created at :data:`SEGMENT_VERSION`.

    Thread-safe: appends arrive under the owning store's append lock, but
    ``flush_pending`` may also be called by a *reader* that needs bytes
    not yet handed to the OS (see ``LineageStore.load_table``), so the
    pending buffer is guarded by its own mutex.

    *faults*/*scope*: injection points ``segment.write`` (inside
    ``flush_pending``; a ``short_write`` rule leaves a torn batch prefix
    on disk, exactly like a crash mid-write) and ``segment.fsync``
    (inside ``sync``, before the fsync — bytes are in the OS but not
    durable, the retryable window).
    """

    def __init__(
        self,
        path: Union[str, Path],
        faults: Optional[FaultPlan] = None,
        scope: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.faults = faults
        self.scope = scope
        existing = self.path.stat().st_size if self.path.exists() else 0
        if existing:
            with open(self.path, "rb") as fh:
                self.version = _check_header(fh.read(SEGMENT_HEADER_SIZE), self.path)
        else:
            self.version = SEGMENT_VERSION
        self._overhead = record_overhead(self.version)
        self._fh = open(self.path, "ab")
        self._lock = threading.Lock()
        self._pending: List[bytes] = []
        self._pending_bytes = 0
        self.coalesced_writes = 0  # flushes that reached the OS
        self.coalesced_records = 0  # records covered by those flushes
        self.torn_writes = 0  # short writes that destroyed pending bytes
        self._pending_records = 0
        if existing == 0:
            self._fh.write(_header_bytes(self.version))
            self._fh.flush()
            self._size = SEGMENT_HEADER_SIZE
            self._flushed = SEGMENT_HEADER_SIZE
        else:
            self._size = existing
            self._flushed = existing

    @property
    def size(self) -> int:
        """Logical file size in bytes, pending buffer included (records are
        appended at this offset)."""
        return self._size

    @property
    def flushed_size(self) -> int:
        """Bytes actually handed to the OS (readable through the file)."""
        return self._flushed

    @property
    def pending_bytes(self) -> int:
        """Bytes appended but not yet written to the file."""
        return self._pending_bytes

    def append(self, payload: bytes) -> Tuple[int, int]:
        """Buffer one record; returns ``(offset, payload length)``.

        The offset addresses the record's length prefix, so a reader can
        verify the prefix (and, on v2, the payload checksum) against the
        manifest's recorded length before trusting the payload bytes.  The
        bytes reach the file on the next ``flush_pending``/``sync`` — one
        coalesced write per batch.
        """
        with self._lock:
            offset = self._size
            self._pending.append(_PREFIX.pack(len(payload)))
            if self.version >= 2:
                self._pending.append(_CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF))
            self._pending.append(payload)
            self._pending_bytes += self._overhead + len(payload)
            self._pending_records += 1
            self._size = offset + self._overhead + len(payload)
            return offset, len(payload)

    def flush_pending(self) -> int:
        """Write the pending batch to the OS as one coalesced write;
        returns the number of bytes written (0 when nothing was pending).

        Fault semantics: an ``error``/``enospc`` rule fires *before* any
        byte is written — the pending buffer is kept and the flush is
        retryable.  A ``short_write`` rule writes a prefix of the batch,
        drops the rest (the bytes are gone, as after a crash), and raises
        — the torn state the scrub subsystem repairs.
        """
        with self._lock:
            if not self._pending:
                return 0
            buffer = b"".join(self._pending)
            if self.faults is not None:
                partial = self.faults.short_write("segment.write", self.scope, len(buffer))
                if partial is not None:
                    # a torn write: a prefix reaches the file, the rest is
                    # gone — scrub's territory.  The dropped region is
                    # padded with zeros so the promised offsets (already
                    # referenced by manifest rows) are never reassigned to
                    # later records: a dangling ref must read garbage, not
                    # some other entry's valid bytes.
                    self._fh.write(buffer[:partial])
                    self._fh.write(b"\x00" * (len(buffer) - partial))
                    self._fh.flush()
                    self._flushed += len(buffer)
                    self._pending = []
                    self._pending_bytes = 0
                    self._pending_records = 0
                    self.torn_writes += 1
                    _SEG_TORN_WRITES.inc()
                    raise InjectedFault(
                        "segment.write",
                        self.scope,
                        errno.EIO,
                        f"injected short write at segment.write ({self.scope}): "
                        f"{partial}/{len(buffer)} bytes reached {self.path.name}",
                    )
            self._fh.write(buffer)
            self._fh.flush()
            self._pending = []
            self._pending_bytes = 0
            self._flushed += len(buffer)
            self.coalesced_writes += 1
            self.coalesced_records += self._pending_records
            records = self._pending_records
            self._pending_records = 0
        _SEG_FLUSHES.inc()
        _SEG_FLUSH_BYTES.inc(len(buffer))
        _SEG_FLUSH_RECORDS.inc(records)
        return len(buffer)

    def sync(self) -> int:
        """Force appended records to stable storage: one write of the whole
        pending batch, then one fsync.  Returns the bytes flushed."""
        flushed = self.flush_pending()
        if self.faults is not None:
            self.faults.check("segment.fsync", self.scope)
        os.fsync(self._fh.fileno())
        _SEG_FSYNCS.inc()
        return flushed

    def close(self) -> None:
        """Fsync and close.  The fsync matters on segment rollover: a
        manifest may be published (and old segments deleted by a
        compaction) while this file is no longer the active writer, so its
        records must already be durable when the handle is dropped."""
        if not self._fh.closed:
            self.sync()
            self._fh.close()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SegmentReader:
    """Serves one segment's records as zero-copy views into mapped pages.

    The segment header is validated once at open; each ``read`` validates
    the record's length prefix against the manifest-recorded length (same
    contract as :func:`read_record`), verifies the payload CRC on v2
    files, and returns a ``memoryview`` into the mapping — no syscalls, no
    payload copy.  The mapping is refreshed lazily when a requested record
    lies beyond the mapped size (the file has grown since the last map).

    Lifecycle: ``close`` drops the reader's own reference to the mapping;
    if hydrated tables still hold views into it, the mapping simply stays
    alive through their ``base`` chain until the last view is released
    (``mmap.close`` refuses to tear down an exported buffer).  Deleting
    the underlying file is likewise safe on POSIX — mapped pages outlive
    the directory entry — which is what lets compaction retire a segment
    out from under live readers.
    """

    def __init__(
        self,
        path: Union[str, Path],
        faults: Optional[FaultPlan] = None,
        scope: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        self.faults = faults
        self.scope = scope
        if faults is not None:
            faults.check("segment.mmap", scope)
        self._fh = open(self.path, "rb")
        header = self._fh.read(SEGMENT_HEADER_SIZE)
        self.version = _check_header(header, self.path)
        self._overhead = record_overhead(self.version)
        self._lock = threading.Lock()
        self._mm: "mmap.mmap" = None
        self._mapped = 0
        self._remap_locked()

    def _remap_locked(self) -> None:
        size = os.fstat(self._fh.fileno()).st_size
        # the old mapping (if any) is only dereferenced, never closed:
        # outstanding views keep it alive, and GC reclaims it afterwards
        self._mm = mmap.mmap(self._fh.fileno(), size, access=mmap.ACCESS_READ)
        self._mapped = size
        _SEG_REMAPS.inc()

    @property
    def mapped_size(self) -> int:
        return self._mapped

    def read(self, offset: int, length: int) -> memoryview:
        """One record's payload as a zero-copy view, prefix- and (on v2)
        checksum-validated.

        Raises ``FileNotFoundError`` when the reader was closed (a
        compaction dropped it concurrently): ``close`` and ``read`` hold
        the same lock, so a ``None`` mapping here reliably means closed,
        and the store's retry loop re-resolves through the remap exactly
        as it did for a deleted file under the per-call read path.
        Raises :class:`CorruptRecordError` on a checksum mismatch — bit
        rot inside a sealed record, the scrub subsystem's territory.
        """
        if self.faults is not None:
            self.faults.check("segment.read", self.scope)
        _SEG_READS.inc()
        end = offset + self._overhead + length
        with self._lock:
            if self._mm is None:
                raise FileNotFoundError(f"{self.path}: segment reader closed")
            if end > self._mapped:
                self._remap_locked()
                if end > self._mapped:
                    raise ValueError(
                        f"{self.path}: truncated record payload at offset {offset}"
                    )
            (stored,) = _PREFIX.unpack_from(self._mm, offset)
            if stored != length:
                raise ValueError(
                    f"{self.path}: record at offset {offset} has length {stored}, "
                    f"manifest expected {length}"
                )
            payload = memoryview(self._mm)[offset + self._overhead : end]
            if self.version >= 2:
                (crc_stored,) = _CRC.unpack_from(self._mm, offset + _PREFIX.size)
                crc_actual = zlib.crc32(payload) & 0xFFFFFFFF
                if crc_stored != crc_actual:
                    raise CorruptRecordError(self.path, offset, crc_stored, crc_actual)
            return payload

    def close(self) -> None:
        """Release the reader's handles.  Outstanding record views stay
        valid: an exported mapping cannot be closed, so it is dropped to
        the views' reference chain instead."""
        with self._lock:
            if self._mm is not None:
                try:
                    self._mm.close()
                except BufferError:
                    pass  # live views pin the pages; GC closes the map later
                self._mm = None
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "SegmentReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_record(path: Union[str, Path], offset: int, length: int) -> bytes:
    """Read one record's payload, validating the stored length prefix and
    (on v2 segments) the payload checksum."""
    path = Path(path)
    with open(path, "rb") as fh:
        version = _check_header(fh.read(SEGMENT_HEADER_SIZE), path)
        fh.seek(offset)
        prefix = fh.read(_PREFIX.size)
        if len(prefix) != _PREFIX.size:
            raise ValueError(f"{path}: truncated record prefix at offset {offset}")
        (stored,) = _PREFIX.unpack(prefix)
        if stored != length:
            raise ValueError(
                f"{path}: record at offset {offset} has length {stored}, "
                f"manifest expected {length}"
            )
        crc_stored = None
        if version >= 2:
            crc = fh.read(_CRC.size)
            if len(crc) != _CRC.size:
                raise ValueError(f"{path}: truncated record checksum at offset {offset}")
            (crc_stored,) = _CRC.unpack(crc)
        payload = fh.read(length)
        if len(payload) != length:
            raise ValueError(f"{path}: truncated record payload at offset {offset}")
        if crc_stored is not None:
            crc_actual = zlib.crc32(payload) & 0xFFFFFFFF
            if crc_stored != crc_actual:
                raise CorruptRecordError(path, offset, crc_stored, crc_actual)
        return payload


def valid_length(path: Union[str, Path]) -> int:
    """Length of the segment's *structurally* valid prefix: the offset just
    past the last complete record.  Bytes beyond it are a dangling tail —
    a crash mid-append — that no manifest can reference; recovery keeps
    them inert (new appends land after the physical end of file) and
    compaction drops them with the rest of the dead bytes.  Checksums are
    deliberately not verified here (see :func:`scan_segment` for the full
    fsck pass): a flipped byte mid-file does not end the valid prefix."""
    path = Path(path)
    end = SEGMENT_HEADER_SIZE
    with open(path, "rb") as fh:
        version = _check_header(fh.read(SEGMENT_HEADER_SIZE), path)
        overhead = record_overhead(version)
        while True:
            framing = fh.read(overhead)
            if len(framing) < overhead:
                return end
            (length,) = _PREFIX.unpack_from(framing, 0)
            payload = fh.read(length)
            if len(payload) < length:
                return end
            end += overhead + length


def iter_records(path: Union[str, Path]) -> Iterator[Tuple[int, bytes]]:
    """Yield every ``(offset, payload)`` in a segment, in append order.

    A trailing partial record (a crash mid-append) ends the iteration
    silently — those bytes are by definition not referenced by any
    manifest.  Checksums are not verified (callers that care run
    :func:`scan_segment`).
    """
    path = Path(path)
    with open(path, "rb") as fh:
        version = _check_header(fh.read(SEGMENT_HEADER_SIZE), path)
        overhead = record_overhead(version)
        offset = SEGMENT_HEADER_SIZE
        while True:
            framing = fh.read(overhead)
            if len(framing) < overhead:
                return
            (length,) = _PREFIX.unpack_from(framing, 0)
            payload = fh.read(length)
            if len(payload) < length:
                return
            yield offset, payload
            offset += overhead + length


def scan_segment(path: Union[str, Path]) -> Dict[str, object]:
    """Full fsck pass over one segment: structure *and* checksums.

    Returns a dict with the file's ``version``, ``file_size``, the
    ``valid_prefix`` offset (same contract as :func:`valid_length`),
    ``tail_bytes`` beyond it, and ``records`` — one ``(offset, length,
    crc_ok)`` triple per complete record in append order (``crc_ok`` is
    always ``True`` on v1 files, which carry no checksum to disagree
    with).  The scrub subsystem drives its whole repair plan off this.
    """
    path = Path(path)
    records: List[Tuple[int, int, bool]] = []
    with open(path, "rb") as fh:
        version = _check_header(fh.read(SEGMENT_HEADER_SIZE), path)
        overhead = record_overhead(version)
        offset = SEGMENT_HEADER_SIZE
        while True:
            framing = fh.read(overhead)
            if len(framing) < overhead:
                break
            (length,) = _PREFIX.unpack_from(framing, 0)
            payload = fh.read(length)
            if len(payload) < length:
                break
            crc_ok = True
            if version >= 2:
                (crc_stored,) = _CRC.unpack_from(framing, _PREFIX.size)
                crc_ok = crc_stored == (zlib.crc32(payload) & 0xFFFFFFFF)
            records.append((offset, length, crc_ok))
            offset += overhead + length
    file_size = path.stat().st_size
    return {
        "version": version,
        "file_size": file_size,
        "valid_prefix": offset,
        "tail_bytes": file_size - offset,
        "records": records,
    }
