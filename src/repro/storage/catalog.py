"""The DSLog catalog: tracked arrays, lineage entries and operation records.

The catalog is the normalized relational layer of DSLog: every lineage
relationship between two tracked arrays is one entry holding both ProvRC
orientations (the backward table is the one counted for long-term storage,
mirroring the paper), and every ``register_operation`` call is one operation
record linking the per-pair lineage entries with the operation metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.compressed import CompressedLineage
from ..core.provrc import compress
from ..core.relation import LineageRelation
from ..core.serialize import serialize_compressed, serialize_compressed_gzip

__all__ = [
    "ArrayInfo",
    "LineageEntry",
    "OperationRecord",
    "Catalog",
    "LineageConflictError",
    "AmbiguousLineageError",
]


class LineageConflictError(ValueError):
    """Raised when an ingest would silently replace a stored lineage entry.

    Re-ingesting the same ``(input, output)`` pair is almost always a
    workflow bug (two operations writing the same edge); callers that mean
    it must say so with ``replace=True``, which versions the entry."""


class AmbiguousLineageError(ValueError):
    """Raised when both orientations of a pair exist and a direction-less
    lookup (``entry_between``) cannot tell which entry the caller means."""


@dataclass(frozen=True)
class ArrayInfo:
    """A tracked array: a name plus a declared shape."""

    name: str
    shape: Tuple[int, ...]

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def ncells(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count


@dataclass
class LineageEntry:
    """Stored lineage between one input array and one output array."""

    in_name: str
    out_name: str
    backward: CompressedLineage
    forward: CompressedLineage
    op_name: Optional[str] = None
    reused: bool = False
    # bumped each time the pair is explicitly re-ingested with replace=True,
    # so queries and audits can tell a versioned entry from the original
    version: int = 1

    def table_keyed_on(self, array_name: str) -> CompressedLineage:
        """Return the orientation whose key side is *array_name*."""
        if array_name == self.out_name:
            return self.backward
        if array_name == self.in_name:
            return self.forward
        raise KeyError(f"array {array_name!r} is not part of this lineage entry")

    def storage_bytes(self, gzip: bool = True) -> int:
        """On-disk footprint of the long-term (backward) representation."""
        if gzip:
            return len(serialize_compressed_gzip(self.backward))
        return len(serialize_compressed(self.backward))


@dataclass
class OperationRecord:
    """Metadata of one ``register_operation`` call."""

    op_name: str
    in_arrs: Tuple[str, ...]
    out_arrs: Tuple[str, ...]
    op_args: dict = field(default_factory=dict)
    reuse_level: Optional[str] = None
    entries: List[Tuple[str, str]] = field(default_factory=list)


class Catalog:
    """In-memory catalog of arrays, lineage entries and operations."""

    def __init__(self) -> None:
        self.arrays: Dict[str, ArrayInfo] = {}
        self._entries: Dict[Tuple[str, str], LineageEntry] = {}
        self.operations: List[OperationRecord] = []
        # the catalog's generation counter: bumped whenever the entry set
        # changes, so path-resolution caches (DSLog.prov_query) and the
        # incrementally maintained lineage graph (LineageGraph.refresh)
        # can cheaply detect staleness.  Concurrent readers may observe it
        # one bump behind the dicts — consumers must key derived state on
        # the value read *before* resolving entries, never after.
        self.version = 0

    # ------------------------------------------------------------------
    # arrays
    # ------------------------------------------------------------------
    def define_array(self, name: str, shape: Tuple[int, ...]) -> ArrayInfo:
        info = ArrayInfo(name=name, shape=tuple(int(d) for d in shape))
        existing = self.arrays.get(name)
        if existing is not None and existing.shape != info.shape:
            raise ValueError(
                f"array {name!r} already defined with shape {existing.shape}, "
                f"cannot redefine with {info.shape}"
            )
        self.arrays[name] = info
        return info

    def array(self, name: str) -> ArrayInfo:
        try:
            return self.arrays[name]
        except KeyError:
            raise KeyError(f"array {name!r} is not defined in the catalog") from None

    # ------------------------------------------------------------------
    # lineage entries
    # ------------------------------------------------------------------
    def add_relation(
        self,
        relation: LineageRelation,
        op_name: Optional[str] = None,
        reused: bool = False,
        replace: bool = False,
    ) -> LineageEntry:
        """Compress a relation into both orientations and store the entry."""
        backward = compress(relation, key="output")
        forward = compress(relation, key="input")
        return self.add_compressed(
            backward, forward, op_name=op_name, reused=reused, replace=replace
        )

    def add_compressed(
        self,
        backward: CompressedLineage,
        forward: CompressedLineage,
        op_name: Optional[str] = None,
        reused: bool = False,
        replace: bool = False,
    ) -> LineageEntry:
        if backward.key_side != "output" or forward.key_side != "input":
            raise ValueError("backward/forward tables have the wrong orientation")
        pair = (backward.in_name, backward.out_name)
        existing = self._entries.get(pair)
        if existing is not None and not replace:
            raise LineageConflictError(
                f"lineage between {pair[0]!r} and {pair[1]!r} already stored "
                f"(op {existing.op_name!r}); pass replace=True to version it"
            )
        entry = LineageEntry(
            in_name=pair[0],
            out_name=pair[1],
            backward=backward,
            forward=forward,
            op_name=op_name,
            reused=reused,
            version=existing.version + 1 if existing is not None else 1,
        )
        self._entries[pair] = entry
        self.version += 1
        return entry

    def entry(self, in_name: str, out_name: str) -> LineageEntry:
        try:
            return self._entries[(in_name, out_name)]
        except KeyError:
            raise KeyError(f"no lineage stored between {in_name!r} and {out_name!r}") from None

    def entries(self) -> List[LineageEntry]:
        return list(self._entries.values())

    def entry_pairs(self) -> List[Tuple[str, str]]:
        """Every stored ``(input, output)`` pair, in insertion order."""
        return list(self._entries.keys())

    def entry_between(self, first: str, second: str) -> Tuple[LineageEntry, str]:
        """Find the lineage entry linking two arrays in either direction.

        Returns ``(entry, direction)`` where direction is ``"forward"`` when
        *first* is the entry's input array and ``"backward"`` otherwise.
        When both orientations were ingested (a cycle of length two), the
        lookup is ambiguous — picking one would silently answer the query
        with the stale orientation — so it raises instead; use
        :meth:`entry` with the explicit ``(in, out)`` pair.
        """
        forward = self._entries.get((first, second))
        backward = self._entries.get((second, first))
        if forward is not None and backward is not None:
            raise AmbiguousLineageError(
                f"lineage stored in both directions between {first!r} and "
                f"{second!r}; resolve with entry(in_name, out_name)"
            )
        if forward is not None:
            return forward, "forward"
        if backward is not None:
            return backward, "backward"
        raise KeyError(f"no lineage stored between {first!r} and {second!r}")

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def add_operation(self, record: OperationRecord) -> None:
        self.operations.append(record)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def storage_bytes(self, gzip: bool = True) -> int:
        """Total long-term storage of every lineage entry in the catalog."""
        return sum(entry.storage_bytes(gzip=gzip) for entry in self.entries())

    def __len__(self) -> int:
        return len(self._entries)
