"""The durable, segment-based lineage store (``LineageStore``).

This is the storage engine behind ``DSLog(root, backend="segment")``: many
ProvRC tables packed into append-only segment files
(:mod:`repro.storage.segments`), indexed by one atomic JSON manifest
(:mod:`repro.storage.manifest`), read back *lazily* through an LRU table
cache with a byte budget.

Design points
-------------
* **O(manifest) open** — ``StoredCatalog`` hydrates lazy
  :class:`StoredLineageEntry` objects from manifest rows; no segment bytes
  are read (and no table is deserialized) until a query touches an entry.
  ``LineageStore.tables_deserialized`` counts actual decodes so tests and
  benchmarks can prove it.
* **Both orientations persisted** — the legacy one-file-per-table format
  stored only the backward table and rebuilt the forward orientation at
  load by decompressing and re-compressing every table; segments store both
  so reopening never touches table bytes at all.  Storage accounting
  (``storage_bytes``) still counts only the backward orientation, matching
  the paper's long-term storage metric.
* **Crash safety** — segment appends happen before the manifest save; the
  manifest is swapped in atomically.  Unreferenced segment bytes are inert
  garbage until :meth:`LineageStore.compact` rewrites the live records into
  fresh segments and deletes the old files.
* **LRU byte budget** — materialized tables live in
  :class:`TableCache`; once the configured budget is exceeded the least
  recently used tables are dropped and will be re-read from their segment
  on next use, so catalogs larger than memory stay queryable.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Dict, NamedTuple, Optional, Tuple, Union

from ..core.compressed import CompressedLineage
from ..core.serialize import deserialize_table, serialize_table
from .catalog import Catalog, LineageEntry
from .manifest import Manifest, load_manifest, save_manifest
from .segments import SegmentWriter, read_record

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_SEGMENT_MAX_BYTES",
    "TableRef",
    "TableCache",
    "StoredLineageEntry",
    "LineageStore",
    "StoredCatalog",
]

DEFAULT_CACHE_BYTES = 256 * 1024 * 1024
DEFAULT_SEGMENT_MAX_BYTES = 16 * 1024 * 1024


class TableRef(NamedTuple):
    """Address of one serialized table inside a segment file."""

    segment: str
    offset: int
    length: int

    def to_json(self) -> dict:
        return {"segment": self.segment, "offset": self.offset, "length": self.length}

    @classmethod
    def from_json(cls, data: dict) -> "TableRef":
        return cls(str(data["segment"]), int(data["offset"]), int(data["length"]))


class TableCache:
    """LRU cache of materialized tables under an in-memory byte budget."""

    def __init__(self, budget_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.budget_bytes = int(budget_bytes)
        self._items: "OrderedDict[TableRef, CompressedLineage]" = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._items)

    def get(self, ref: TableRef) -> Optional[CompressedLineage]:
        table = self._items.get(ref)
        if table is None:
            self.misses += 1
            return None
        self._items.move_to_end(ref)
        self.hits += 1
        return table

    def put(self, ref: TableRef, table: CompressedLineage) -> None:
        if ref in self._items:
            self._items.move_to_end(ref)
            return
        self._items[ref] = table
        self.current_bytes += table.nbytes()
        # evict least recently used down to the budget, but never the entry
        # just inserted: a single oversized table would otherwise thrash
        while self.current_bytes > self.budget_bytes and len(self._items) > 1:
            _old_ref, old_table = self._items.popitem(last=False)
            self.current_bytes -= old_table.nbytes()
            self.evictions += 1

    def clear(self) -> None:
        self._items.clear()
        self.current_bytes = 0

    def stats(self) -> dict:
        return {
            "tables": len(self._items),
            "bytes": self.current_bytes,
            "budget_bytes": self.budget_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class StoredLineageEntry:
    """A catalog entry whose tables live in segments until first touched.

    Duck-typed against :class:`~repro.storage.catalog.LineageEntry`
    (``in_name`` / ``out_name`` / ``op_name`` / ``reused`` / ``version`` /
    ``backward`` / ``forward`` / ``table_keyed_on`` / ``storage_bytes``);
    the two orientation attributes are properties that pull the table
    through the store's LRU cache on access.
    """

    __slots__ = ("store", "in_name", "out_name", "op_name", "reused", "version",
                 "backward_ref", "forward_ref")

    def __init__(
        self,
        store: "LineageStore",
        in_name: str,
        out_name: str,
        backward_ref: TableRef,
        forward_ref: TableRef,
        op_name: Optional[str] = None,
        reused: bool = False,
        version: int = 1,
    ) -> None:
        self.store = store
        self.in_name = in_name
        self.out_name = out_name
        self.backward_ref = backward_ref
        self.forward_ref = forward_ref
        self.op_name = op_name
        self.reused = reused
        self.version = version

    @property
    def backward(self) -> CompressedLineage:
        return self.store.load_table(self.backward_ref)

    @property
    def forward(self) -> CompressedLineage:
        return self.store.load_table(self.forward_ref)

    def table_keyed_on(self, array_name: str) -> CompressedLineage:
        if array_name == self.out_name:
            return self.backward
        if array_name == self.in_name:
            return self.forward
        raise KeyError(f"array {array_name!r} is not part of this lineage entry")

    def storage_bytes(self, gzip: bool = True) -> int:
        """Long-term (backward) footprint.  When the requested format is the
        one on disk this is just the manifest-recorded record length — no
        table bytes are touched."""
        if gzip == self.store.gzip:
            return self.backward_ref.length
        return len(serialize_table(self.backward, gzip=gzip))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoredLineageEntry({self.in_name}->{self.out_name}, "
            f"segment={self.backward_ref.segment})"
        )


class LineageStore:
    """Segment files + manifest + table cache for one catalog directory."""

    def __init__(
        self,
        root: Union[str, Path],
        gzip: bool = True,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        existing = load_manifest(self.root)
        if existing is not None:
            self.manifest = existing
            self.gzip = existing.gzip  # the on-disk format is authoritative
        else:
            self.manifest = Manifest(gzip=gzip)
            self.gzip = gzip
        self.segment_max_bytes = int(segment_max_bytes)
        self.cache = TableCache(cache_bytes)
        self.tables_deserialized = 0
        self._writer: Optional[SegmentWriter] = None
        # refs invalidated by compaction resolve through this chain for the
        # rest of the session (the manifest itself is rewritten in place)
        self._remap: Dict[TableRef, TableRef] = {}
        self._drop_orphan_segments()

    # ------------------------------------------------------------------
    # segment management
    # ------------------------------------------------------------------
    def _segment_path(self, name: str) -> Path:
        return self.root / name

    def _new_segment_name(self) -> str:
        name = f"segment-{self.manifest.next_segment_id:06d}.seg"
        self.manifest.next_segment_id += 1
        return name

    def _drop_orphan_segments(self) -> None:
        """Remove segment files no manifest generation references (leftovers
        of a crash between writing fresh segments and swapping the manifest)."""
        live = set(self.manifest.segments)
        for path in self.root.glob("segment-*.seg"):
            if path.name not in live:
                path.unlink()

    def _active_writer(self) -> SegmentWriter:
        if self._writer is not None and self._writer.size < self.segment_max_bytes:
            return self._writer
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        if self.manifest.segments:
            last = self._segment_path(self.manifest.segments[-1])
            if last.exists() and last.stat().st_size < self.segment_max_bytes:
                self._writer = SegmentWriter(last)
                return self._writer
        name = self._new_segment_name()
        self.manifest.segments.append(name)
        self._writer = SegmentWriter(self._segment_path(name))
        return self._writer

    # ------------------------------------------------------------------
    # table I/O
    # ------------------------------------------------------------------
    def append_table(self, table: CompressedLineage) -> TableRef:
        """Serialize one table into the active segment; returns its ref.

        The ref is also remembered on the table object itself
        (``_segment_ref``) so a later reuse-state export can reference the
        already-written bytes instead of appending a duplicate record.
        """
        writer = self._active_writer()
        payload = serialize_table(table, gzip=self.gzip)
        offset, length = writer.append(payload)
        ref = TableRef(writer.path.name, offset, length)
        table._segment_ref = ref
        self.cache.put(ref, table)
        return ref

    def ref_for(self, table: CompressedLineage) -> Optional[TableRef]:
        """The segment ref this table was written at (or loaded from), if
        any, resolved through any compactions since."""
        ref = getattr(table, "_segment_ref", None)
        return self.resolve(ref) if ref is not None else None

    def resolve(self, ref: TableRef) -> TableRef:
        """Follow the compaction remap chain to the ref's current address."""
        while ref in self._remap:
            ref = self._remap[ref]
        return ref

    def load_table(self, ref: TableRef) -> CompressedLineage:
        ref = self.resolve(ref)
        table = self.cache.get(ref)
        if table is not None:
            return table
        payload = read_record(self._segment_path(ref.segment), ref.offset, ref.length)
        table = deserialize_table(payload)
        self.tables_deserialized += 1
        table._segment_ref = ref
        self.cache.put(ref, table)
        return table

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def sync(self) -> int:
        """Fsync appended records, then atomically publish the manifest."""
        if self._writer is not None:
            self._writer.sync()
        return save_manifest(self.root, self.manifest)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    # ------------------------------------------------------------------
    # accounting + compaction
    # ------------------------------------------------------------------
    def segment_bytes(self) -> int:
        """Bytes currently occupied by all live segment files."""
        total = 0
        for name in self.manifest.segments:
            path = self._segment_path(name)
            if path.exists():
                total += path.stat().st_size
        if self._writer is not None:
            # the active writer may be ahead of the filesystem metadata
            total = max(total, self._writer.size)
        return total

    def live_bytes(self) -> int:
        """Payload bytes reachable from the manifest (live records only)."""
        return sum(ref["length"] for ref in self.manifest.iter_table_refs())

    def compact(self) -> dict:
        """Rewrite every live record into fresh segments, drop the rest.

        The manifest must reflect the state to preserve (callers sync
        first).  Live payloads are copied byte-for-byte — no table is
        deserialized — into new segment files; every ref dict inside the
        manifest is rewritten in place, the manifest is atomically swapped,
        and only then are the old segment files deleted.  A crash anywhere
        in between leaves either the old or the new generation fully
        intact.  Returns a stats dict (bytes before/after, records copied).
        """
        bytes_before = self.segment_bytes()
        old_segments = list(self.manifest.segments)
        self.close()

        self.manifest.segments = []
        copied = 0
        mapping: Dict[TableRef, TableRef] = {}
        for ref_dict in self.manifest.iter_table_refs():
            old_ref = self.resolve(TableRef.from_json(ref_dict))
            new_ref = mapping.get(old_ref)
            if new_ref is None:
                payload = read_record(
                    self._segment_path(old_ref.segment), old_ref.offset, old_ref.length
                )
                writer = self._active_writer()
                offset, length = writer.append(payload)
                new_ref = TableRef(writer.path.name, offset, length)
                mapping[old_ref] = new_ref
                copied += 1
            ref_dict.update(new_ref.to_json())
        self.sync()

        for name in old_segments:
            path = self._segment_path(name)
            if path.exists():
                path.unlink()
        self._remap.update(mapping)
        self.cache.clear()
        return {
            "records_copied": copied,
            "segments_before": len(old_segments),
            "segments_after": len(self.manifest.segments),
            "bytes_before": bytes_before,
            "bytes_after": self.segment_bytes(),
            "reclaimed_bytes": bytes_before - self.segment_bytes(),
        }


class StoredCatalog(Catalog):
    """A :class:`Catalog` whose entries are durably backed by a store.

    Freshly ingested entries are appended to the segment files immediately
    (both orientations); entries hydrated from a manifest are lazy
    :class:`StoredLineageEntry` objects that read through the store's LRU
    cache on first query.
    """

    def __init__(self, store: LineageStore) -> None:
        super().__init__()
        self.store = store
        self._entry_refs: Dict[Tuple[str, str], Tuple[TableRef, TableRef]] = {}

    def add_compressed(
        self,
        backward: CompressedLineage,
        forward: CompressedLineage,
        op_name: Optional[str] = None,
        reused: bool = False,
        replace: bool = False,
    ) -> LineageEntry:
        entry = super().add_compressed(
            backward, forward, op_name=op_name, reused=reused, replace=replace
        )
        pair = (entry.in_name, entry.out_name)
        backward_ref = self.store.append_table(entry.backward)
        forward_ref = self.store.append_table(entry.forward)
        self._entry_refs[pair] = (backward_ref, forward_ref)
        # the catalog keeps only the lazy view: the materialized tables stay
        # hot in the LRU cache but remain *evictable*, so a bulk-ingest
        # session's memory stays bounded by cache_bytes like any other
        self._entries[pair] = StoredLineageEntry(
            self.store,
            in_name=entry.in_name,
            out_name=entry.out_name,
            backward_ref=backward_ref,
            forward_ref=forward_ref,
            op_name=entry.op_name,
            reused=entry.reused,
            version=entry.version,
        )
        return entry

    def install_lazy_entry(self, entry: StoredLineageEntry) -> None:
        """Register a manifest-hydrated entry without touching its tables."""
        pair = (entry.in_name, entry.out_name)
        self._entries[pair] = entry
        self._entry_refs[pair] = (entry.backward_ref, entry.forward_ref)
        self.version += 1

    def entry_refs(self, pair: Tuple[str, str]) -> Tuple[TableRef, TableRef]:
        backward_ref, forward_ref = self._entry_refs[pair]
        return self.store.resolve(backward_ref), self.store.resolve(forward_ref)

    def materialize_all(self) -> int:
        """Force-load every entry's tables (the eager-open code path);
        returns the number of tables materialized or found cached."""
        count = 0
        for entry in self.entries():
            entry.backward
            entry.forward
            count += 2
        return count
